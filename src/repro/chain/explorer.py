"""An Etherscan-like explorer over the simulated chain.

The paper points readers at Sepolia Etherscan to audit the payment
transactions (Table 1 footnote).  The :class:`Explorer` provides the same
queries programmatically: transactions by account, fee summaries per
transaction type, account activity and chain-wide gas statistics.  The
Fig. 5 benchmark uses it to tabulate deployment vs interaction vs payment
fees.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.chain.account import Address
from repro.chain.chain import Blockchain
from repro.chain.events import parse_cursor
from repro.chain.receipts import TransactionReceipt
from repro.chain.transaction import Transaction
from repro.utils.units import format_ether


@dataclass
class TransactionRecord:
    """A joined view of a transaction and its receipt, as explorers show."""

    transaction: Transaction
    receipt: TransactionReceipt

    @property
    def kind(self) -> str:
        """Classify the transaction: deployment / contract call / transfer."""
        if self.transaction.is_create:
            return "contract_deployment"
        if self.receipt.to is not None and self.transaction.data:
            return "contract_interaction"
        return "transfer"

    @property
    def fee_wei(self) -> int:
        """Fee paid for this transaction in wei."""
        return self.receipt.fee_wei

    def to_row(self) -> dict:
        """One explorer-style row."""
        return {
            "hash": self.transaction.hash_hex,
            "block": self.receipt.block_number,
            "from": str(self.transaction.sender),
            "to": str(self.transaction.to) if self.transaction.to else "(contract creation)",
            "kind": self.kind,
            "value_wei": self.transaction.value,
            "gas_used": self.receipt.gas_used,
            "gas_price": self.receipt.gas_price,
            "fee_eth": format_ether(self.fee_wei),
            "status": "success" if self.receipt.status else "failed",
        }


class Explorer:
    """Read-only analytics over a :class:`Blockchain`.

    When an analytics replica is attached to the chain
    (``repro.analytics.attach_analytics``), every scan-backed query below is
    transparently served from the replica's columns and rollups; results
    are parity-identical to the scan path.  Without a replica, the record
    stream is materialized once per chain tip and reused across calls
    (``fee_summary_by_kind`` + ``account_activity`` + ``chain_statistics``
    back-to-back used to trigger three full history re-scans).
    """

    def __init__(self, chain: Blockchain) -> None:
        self.chain = chain
        #: Tip-keyed record-stream cache (no-replica path).  Treat the
        #: returned list as read-only: it is shared across calls.
        self._records_cache: Optional[List[TransactionRecord]] = None
        self._cache_tip_hash: Optional[str] = None
        self._cache_height: int = 0

    # -- record retrieval -----------------------------------------------------

    def all_records(self) -> List[TransactionRecord]:
        """Every included transaction joined with its receipt, in chain order.

        The list is cached by chain tip: repeat calls at the same height
        return the same (read-only) list, and growth since the cached tip
        is appended incrementally instead of re-walking all of history.  A
        reorg (cached tip no longer canonical) rebuilds from scratch.
        """
        analytics = self.chain.analytics
        if analytics is not None:
            return analytics.records()
        tip = self.chain.latest_block
        if self._records_cache is not None:
            if tip.hash == self._cache_tip_hash:
                return self._records_cache
            if (self._cache_height <= self.chain.height
                    and self.chain.get_block(self._cache_height).hash
                    == self._cache_tip_hash):
                # The cached prefix is still canonical: extend, don't rescan.
                records = list(self._records_cache)
                for number in range(self._cache_height + 1,
                                    self.chain.height + 1):
                    block = self.chain.get_block(number)
                    for tx, receipt in zip(block.transactions, block.receipts):
                        records.append(
                            TransactionRecord(transaction=tx, receipt=receipt))
                self._store_cache(records, tip)
                return records
        records = []
        for block in self.chain.iter_blocks():
            for tx, receipt in zip(block.transactions, block.receipts):
                records.append(TransactionRecord(transaction=tx, receipt=receipt))
        self._store_cache(records, tip)
        return records

    def _store_cache(self, records: List[TransactionRecord], tip) -> None:
        self._records_cache = records
        self._cache_tip_hash = tip.hash
        self._cache_height = tip.number

    def transactions_of(self, address: Address | str) -> List[TransactionRecord]:
        """Transactions sent by or addressed to ``address``."""
        addr = Address(address)
        analytics = self.chain.analytics
        if analytics is not None:
            return analytics.transactions_of(str(addr))
        return [
            record
            for record in self.all_records()
            if record.transaction.sender == addr or (record.transaction.to == addr)
        ]

    def record(self, tx_hash: str) -> Optional[TransactionRecord]:
        """Find a single transaction record by hash."""
        analytics = self.chain.analytics
        if analytics is not None:
            return analytics.record(tx_hash)
        for candidate in self.all_records():
            if candidate.transaction.hash_hex == tx_hash:
                return candidate
        return None

    def records_page(
        self,
        address: Optional[Address | str] = None,
        limit: int = 50,
        cursor: Optional[str] = None,
    ) -> Tuple[List[TransactionRecord], Optional[str]]:
        """One page of transaction records, optionally scoped to ``address``.

        The cursor is a position in the chain-ordered record stream, which is
        append-only, so cursors stay valid as the chain grows.  Returns the
        page plus the next cursor (``None`` when exhausted) -- this is what
        keeps explorer queries bounded over long simnet runs.
        """
        analytics = self.chain.analytics
        if analytics is not None:
            return analytics.records_page(
                str(Address(address)) if address is not None else None,
                limit=limit, cursor=cursor)
        if limit <= 0:
            raise ValueError(f"records_page limit must be positive, got {limit}")
        start = parse_cursor(cursor, "records")
        addr = Address(address) if address is not None else None
        page: List[TransactionRecord] = []
        next_cursor: Optional[str] = None
        # Walk blocks in chain order, skipping whole blocks before the
        # cursor, so per-page work is bounded by the scan distance rather
        # than materializing every record on every call.
        position = 0
        for block in self.chain.iter_blocks():
            block_size = len(block.transactions)
            if position + block_size <= start:
                position += block_size
                continue
            for tx, receipt in zip(block.transactions, block.receipts):
                if position < start:
                    position += 1
                    continue
                record = TransactionRecord(transaction=tx, receipt=receipt)
                position += 1
                if addr is not None and not (
                    record.transaction.sender == addr or record.transaction.to == addr
                ):
                    continue
                page.append(record)
                if len(page) >= limit:
                    # A full page always carries a cursor (even at the chain
                    # tip) so callers can resume after new blocks land; a
                    # short page means "exhausted".
                    next_cursor = str(position)
                    break
            if next_cursor is not None:
                break
        return page, next_cursor

    # -- aggregate statistics ---------------------------------------------------

    def fee_summary_by_kind(self) -> Dict[str, Dict[str, float]]:
        """Gas and fee statistics grouped by transaction kind.

        This is the data behind Fig. 5: deployment transactions carry the
        heaviest fees, CID submissions and payments are comparable.
        """
        analytics = self.chain.analytics
        if analytics is not None:
            return analytics.fee_summary_by_kind()
        groups: Dict[str, List[TransactionRecord]] = {}
        for rec in self.all_records():
            groups.setdefault(rec.kind, []).append(rec)
        summary: Dict[str, Dict[str, float]] = {}
        for kind, records in groups.items():
            fees = [rec.fee_wei for rec in records]
            gas = [rec.receipt.gas_used for rec in records]
            summary[kind] = {
                "count": len(records),
                "total_fee_wei": sum(fees),
                "mean_fee_wei": sum(fees) / len(fees),
                "mean_gas_used": sum(gas) / len(gas),
                "max_fee_wei": max(fees),
                "min_fee_wei": min(fees),
            }
        return summary

    def account_activity(self, address: Address | str) -> dict:
        """Etherscan-style account overview.

        The replica-routed path is a hybrid read: the scan-heavy counters
        come from the analytics rollup while ``balance_wei``/``nonce`` stay
        O(1) point reads on the OLTP world state (contract-internal
        transfers move value the record stream cannot see).
        """
        addr = Address(address)
        analytics = self.chain.analytics
        if analytics is not None:
            columns = analytics.account_columns(str(addr))
            return {
                "address": str(addr),
                "balance_wei": self.chain.state.balance_of(addr),
                "nonce": self.chain.state.nonce_of(addr),
                **columns,
            }
        records = self.transactions_of(addr)
        sent = [rec for rec in records if rec.transaction.sender == addr]
        received = [rec for rec in records if rec.transaction.to == addr]
        return {
            "address": str(addr),
            "balance_wei": self.chain.state.balance_of(addr),
            "nonce": self.chain.state.nonce_of(addr),
            "transactions_sent": len(sent),
            "transactions_received": len(received),
            "total_fees_paid_wei": sum(rec.fee_wei for rec in sent),
            "total_value_received_wei": sum(rec.transaction.value for rec in received),
        }

    def chain_statistics(self) -> dict:
        """Whole-chain statistics (blocks, transactions, gas)."""
        analytics = self.chain.analytics
        if analytics is not None:
            return analytics.chain_statistics()
        records = self.all_records()
        return {
            "height": self.chain.height,
            "total_transactions": len(records),
            "total_gas_used": sum(rec.receipt.gas_used for rec in records),
            "total_fees_wei": sum(rec.fee_wei for rec in records),
            "failed_transactions": sum(1 for rec in records if not rec.receipt.status),
        }
