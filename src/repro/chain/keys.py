"""Key pairs, addresses and Schnorr signatures.

Ethereum uses secp256k1 ECDSA; implementing elliptic-curve arithmetic from
scratch adds no value to the reproduction, so accounts here use **Schnorr
signatures over a multiplicative group modulo a safe prime** (the 2048-bit
MODP group from RFC 3526).  The scheme provides what the system actually
relies on:

* a private key that only its holder knows,
* a public key and a 20-byte Ethereum-style address derived from it,
* signatures over transaction hashes that anyone can verify against the
  sender's address without the private key.

Signing is deterministic (the nonce is derived from the key and message), so
test vectors are stable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional

from repro.errors import InvalidSignatureError
from repro.utils.cache import LRUCache
from repro.utils.encoding import from_hex, to_hex
from repro.utils.hashing import keccak256

# RFC 3526 group 14 (2048-bit MODP).  P is a safe prime: P = 2*Q + 1.
_P_HEX = (
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74"
    "020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437"
    "4FE1356D6D51C245E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED"
    "EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3DC2007CB8A163BF05"
    "98DA48361C55D39A69163FA8FD24CF5F83655D23DCA3AD961C62F356208552BB"
    "9ED529077096966D670C354E4ABC9804F1746C08CA18217C32905E462E36CE3B"
    "E39E772C180E86039B2783A2EC07A28FB5C55DF06F4C52C9DE2BCBF695581718"
    "3995497CEA956AE515D2261898FA051015728E5A8AACAA68FFFFFFFFFFFFFFFF"
)

GROUP_PRIME = int(_P_HEX, 16)
GROUP_ORDER = (GROUP_PRIME - 1) // 2
GENERATOR = 2

ADDRESS_BYTES = 20


def _int_to_bytes(value: int) -> bytes:
    """Minimal big-endian byte representation of a non-negative integer."""
    if value == 0:
        return b"\x00"
    return value.to_bytes((value.bit_length() + 7) // 8, "big")


def _hash_to_int(*parts: bytes) -> int:
    """Hash arbitrary byte strings to an integer modulo the group order."""
    return int.from_bytes(keccak256(b"".join(parts)), "big") % GROUP_ORDER


class _FixedBaseComb:
    """Fixed-base windowed exponentiation for one base (the group generator).

    ``pow(g, exp, P)`` performs ~``bits(exp)`` squarings every call even
    though ``g`` never changes.  Precomputing ``g^(d * 2^(w*i))`` for every
    window position ``i`` and digit ``d`` replaces the whole squaring chain
    with one table multiplication per ``w``-bit window, which makes signing
    and verification several times faster on the transaction hot path.

    Window rows are built lazily: honest signatures have ~512-bit exponents
    (a 256-bit nonce plus a 256*256-bit product), so only the first dozen or
    so rows are ever materialized unless a hostile signature carries a huge
    exponent.  The table is exact -- results are bit-identical to ``pow``.
    """

    def __init__(self, base: int, modulus: int, window_bits: int = 5,
                 base_order: Optional[int] = None) -> None:
        self.base = base
        self.modulus = modulus
        self.window_bits = window_bits
        #: Multiplicative order of ``base`` (i.e. ``base^order == 1``), when
        #: known.  Exponents are reduced modulo it, which both preserves the
        #: result exactly and *bounds the table*: without the reduction an
        #: attacker-supplied signature with a megabytes-long ``s`` would
        #: force one comb row per 5 exponent bits into this process-global
        #: table, a memory-exhaustion hazard the old constant-memory ``pow``
        #: path never had.
        self.base_order = base_order
        self._digit_count = (1 << window_bits) - 1
        #: ``_rows[i][d-1] == base^(d * 2^(w*i)) mod P`` for digits d >= 1.
        self._rows: list = []
        #: ``base^(2^(w * len(_rows)))`` -- the generator of the next row.
        self._next_row_base = base % modulus

    def _extend_to(self, row_index: int) -> None:
        while len(self._rows) <= row_index:
            cur = self._next_row_base
            row = [cur]
            for _ in range(self._digit_count - 1):
                row.append(row[-1] * cur % self.modulus)
            self._rows.append(row)
            self._next_row_base = row[-1] * cur % self.modulus

    def pow(self, exponent: int) -> int:
        """``base ** exponent mod modulus``, bit-identical to ``pow``."""
        if exponent < 0:
            return pow(self.base, exponent, self.modulus)
        if self.base_order is not None and exponent >= self.base_order:
            exponent %= self.base_order
        elif self.base_order is None and exponent.bit_length() > self.modulus.bit_length():
            # Unknown order and an oversized exponent: keep the table bounded
            # by the modulus size and let the builtin handle the outlier.
            return pow(self.base, exponent, self.modulus)
        if exponent and self.window_bits == 4:
            # Fast path for 4-bit windows: walk two nibble digits per byte of
            # an immutable bytes snapshot.  The generic loop below shifts the
            # whole multi-kilobit exponent once per window -- an O(bits)
            # copy each time -- which the one-time ``to_bytes`` avoids.
            data = exponent.to_bytes((exponent.bit_length() + 7) // 8, "big")
            top = 2 * len(data) - (1 if data[0] >= 16 else 2)
            self._extend_to(top)
            rows = self._rows
            modulus = self.modulus
            result = 1
            row_index = 0
            for byte in reversed(data):
                low = byte & 15
                if low:
                    result = result * rows[row_index][low - 1] % modulus
                high = byte >> 4
                if high:
                    result = result * rows[row_index + 1][high - 1] % modulus
                row_index += 2
            return result
        result = 1
        row_index = 0
        mask = self._digit_count
        while exponent:
            digit = exponent & mask
            if digit:
                self._extend_to(row_index)
                result = result * self._rows[row_index][digit - 1] % self.modulus
            exponent >>= self.window_bits
            row_index += 1
        return result


#: Shared comb table for the group generator (every signature and key pair
#: exponentiates the same base, so one process-wide table serves them all).
#: ``GENERATOR``'s multiplicative order divides ``GROUP_ORDER`` -- the
#: generator is a quadratic residue of the safe prime, and
#: ``pow(GENERATOR, GROUP_ORDER, GROUP_PRIME) == 1`` (pinned by
#: ``tests/chain/test_hotpaths.py``) -- so exponent reduction is exact and
#: the table never exceeds ``GROUP_ORDER.bit_length() / window_bits`` rows.
_GENERATOR_COMB = _FixedBaseComb(GENERATOR, GROUP_PRIME, window_bits=4,
                                 base_order=GROUP_ORDER)

#: Cache of ``y^-1 mod P`` per public key: verification needs the inverse on
#: every call, senders repeat across transactions, and the inverse of a
#: 2048-bit element is ~0.4 ms.  The shared storage ``LRUCache`` evicts the
#: least-recently-used key instead of the old clear-when-full dict, so a
#: long loadgen run over many distinct senders keeps its hot keys warm, and
#: the hit/miss/eviction counters surface through ``obs_cacheStats``.
_INVERSE_CACHE = LRUCache(capacity=16384)


def inverse_cache() -> LRUCache:
    """The per-public-key inverse cache (for obs cache-stats registration)."""
    return _INVERSE_CACHE


def _inverse_of(public_key: int) -> int:
    """``public_key^-1 mod GROUP_PRIME``, memoized per key."""
    cached = _INVERSE_CACHE.get(public_key)
    if cached is None:
        cached = pow(public_key, -1, GROUP_PRIME)
        _INVERSE_CACHE.put(public_key, cached)
    return cached


def prime_inverses(public_keys: Iterable[int]) -> None:
    """Batch-fill the inverse cache via Montgomery's trick.

    Inverting N group elements individually costs N extended-gcd runs
    (~0.4 ms each); the batch trick computes the running product, inverts it
    *once*, and unrolls the prefix products -- one inversion plus 3(N-1)
    multiplications for the whole batch.  Used by ``repro.batchverify`` so a
    block full of first-seen senders pays one inversion, not hundreds.

    Results are identical to :func:`_inverse_of` (both compute the unique
    inverse mod ``GROUP_PRIME``).  Non-invertible or already-cached keys are
    simply skipped; verification rejects out-of-range keys separately.
    """
    fresh: List[int] = []
    seen = set()
    for key in public_keys:
        if key in seen or not (1 < key < GROUP_PRIME):
            continue
        seen.add(key)
        if _INVERSE_CACHE.get(key) is None:
            fresh.append(key)
    if not fresh:
        return
    prefix: List[int] = []
    running = 1
    for key in fresh:
        running = running * key % GROUP_PRIME
        prefix.append(running)
    inverse_running = pow(running, -1, GROUP_PRIME)
    for index in range(len(fresh) - 1, -1, -1):
        if index == 0:
            inverse = inverse_running
        else:
            inverse = inverse_running * prefix[index - 1] % GROUP_PRIME
        inverse_running = inverse_running * fresh[index] % GROUP_PRIME
        _INVERSE_CACHE.put(fresh[index], inverse)


@dataclass(frozen=True)
class Signature:
    """A Schnorr signature ``(commitment e, response s)`` plus the public key.

    The public key travels with the signature (as it does implicitly with
    ECDSA recovery in Ethereum) so that the verifier can both check the
    signature and confirm that the key hashes to the claimed sender address.
    """

    e: int
    s: int
    public_key: int

    def to_dict(self) -> dict:
        """JSON-serializable representation (hex-encoded components)."""
        return {
            "e": to_hex(_int_to_bytes(self.e)),
            "s": to_hex(_int_to_bytes(self.s)),
            "public_key": to_hex(_int_to_bytes(self.public_key)),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Signature":
        """Reconstruct a signature from :meth:`to_dict` output."""
        return cls(
            e=int.from_bytes(from_hex(payload["e"]), "big"),
            s=int.from_bytes(from_hex(payload["s"]), "big"),
            public_key=int.from_bytes(from_hex(payload["public_key"]), "big"),
        )


def address_from_public_key(public_key: int) -> str:
    """Derive a checksummed 20-byte address from a public key.

    Mirrors Ethereum: the address is the last 20 bytes of the hash of the
    public key, rendered with an EIP-55-style mixed-case checksum.
    """
    digest = keccak256(_int_to_bytes(public_key))
    return to_checksum_address(to_hex(digest[-ADDRESS_BYTES:]))


def to_checksum_address(address: str) -> str:
    """Apply an EIP-55-style mixed-case checksum to a hex address."""
    body = address.lower().replace("0x", "")
    if len(body) != ADDRESS_BYTES * 2:
        raise ValueError(f"address must be {ADDRESS_BYTES} bytes: {address!r}")
    int(body, 16)  # validates hex characters
    digest = keccak256(body.encode("ascii")).hex()
    chars = [
        char.upper() if char.isalpha() and int(digest[i], 16) >= 8 else char
        for i, char in enumerate(body)
    ]
    return "0x" + "".join(chars)


class KeyPair:
    """A private/public key pair able to sign message hashes.

    Parameters
    ----------
    private_key:
        Optional 32-byte private seed.  When omitted, the caller should use
        :meth:`generate` with an RNG for fresh keys; deterministic tests pass
        explicit seeds.
    """

    def __init__(self, private_key: bytes) -> None:
        if len(private_key) == 0:
            raise ValueError("private key must be non-empty bytes")
        self._private_seed = bytes(private_key)
        self._x = _hash_to_int(b"oflw3-priv", self._private_seed) or 1
        self.public_key = _GENERATOR_COMB.pow(self._x)
        self.address = address_from_public_key(self.public_key)

    # -- construction -------------------------------------------------------

    @classmethod
    def generate(cls, rng=None) -> "KeyPair":
        """Create a key pair from 32 random bytes drawn from ``rng``."""
        import numpy as np

        generator = rng or np.random.default_rng()
        seed = bytes(int(b) for b in generator.integers(0, 256, size=32))
        return cls(seed)

    @classmethod
    def from_label(cls, label: str) -> "KeyPair":
        """Derive a stable key pair from a human-readable label.

        Used by tests and examples to create named actors ("owner-3",
        "buyer") whose addresses are reproducible across runs.
        """
        return cls(keccak256(b"oflw3-label:" + label.encode("utf-8")))

    # -- signing ------------------------------------------------------------

    def sign(self, message_hash: bytes) -> Signature:
        """Produce a deterministic Schnorr signature over a 32-byte hash."""
        if len(message_hash) != 32:
            raise ValueError("sign expects a 32-byte message hash")
        nonce = _hash_to_int(b"oflw3-nonce", self._private_seed, message_hash) or 1
        commitment = _GENERATOR_COMB.pow(nonce)
        challenge = _hash_to_int(_int_to_bytes(commitment), message_hash)
        response = (nonce + challenge * self._x) % GROUP_ORDER
        return Signature(e=challenge, s=response, public_key=self.public_key)

    def export_private_seed(self) -> bytes:
        """Return the raw private seed (used by wallet import/export flows)."""
        return self._private_seed


def verify_signature(signature: Signature, message_hash: bytes, address: Optional[str] = None) -> bool:
    """Verify a Schnorr signature; optionally also check the sender address.

    Returns ``True`` when ``g^s == r * y^e`` for the reconstructed commitment
    ``r`` and, if ``address`` is given, the public key hashes to it.
    """
    if len(message_hash) != 32:
        raise ValueError("verify expects a 32-byte message hash")
    y = signature.public_key
    if not (1 < y < GROUP_PRIME):
        return False
    # g^s = g^(k + x*e) = r * y^e  =>  r = g^s * (y^-1)^e.  The generator
    # exponentiation runs through the shared comb table and the inverse is
    # memoized per public key; the group element is identical to the naive
    # pow-based computation.
    gs = _GENERATOR_COMB.pow(signature.s)
    try:
        r = gs * pow(_inverse_of(y), signature.e, GROUP_PRIME) % GROUP_PRIME
    except ValueError:
        return False
    expected_challenge = _hash_to_int(_int_to_bytes(r), message_hash)
    if expected_challenge != signature.e:
        return False
    if address is not None and address_from_public_key(y) != to_checksum_address(address):
        return False
    return True


def recover_address(signature: Signature, message_hash: bytes) -> str:
    """Return the signer address for a valid signature, else raise.

    Raises
    ------
    InvalidSignatureError
        If the signature does not verify.
    """
    if not verify_signature(signature, message_hash):
        raise InvalidSignatureError("signature does not verify")
    return address_from_public_key(signature.public_key)
