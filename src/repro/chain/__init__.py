"""An Ethereum-like blockchain substrate.

This package implements the pieces of Ethereum that OFL-W3's evaluation
depends on: externally-owned accounts with Schnorr signatures, transactions
with an EVM-compatible gas schedule (intrinsic gas, calldata gas, storage
gas), a world state with snapshot/revert, a mempool, proof-of-authority block
production on a 12-second slot clock (Sepolia's cadence), receipts with event
logs, and an Etherscan-like explorer.

The public entry point for applications is :class:`repro.chain.node.EthereumNode`,
which exposes a JSON-RPC-shaped API (``send_transaction``, ``get_balance``,
``wait_for_receipt``, ``call`` ...) and is what the OFL-W3 backend talks to.
"""

from repro.chain.account import Account, Address
from repro.chain.block import Block, BlockHeader
from repro.chain.chain import Blockchain, ChainConfig
from repro.chain.consensus import ProofOfAuthority
from repro.chain.events import EventLog, LogFilter
from repro.chain.explorer import Explorer
from repro.chain.faucet import Faucet
from repro.chain.gas import GasMeter, GasSchedule
from repro.chain.keys import KeyPair, Signature
from repro.chain.mempool import Mempool
from repro.chain.node import EthereumNode
from repro.chain.receipts import TransactionReceipt
from repro.chain.state import WorldState
from repro.chain.transaction import Transaction

__all__ = [
    "Account",
    "Address",
    "Block",
    "BlockHeader",
    "Blockchain",
    "ChainConfig",
    "ProofOfAuthority",
    "EventLog",
    "LogFilter",
    "Explorer",
    "Faucet",
    "GasMeter",
    "GasSchedule",
    "KeyPair",
    "Signature",
    "Mempool",
    "EthereumNode",
    "TransactionReceipt",
    "WorldState",
    "Transaction",
]
