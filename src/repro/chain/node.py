"""A JSON-RPC-shaped node interface, the analogue of a web3.py provider.

:class:`EthereumNode` is what every higher layer (wallet, backend, DApp,
workflow) talks to.  It wraps a :class:`~repro.chain.chain.Blockchain` and
exposes the familiar operations: ``get_balance``, ``get_transaction_count``,
``send_transaction``, ``wait_for_receipt``, ``call`` (read-only), gas
estimation and log queries.  ``wait_for_receipt`` triggers block production
and advances the simulated clock by the slot time, so callers experience the
same "submit, then wait ~12 s" rhythm as against Sepolia.
"""

from __future__ import annotations

from typing import Any, List, Optional, TYPE_CHECKING

from repro.errors import MempoolError, UnknownTransactionError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.simnet.netmodel import NetworkModel
from repro.chain.account import Address
from repro.chain.block import Block
from repro.chain.chain import Blockchain, ChainConfig
from repro.chain.events import EventLog, LogFilter, LogPage
from repro.chain.executor import BlockContext, ContractBackend
from repro.chain.keys import KeyPair
from repro.chain.receipts import TransactionReceipt
from repro.chain.transaction import Transaction, encode_call, encode_create
from repro.utils.clock import SimulatedClock


class EthereumNode:
    """Facade over the simulated chain, mirroring a web3 provider."""

    def __init__(
        self,
        config: Optional[ChainConfig] = None,
        backend: Optional[ContractBackend] = None,
        clock: Optional[SimulatedClock] = None,
        validators: Optional[List[Address]] = None,
        network: Optional["NetworkModel"] = None,
        storage: Optional[Any] = None,
        chain: Optional[Blockchain] = None,
        parallel_execution: Optional[Any] = None,
        batch_verify: Optional[Any] = None,
    ) -> None:
        #: Optional ``repro.storage`` engine (or config) persisting this
        #: node's chain: every mint/transaction/block is write-ahead logged
        #: and periodically snapshotted, enabling crash recovery via
        #: ``repro.storage.recover_node``.  ``None`` keeps the seed's purely
        #: in-process behaviour.
        self.storage = None
        if storage is not None:
            from repro.storage.engine import ensure_engine

            self.storage = ensure_engine(storage)
        if chain is not None:
            # Wrap an existing chain (crash recovery hands over a replayed
            # one); its clock and store are authoritative, so competing
            # construction arguments are a caller bug, not a preference.
            if any(arg is not None for arg in (config, backend, clock, validators)):
                raise ValueError(
                    "pass either a pre-built chain or config/backend/clock/"
                    "validators, not both")
            self.clock = chain.clock
            self.chain = chain
            if self.storage is None and chain.store is not None:
                self.storage = chain.store.engine
        else:
            self.clock = clock or SimulatedClock()
            store = self.storage.chain_store() if self.storage is not None else None
            self.chain = Blockchain(config=config, backend=backend, clock=self.clock,
                                    validators=validators, store=store)
        #: Wave-parallel block production (``repro.parallel``): a worker
        #: count or :class:`~repro.parallel.ParallelConfig`; ``None`` (the
        #: seed default) keeps the serial loop.  Applied to pre-built chains
        #: too (crash recovery re-enables it on the replayed chain).
        if parallel_execution is not None:
            self.chain.enable_parallel_execution(parallel_execution)
        #: Deferred batch signature verification (``repro.batchverify``): a
        #: verify-worker count or :class:`~repro.batchverify.
        #: BatchVerifyConfig`; ``None`` (the seed default) keeps the scalar
        #: verify-at-submission path.  Applied to pre-built chains too.
        if batch_verify is not None:
            self.chain.enable_batch_verify(batch_verify)
        #: Optional ``repro.simnet`` network model governing the client->node
        #: RPC link: submissions pay per-message latency (and retransmission
        #: timeouts for drops) on the simulated clock.  ``None`` (the seed
        #: default) keeps submission instantaneous.
        self.network = network
        self.dropped_submissions = 0

    # -- chain metadata ------------------------------------------------------

    @property
    def chain_id(self) -> int:
        """Network chain id (Sepolia's 11155111 by default)."""
        return self.chain.config.chain_id

    @property
    def block_number(self) -> int:
        """Height of the latest block."""
        return self.chain.height

    def get_block(self, number_or_hash) -> Block:
        """Fetch a block by number or hash."""
        return self.chain.get_block(number_or_hash)

    # -- account queries -----------------------------------------------------

    def get_balance(self, address: Address | str) -> int:
        """Balance of ``address`` in wei."""
        return self.chain.state.balance_of(address)

    def get_transaction_count(self, address: Address | str) -> int:
        """Nonce (number of sent transactions) of ``address``."""
        return self.chain.state.nonce_of(address)

    def is_contract(self, address: Address | str) -> bool:
        """Whether a contract is deployed at ``address``."""
        return self.chain.state.get_account(address).is_contract

    # -- transaction lifecycle -----------------------------------------------

    def send_transaction(self, tx: Transaction) -> str:
        """Queue a signed transaction; returns the transaction hash.

        With a network model attached, submission traverses the sender->node
        RPC link: the clock advances by the link's delivery delay (including
        retransmission timeouts for dropped messages).  A submission lost
        after every retransmission raises :class:`MempoolError`, like an RPC
        endpoint that times out.
        """
        self._traverse_client_link(tx)
        return self.chain.submit_transaction(tx)

    def _traverse_client_link(self, tx: Transaction) -> None:
        """Charge the sender->node RPC link for one submission.

        No-op without a network model.  Shared by the single-node path and
        the cluster facade, so client-link loss/latency semantics cannot
        drift between them.
        """
        if self.network is not None:
            from repro.simnet.netmodel import CHAIN_ENDPOINT

            wire_bytes = 110 + len(tx.data)  # envelope + signature + calldata
            delivery = self.network.delivery_delay(str(tx.sender), CHAIN_ENDPOINT, wire_bytes)
            # The sender waited out every retransmission timeout even when
            # the submission was ultimately lost.
            self.clock.advance(delivery.delay_seconds)
            if not delivery.delivered:
                self.dropped_submissions += 1
                raise MempoolError(
                    f"transaction from {tx.sender} lost in transit to the RPC node "
                    f"(network partition or repeated drops)")

    def sign_and_send(
        self,
        keypair: KeyPair,
        to: Optional[Address | str],
        value: int = 0,
        data: bytes = b"",
        gas_limit: Optional[int] = None,
        gas_price: int = 10**9,
    ) -> str:
        """Convenience: build, sign and queue a transaction for ``keypair``."""
        sender = Address(keypair.address)
        tx = Transaction(
            sender=sender,
            to=Address(to) if to is not None else None,
            value=value,
            data=data,
            nonce=self.pending_nonce(sender),
            gas_limit=gas_limit if gas_limit is not None else 3_000_000,
            gas_price=gas_price,
        )
        tx.sign(keypair)
        return self.send_transaction(tx)

    def pending_nonce(self, address: Address | str) -> int:
        """Next usable nonce, accounting for queued-but-unmined transactions."""
        addr = Address(address)
        base = self.chain.state.nonce_of(addr)
        # The mempool's sender index replaces the historical scan over the
        # whole fee-ordered pool; the count is identical.
        return base + self.chain.mempool.pending_count(addr.lower)

    def wait_for_receipt(self, tx_hash: str, max_blocks: int = 25) -> TransactionReceipt:
        """Produce blocks until ``tx_hash`` is included; return its receipt.

        Advances the simulated clock by one slot per produced block, which is
        the latency the Fig. 7 breakdown attributes to blockchain interaction.
        """
        for _ in range(max_blocks):
            if self.chain.has_receipt(tx_hash):
                return self.chain.get_receipt(tx_hash)
            self.chain.produce_block()
        if self.chain.has_receipt(tx_hash):
            return self.chain.get_receipt(tx_hash)
        raise UnknownTransactionError(
            f"transaction {tx_hash} not included after {max_blocks} blocks"
        )

    def get_receipt(self, tx_hash: str) -> TransactionReceipt:
        """Receipt of an already included transaction."""
        return self.chain.get_receipt(tx_hash)

    def get_transaction(self, tx_hash: str) -> Transaction:
        """Look up a transaction (pending or included)."""
        return self.chain.get_transaction(tx_hash)

    # -- contract interaction --------------------------------------------------

    def deploy_contract(
        self,
        keypair: KeyPair,
        contract_name: str,
        args: Optional[List[Any]] = None,
        value: int = 0,
        gas_limit: int = 3_000_000,
        gas_price: int = 10**9,
    ) -> str:
        """Send a contract-creation transaction; returns the tx hash."""
        data = encode_create(contract_name, args or [])
        return self.sign_and_send(
            keypair, to=None, value=value, data=data, gas_limit=gas_limit, gas_price=gas_price
        )

    def transact_contract(
        self,
        keypair: KeyPair,
        contract_address: Address | str,
        method: str,
        args: Optional[List[Any]] = None,
        value: int = 0,
        gas_limit: int = 1_000_000,
        gas_price: int = 10**9,
    ) -> str:
        """Send a state-changing contract call; returns the tx hash."""
        data = encode_call(method, args or [])
        return self.sign_and_send(
            keypair,
            to=Address(contract_address),
            value=value,
            data=data,
            gas_limit=gas_limit,
            gas_price=gas_price,
        )

    def call(
        self,
        contract_address: Address | str,
        method: str,
        args: Optional[List[Any]] = None,
        caller: Optional[Address | str] = None,
    ) -> Any:
        """Read-only contract call (``eth_call``); free of gas fees."""
        caller_address = Address(caller) if caller is not None else Address("0x" + "00" * 20)
        return self.chain.executor.static_call(
            self.chain.state,
            caller_address,
            Address(contract_address),
            method,
            args or [],
            BlockContext(number=self.block_number, timestamp=self.clock.now),
        )

    def estimate_gas(self, tx: Transaction) -> int:
        """Estimate gas for ``tx`` without including it."""
        return self.chain.executor.estimate_gas(
            tx, self.chain.state, BlockContext(number=self.block_number, timestamp=self.clock.now)
        )

    # -- logs ------------------------------------------------------------------

    def get_logs(
        self,
        log_filter: Optional[LogFilter] = None,
        limit: Optional[int] = None,
        cursor: Optional[str] = None,
    ) -> List[EventLog]:
        """Query event logs on the canonical chain.

        Without ``limit``/``cursor`` this returns every matching log (the
        seed behaviour).  With either set it returns at most ``limit`` logs
        starting from ``cursor``; use :meth:`get_logs_page` to also receive
        the continuation cursor.
        """
        if limit is None and cursor is None:
            return self.chain.logs(log_filter)
        return self.chain.logs_page(log_filter, limit=limit, cursor=cursor).logs

    def get_logs_page(
        self,
        log_filter: Optional[LogFilter] = None,
        limit: Optional[int] = None,
        cursor: Optional[str] = None,
    ) -> LogPage:
        """Paginated log query: a page of logs plus the next cursor."""
        return self.chain.logs_page(log_filter, limit=limit, cursor=cursor)

    # -- mining control ---------------------------------------------------------

    def mine(self, blocks: int = 1) -> List[Block]:
        """Explicitly produce ``blocks`` blocks (advancing the clock each slot)."""
        return self.chain.produce_blocks(count=blocks)
