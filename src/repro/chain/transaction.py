"""Transactions: construction, signing, hashing and payload encoding.

A transaction either

* transfers value to an externally-owned account (``to`` set, empty data),
* calls a contract method (``to`` set, ``data`` = encoded call), or
* creates a contract (``to`` is ``None``, ``data`` = encoded constructor).

Call payloads are canonical-JSON envelopes rather than ABI-packed bytes; the
byte length of the envelope is what feeds calldata gas, which is the property
the evaluation cares about.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, ClassVar, Dict, List, Optional

from repro.errors import InvalidSignatureError, InvalidTransactionError
from repro.chain.account import Address
from repro.chain.gas import GasSchedule, SEPOLIA_GAS_SCHEDULE
from repro.chain.keys import KeyPair, Signature, recover_address
from repro.utils.encoding import from_hex, to_hex
from repro.utils.hashing import keccak256
from repro.utils.serialization import canonical_dumps, canonical_loads, rlp_encode


def encode_call(method: str, args: List[Any]) -> bytes:
    """Encode a contract method call into calldata bytes."""
    return canonical_dumps({"method": method, "args": list(args)}).encode("utf-8")


def encode_create(contract_name: str, args: List[Any]) -> bytes:
    """Encode a contract-creation payload into calldata bytes."""
    return canonical_dumps({"create": contract_name, "args": list(args)}).encode("utf-8")


def decode_payload(data: bytes) -> Dict[str, Any]:
    """Decode calldata produced by :func:`encode_call` / :func:`encode_create`."""
    if not data:
        return {}
    try:
        payload = canonical_loads(data.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise InvalidTransactionError(f"undecodable calldata: {exc}") from exc
    if not isinstance(payload, dict):
        raise InvalidTransactionError("calldata must decode to an object")
    return payload


@dataclass
class Transaction:
    """A (possibly signed) transaction.

    Attributes
    ----------
    sender:
        Address of the originating externally-owned account.
    to:
        Destination address, or ``None`` for contract creation.
    value:
        Amount of wei transferred to ``to`` (or to the created contract).
    data:
        Calldata bytes (see :func:`encode_call` / :func:`encode_create`).
    nonce:
        Sender's transaction count at submission time.
    gas_limit / gas_price:
        Standard Ethereum fee fields; the maximum fee is
        ``gas_limit * gas_price`` wei.
    """

    sender: Address
    to: Optional[Address]
    value: int = 0
    data: bytes = b""
    nonce: int = 0
    gas_limit: int = 21_000
    gas_price: int = 10**9
    signature: Optional[Signature] = None

    #: Fields that feed :meth:`signing_payload`; assigning any of them drops
    #: the cached payload/hash and the memoized verification verdict.
    _IDENTITY_FIELDS = frozenset(
        {"sender", "to", "value", "data", "nonce", "gas_limit", "gas_price"}
    )

    # Class-level defaults (ClassVar: not dataclass fields) so the caches
    # exist before __init__ assigns the real fields; instances shadow them.
    _payload_cache: ClassVar[Optional[bytes]] = None
    _hash_cache: ClassVar[Optional[bytes]] = None
    _hash_hex_cache: ClassVar[Optional[str]] = None
    _verified_signature: ClassVar[Optional[Signature]] = None
    _verified_ok: ClassVar[bool] = False

    def __setattr__(self, name: str, value: Any) -> None:
        object.__setattr__(self, name, value)
        if name in Transaction._IDENTITY_FIELDS:
            object.__setattr__(self, "_payload_cache", None)
            object.__setattr__(self, "_hash_cache", None)
            object.__setattr__(self, "_hash_hex_cache", None)
            object.__setattr__(self, "_verified_signature", None)
        elif name == "signature":
            object.__setattr__(self, "_verified_signature", None)

    def __post_init__(self) -> None:
        self.sender = Address(self.sender)
        if self.to is not None:
            self.to = Address(self.to)
        if self.value < 0:
            raise InvalidTransactionError(f"negative value: {self.value}")
        if self.gas_limit <= 0:
            raise InvalidTransactionError(f"non-positive gas limit: {self.gas_limit}")
        if self.gas_price < 0:
            raise InvalidTransactionError(f"negative gas price: {self.gas_price}")
        if self.nonce < 0:
            raise InvalidTransactionError(f"negative nonce: {self.nonce}")
        if not isinstance(self.data, (bytes, bytearray)):
            raise InvalidTransactionError("data must be bytes")
        self.data = bytes(self.data)

    # -- identity -----------------------------------------------------------

    @property
    def is_create(self) -> bool:
        """Whether this transaction creates a contract."""
        return self.to is None

    def signing_payload(self) -> bytes:
        """The RLP-style byte string that is hashed and signed.

        Cached: the identity fields are fixed after construction (assigning
        one invalidates the cache), and the payload is re-encoded on every
        hash access otherwise -- a measurable cost on the mempool hot path.
        """
        payload = self._payload_cache
        if payload is None:
            payload = rlp_encode([
                self.nonce,
                self.gas_price,
                self.gas_limit,
                (str(self.to).lower() if self.to is not None else ""),
                self.value,
                self.data,
                str(self.sender).lower(),
            ])
            object.__setattr__(self, "_payload_cache", payload)
        return payload

    @property
    def hash(self) -> bytes:
        """32-byte transaction hash (over the unsigned payload)."""
        digest = self._hash_cache
        if digest is None:
            digest = keccak256(self.signing_payload())
            object.__setattr__(self, "_hash_cache", digest)
        return digest

    @property
    def hash_hex(self) -> str:
        """Hex-encoded transaction hash, as shown by explorers."""
        hex_hash = self._hash_hex_cache
        if hex_hash is None:
            hex_hash = to_hex(self.hash)
            object.__setattr__(self, "_hash_hex_cache", hex_hash)
        return hex_hash

    # -- signing ------------------------------------------------------------

    def sign(self, keypair: KeyPair) -> "Transaction":
        """Sign in place with ``keypair`` (must match :attr:`sender`)."""
        if Address(keypair.address) != self.sender:
            raise InvalidSignatureError(
                f"keypair address {keypair.address} does not match sender {self.sender}"
            )
        self.signature = keypair.sign(self.hash)
        return self

    def verify_signature(self) -> bool:
        """Check that the attached signature was produced by :attr:`sender`.

        The verdict is memoized per (signature, identity-fields) pair: a
        transaction is verified on submission, again by the mempool and a
        third time at block execution, and the Schnorr check is by far the
        most expensive step on the ingest path.  Mutating any identity field
        or the signature drops the memo.
        """
        signature = self.signature
        if signature is None:
            return False
        if self._verified_signature is signature:
            return self._verified_ok
        try:
            recovered = recover_address(signature, self.hash)
            verdict = Address(recovered) == self.sender
        except InvalidSignatureError:
            verdict = False
        object.__setattr__(self, "_verified_ok", verdict)
        object.__setattr__(self, "_verified_signature", signature)
        return verdict

    def verify_job(self) -> tuple:
        """Picklable ``(signature dict, tx hash, sender)`` verify job.

        The wire format shared by the out-of-process verifiers
        (``repro.parallel.verify``, ``repro.batchverify``): a worker that
        rebuilds the signature and checks it against the hash and sender
        reproduces :meth:`verify_signature` exactly.  Raises when unsigned
        -- an unsigned transaction has no job to farm out.
        """
        if self.signature is None:
            raise InvalidSignatureError(
                f"transaction {self.hash_hex} is unsigned")
        return (self.signature.to_dict(), self.hash, str(self.sender))

    # -- gas ----------------------------------------------------------------

    def intrinsic_gas(self, schedule: GasSchedule = SEPOLIA_GAS_SCHEDULE) -> int:
        """Intrinsic gas charged before any execution."""
        return schedule.intrinsic_gas(self.data, self.is_create)

    def max_fee(self) -> int:
        """Upper bound on the fee in wei (``gas_limit * gas_price``)."""
        return self.gas_limit * self.gas_price

    # -- serialization ------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-friendly representation (as returned by the node API)."""
        return {
            "hash": self.hash_hex,
            "sender": str(self.sender),
            "to": str(self.to) if self.to is not None else None,
            "value": self.value,
            "data": to_hex(self.data) if self.data else "0x",
            "nonce": self.nonce,
            "gas_limit": self.gas_limit,
            "gas_price": self.gas_price,
            "signature": self.signature.to_dict() if self.signature else None,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "Transaction":
        """Reconstruct a transaction from :meth:`to_dict` output.

        The ``hash`` field is ignored -- the hash is always recomputed from
        the reconstructed fields, so a tampered payload cannot smuggle a
        mismatched identity.
        """
        tx = cls(
            sender=Address(payload["sender"]),
            to=Address(payload["to"]) if payload.get("to") else None,
            value=int(payload.get("value", 0)),
            data=from_hex(payload.get("data") or "0x"),
            nonce=int(payload.get("nonce", 0)),
            gas_limit=int(payload.get("gas_limit", 21_000)),
            gas_price=int(payload.get("gas_price", 10**9)),
        )
        if payload.get("signature"):
            tx.signature = Signature.from_dict(payload["signature"])
        return tx

    def serialize_raw(self) -> str:
        """Hex-encode the signed transaction for ``eth_sendRawTransaction``.

        The wire form is the canonical-JSON rendering of :meth:`to_dict`
        (signature included), hex-encoded -- the reproduction's analogue of
        an RLP-encoded raw transaction.
        """
        return to_hex(canonical_dumps(self.to_dict()).encode("utf-8"))

    @classmethod
    def deserialize_raw(cls, raw: str) -> "Transaction":
        """Decode a :meth:`serialize_raw` payload back into a transaction."""
        try:
            payload = canonical_loads(from_hex(raw).decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise InvalidTransactionError(f"undecodable raw transaction: {exc}") from exc
        if not isinstance(payload, dict):
            raise InvalidTransactionError("raw transaction must decode to an object")
        return cls.from_dict(payload)

    @property
    def size_bytes(self) -> int:
        """Approximate wire size of the transaction in bytes."""
        return len(self.signing_payload()) + (3 * 32 if self.signature else 0)

    def decoded_payload(self) -> Dict[str, Any]:
        """Decode the calldata envelope (empty dict for plain transfers)."""
        return decode_payload(self.data)
