"""Blocks and block headers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.chain.account import Address
from repro.chain.receipts import TransactionReceipt
from repro.chain.transaction import Transaction
from repro.utils.encoding import to_hex
from repro.utils.hashing import hash_json


@dataclass
class BlockHeader:
    """Header fields of a block (the part that is hashed and linked)."""

    number: int
    parent_hash: str
    timestamp: float
    proposer: Address
    gas_used: int = 0
    gas_limit: int = 30_000_000
    transactions_root: str = "0x" + "00" * 32
    receipts_root: str = "0x" + "00" * 32
    extra_data: str = ""

    @property
    def hash(self) -> str:
        """Hex block hash over the canonical header fields."""
        return to_hex(
            hash_json(
                {
                    "number": self.number,
                    "parent_hash": self.parent_hash,
                    "timestamp": self.timestamp,
                    "proposer": str(self.proposer),
                    "gas_used": self.gas_used,
                    "gas_limit": self.gas_limit,
                    "transactions_root": self.transactions_root,
                    "receipts_root": self.receipts_root,
                    "extra_data": self.extra_data,
                }
            )
        )

    def to_dict(self) -> dict:
        """JSON-friendly representation."""
        return {
            "hash": self.hash,
            "number": self.number,
            "parent_hash": self.parent_hash,
            "timestamp": self.timestamp,
            "proposer": str(self.proposer),
            "gas_used": self.gas_used,
            "gas_limit": self.gas_limit,
            "transactions_root": self.transactions_root,
            "receipts_root": self.receipts_root,
            "extra_data": self.extra_data,
        }


@dataclass
class Block:
    """A block: header plus ordered transactions and their receipts."""

    header: BlockHeader
    transactions: List[Transaction] = field(default_factory=list)
    receipts: List[TransactionReceipt] = field(default_factory=list)

    @property
    def hash(self) -> str:
        """The header hash (blocks are identified by it)."""
        return self.header.hash

    @property
    def number(self) -> int:
        """Block height."""
        return self.header.number

    @property
    def timestamp(self) -> float:
        """Block timestamp (simulated seconds)."""
        return self.header.timestamp

    @property
    def gas_used(self) -> int:
        """Total gas consumed by the block's transactions."""
        return self.header.gas_used

    def transaction_hashes(self) -> List[str]:
        """Hex hashes of the included transactions, in order."""
        return [tx.hash_hex for tx in self.transactions]

    def to_dict(self) -> dict:
        """JSON-friendly representation (transactions by hash)."""
        return {
            "header": self.header.to_dict(),
            "transactions": self.transaction_hashes(),
            "receipts": [receipt.to_dict() for receipt in self.receipts],
        }

    def to_record(self) -> dict:
        """Self-contained persistence record with *full* transactions.

        Unlike :meth:`to_dict` (the node-API shape, transactions by hash),
        the record carries every signed transaction payload so the storage
        layer can re-execute the block during crash recovery.
        """
        return {
            "header": self.header.to_dict(),
            "transactions": [tx.to_dict() for tx in self.transactions],
            "receipts": [receipt.to_dict() for receipt in self.receipts],
        }


def compute_transactions_root(transactions: List[Transaction]) -> str:
    """A Merkle-ish commitment to the ordered transaction list."""
    return to_hex(hash_json([tx.hash_hex for tx in transactions]))


def compute_receipts_root(receipts: List[TransactionReceipt]) -> str:
    """A commitment to the ordered receipt list."""
    return to_hex(hash_json([
        {"tx": r.transaction_hash, "status": r.status, "gas": r.gas_used} for r in receipts
    ]))


def block_from_record(record: dict) -> Block:
    """Rebuild a :class:`Block` from :meth:`Block.to_record` output.

    The header hash is always recomputed from the reconstructed fields;
    callers compare it to the recorded hash to detect tampering or drift.
    """
    header_payload = record["header"]
    header = BlockHeader(
        number=int(header_payload["number"]),
        parent_hash=header_payload["parent_hash"],
        timestamp=float(header_payload["timestamp"]),
        proposer=Address(header_payload["proposer"]),
        gas_used=int(header_payload.get("gas_used", 0)),
        gas_limit=int(header_payload.get("gas_limit", 30_000_000)),
        transactions_root=header_payload.get("transactions_root", "0x" + "00" * 32),
        receipts_root=header_payload.get("receipts_root", "0x" + "00" * 32),
        extra_data=header_payload.get("extra_data", ""),
    )
    return Block(
        header=header,
        transactions=[Transaction.from_dict(p) for p in record.get("transactions", [])],
        receipts=[TransactionReceipt.from_dict(p) for p in record.get("receipts", [])],
    )


def make_genesis_block(proposer: Optional[Address] = None, timestamp: float = 0.0) -> Block:
    """Create the genesis block (height 0, zero parent hash)."""
    header = BlockHeader(
        number=0,
        parent_hash="0x" + "00" * 32,
        timestamp=timestamp,
        proposer=proposer or Address("0x" + "00" * 20),
        extra_data="oflw3-simulated-sepolia-genesis",
    )
    return Block(header=header)
