"""Transaction receipts returned after block inclusion."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional

from repro.chain.account import Address
from repro.chain.events import EventLog


@dataclass
class TransactionReceipt:
    """Outcome of an executed transaction.

    Mirrors the fields MetaMask / Etherscan surface in the paper's Fig. 5:
    status, gas used, effective gas price and the resulting fee, plus the
    created contract address (for deployments) and emitted event logs.
    """

    transaction_hash: str
    sender: Address
    to: Optional[Address]
    status: bool
    gas_used: int
    gas_price: int
    block_number: int = 0
    block_hash: str = ""
    transaction_index: int = 0
    contract_address: Optional[Address] = None
    logs: List[EventLog] = field(default_factory=list)
    return_value: Any = None
    revert_reason: Optional[str] = None
    cumulative_gas_used: int = 0

    @property
    def fee_wei(self) -> int:
        """Total fee paid in wei (``gas_used * gas_price``)."""
        return self.gas_used * self.gas_price

    @property
    def succeeded(self) -> bool:
        """Alias of :attr:`status` for readability at call sites."""
        return self.status

    def to_dict(self) -> dict:
        """JSON-friendly representation (as returned by the node API)."""
        return {
            "transaction_hash": self.transaction_hash,
            "from": str(self.sender),
            "to": str(self.to) if self.to is not None else None,
            "status": int(self.status),
            "gas_used": self.gas_used,
            "gas_price": self.gas_price,
            "fee_wei": self.fee_wei,
            "block_number": self.block_number,
            "block_hash": self.block_hash,
            "transaction_index": self.transaction_index,
            "contract_address": str(self.contract_address) if self.contract_address else None,
            "logs": [log.to_dict() for log in self.logs],
            "return_value": self.return_value,
            "revert_reason": self.revert_reason,
            "cumulative_gas_used": self.cumulative_gas_used,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "TransactionReceipt":
        """Reconstruct a receipt from :meth:`to_dict` output.

        Used by the JSON-RPC client so that callers of
        ``eth_getTransactionReceipt`` get back the same object the node-level
        API returns, including ``return_value`` and fee accounting.
        """
        return cls(
            transaction_hash=payload["transaction_hash"],
            sender=Address(payload["from"]),
            to=Address(payload["to"]) if payload.get("to") else None,
            status=bool(payload["status"]),
            gas_used=int(payload["gas_used"]),
            gas_price=int(payload["gas_price"]),
            block_number=int(payload.get("block_number", 0)),
            block_hash=payload.get("block_hash", ""),
            transaction_index=int(payload.get("transaction_index", 0)),
            contract_address=(
                Address(payload["contract_address"])
                if payload.get("contract_address")
                else None
            ),
            logs=[EventLog.from_dict(log) for log in payload.get("logs", [])],
            return_value=payload.get("return_value"),
            revert_reason=payload.get("revert_reason"),
            cumulative_gas_used=int(payload.get("cumulative_gas_used", 0)),
        )
