"""Transaction execution: value transfers, contract creation and calls.

The executor is the counterpart of the EVM's state-transition function.  It
validates a signed transaction, charges the up-front fee, meters gas through
a :class:`~repro.chain.gas.GasMeter`, dispatches contract payloads to a
*contract backend* (implemented by :mod:`repro.contracts.framework`), rolls
back state on revert or out-of-gas, refunds unused gas and produces the
:class:`~repro.chain.receipts.TransactionReceipt`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Protocol

from repro.errors import (
    AbiError,
    ContractNotFoundError,
    ContractRevert,
    InsufficientFundsError,
    InvalidSignatureError,
    InvalidTransactionError,
    NonceError,
    OutOfGasError,
)
from repro.chain.account import Address
from repro.chain.events import EventLog
from repro.chain.gas import GasMeter, GasSchedule, SEPOLIA_GAS_SCHEDULE
from repro.chain.receipts import TransactionReceipt
from repro.chain.state import WorldState
from repro.chain.transaction import Transaction
from repro.utils.hashing import keccak256
from repro.utils.serialization import rlp_encode


@dataclass
class BlockContext:
    """Block-level environment available to contract code."""

    number: int = 0
    timestamp: float = 0.0
    coinbase: Optional[Address] = None
    gas_price: int = 0


@dataclass
class CallContext:
    """Everything a contract method can see and touch during execution.

    The contract framework uses the context for storage access (charging
    SLOAD/SSTORE gas through :attr:`meter`), event emission, value transfers
    out of the contract, and to read the caller / transaction value / block
    metadata -- i.e. Solidity's ``msg`` and ``block`` globals.
    """

    state: WorldState
    meter: GasMeter
    caller: Address
    origin: Address
    contract_address: Address
    value: int
    block: BlockContext
    schedule: GasSchedule
    logs: List[EventLog] = field(default_factory=list)

    @property
    def storage(self) -> dict:
        """Persistent storage dictionary of the executing contract."""
        return self.state.get_account(self.contract_address).storage

    def emit(self, event_name: str, **args: Any) -> EventLog:
        """Emit an event log, charging log gas."""
        data_size = len(str(args))
        self.meter.consume(
            self.schedule.log_gas(num_topics=1, data_size=data_size),
            reason=f"LOG {event_name}",
        )
        log = EventLog(address=self.contract_address, name=event_name, args=dict(args))
        self.logs.append(log)
        return log

    def transfer_out(self, recipient: Address | str, amount_wei: int) -> None:
        """Send wei from the contract's balance to ``recipient``."""
        self.meter.consume(self.schedule.call_value_transfer, reason="CALL value transfer")
        try:
            self.state.transfer(self.contract_address, Address(recipient), amount_wei)
        except InsufficientFundsError as exc:
            raise ContractRevert(f"insufficient contract balance: {exc}") from exc

    def balance_of(self, address: Address | str) -> int:
        """Read any account balance (charged as a cold storage read)."""
        self.meter.consume(self.schedule.sload, reason="BALANCE")
        return self.state.balance_of(address)

    def self_balance(self) -> int:
        """Balance of the executing contract."""
        return self.state.balance_of(self.contract_address)


@dataclass
class CreateResult:
    """Result of instantiating a contract through the backend."""

    contract: Any
    code_size: int
    return_value: Any = None


class ContractBackend(Protocol):
    """Interface the executor uses to run contract code.

    Implemented by :class:`repro.contracts.framework.ContractRegistry`.  The
    chain package deliberately knows nothing about specific contracts.
    """

    def create(self, name: str, args: List[Any], ctx: CallContext) -> CreateResult:
        """Instantiate contract ``name`` with constructor ``args``."""

    def call(self, contract: Any, method: str, args: List[Any], ctx: CallContext) -> Any:
        """Invoke ``method`` on a deployed ``contract`` instance."""


def contract_address_for(sender: Address, nonce: int) -> Address:
    """Derive the deterministic address of a contract created by ``sender``.

    Mirrors Ethereum's ``keccak(rlp(sender, nonce))[-20:]`` derivation.
    """
    digest = keccak256(rlp_encode([str(sender).lower(), nonce]))
    return Address("0x" + digest[-20:].hex())


class TransactionExecutor:
    """Applies transactions to a :class:`WorldState`."""

    def __init__(
        self,
        backend: Optional[ContractBackend] = None,
        schedule: GasSchedule = SEPOLIA_GAS_SCHEDULE,
        fee_recipient: Optional[Address] = None,
    ) -> None:
        self.backend = backend
        self.schedule = schedule
        self.fee_recipient = fee_recipient

    # -- validation ---------------------------------------------------------

    def validate(self, tx: Transaction, state: WorldState, check_nonce: bool = True,
                 check_signature: bool = True) -> None:
        """Raise if ``tx`` cannot be included against ``state``.

        ``check_signature=False`` skips the Schnorr verify (the most
        expensive step): deferred batch verification (``repro.batchverify``)
        has already structurally vetted the transaction at submission and
        settles the real verdict as one batch at block production.
        """
        if check_signature and (tx.signature is None or not tx.verify_signature()):
            raise InvalidSignatureError(f"transaction {tx.hash_hex} is not properly signed")
        if check_nonce:
            expected = state.nonce_of(tx.sender)
            if tx.nonce != expected:
                raise NonceError(
                    f"transaction nonce {tx.nonce} != account nonce {expected} for {tx.sender}"
                )
        required = tx.value + tx.max_fee()
        balance = state.balance_of(tx.sender)
        if balance < required:
            raise InsufficientFundsError(
                f"{tx.sender} holds {balance} wei but needs {required} wei"
            )
        if tx.intrinsic_gas(self.schedule) > tx.gas_limit:
            raise InvalidTransactionError(
                f"gas limit {tx.gas_limit} below intrinsic gas {tx.intrinsic_gas(self.schedule)}"
            )

    # -- execution ----------------------------------------------------------

    def apply(
        self,
        tx: Transaction,
        state: WorldState,
        block: Optional[BlockContext] = None,
    ) -> TransactionReceipt:
        """Execute ``tx`` against ``state`` and return its receipt.

        The receipt's ``status`` is ``False`` when execution reverted or ran
        out of gas; in that case all state changes made by the execution are
        rolled back but the fee for the gas consumed is still charged, as on
        Ethereum.
        """
        block = block or BlockContext(gas_price=tx.gas_price)
        self.validate(tx, state)

        # Charge the maximum fee up front and bump the nonce; these survive
        # even if execution later fails.
        state.debit(tx.sender, tx.max_fee())
        state.increment_nonce(tx.sender)

        meter = GasMeter(tx.gas_limit, self.schedule)
        snapshot_id = state.snapshot()
        logs: List[EventLog] = []
        status = True
        return_value: Any = None
        revert_reason: Optional[str] = None
        contract_address: Optional[Address] = None

        out_of_gas = False
        try:
            meter.consume(tx.intrinsic_gas(self.schedule), reason="intrinsic")
            return_value, contract_address, logs = self._execute_payload(tx, state, meter, block)
        except ContractRevert as exc:
            status = False
            revert_reason = exc.reason
            state.revert(snapshot_id)
        except OutOfGasError as exc:
            status = False
            out_of_gas = True
            revert_reason = str(exc)
            state.revert(snapshot_id)
        except ContractNotFoundError as exc:
            status = False
            revert_reason = str(exc)
            state.revert(snapshot_id)
        except (AbiError, InvalidTransactionError) as exc:
            # Undecodable calldata or an argument-count mismatch surfaces
            # *after* the fee was charged and the nonce bumped; treating it
            # as a revert (instead of letting it escape mid-apply) keeps the
            # no-partial-writes guarantee: the payload's state changes roll
            # back, the fee accounting below still settles.
            status = False
            revert_reason = str(exc)
            state.revert(snapshot_id)
        else:
            state.commit(snapshot_id)

        gas_used = meter.gas_limit if out_of_gas else meter.settle()
        gas_used = min(gas_used, tx.gas_limit)

        # Refund the unused portion of the up-front fee and route the burned
        # fee to the block's fee recipient so total supply stays auditable.
        refund_wei = (tx.gas_limit - gas_used) * tx.gas_price
        state.credit(tx.sender, refund_wei)
        fee_wei = gas_used * tx.gas_price
        recipient = block.coinbase or self.fee_recipient
        if recipient is not None and fee_wei > 0:
            state.credit(recipient, fee_wei)

        return TransactionReceipt(
            transaction_hash=tx.hash_hex,
            sender=tx.sender,
            to=tx.to,
            status=status,
            gas_used=gas_used,
            gas_price=tx.gas_price,
            block_number=block.number,
            contract_address=contract_address,
            logs=logs if status else [],
            return_value=return_value if status else None,
            revert_reason=revert_reason,
        )

    def _execute_payload(
        self,
        tx: Transaction,
        state: WorldState,
        meter: GasMeter,
        block: BlockContext,
    ):
        """Run the value-transfer / creation / call described by ``tx``."""
        logs: List[EventLog] = []
        contract_address: Optional[Address] = None
        return_value: Any = None

        if tx.is_create:
            if self.backend is None:
                raise ContractRevert("no contract backend configured")
            payload = tx.decoded_payload()
            name = payload.get("create")
            if not name:
                raise ContractRevert("creation payload missing contract name")
            contract_address = contract_address_for(tx.sender, tx.nonce)
            ctx = self._make_context(tx, state, meter, block, contract_address)
            if tx.value:
                state.transfer(tx.sender, contract_address, tx.value)
            result = self.backend.create(name, payload.get("args", []), ctx)
            meter.consume(
                self.schedule.code_deposit_gas(result.code_size), reason="code deposit"
            )
            account = state.get_account(contract_address)
            account.contract = result.contract
            account.code_size = result.code_size
            return_value = result.return_value
            logs = ctx.logs
            return return_value, contract_address, logs

        destination = state.get_account(tx.to)
        if destination.is_contract:
            if self.backend is None:
                raise ContractRevert("no contract backend configured")
            payload = tx.decoded_payload()
            method = payload.get("method")
            if not method:
                raise ContractRevert("call payload missing method name")
            ctx = self._make_context(tx, state, meter, block, Address(tx.to))
            if tx.value:
                state.transfer(tx.sender, tx.to, tx.value)
            return_value = self.backend.call(destination.contract, method, payload.get("args", []), ctx)
            logs = ctx.logs
            return return_value, None, logs

        # Plain value transfer to an externally-owned account.
        if tx.value:
            state.transfer(tx.sender, tx.to, tx.value)
        return None, None, logs

    def _make_context(
        self,
        tx: Transaction,
        state: WorldState,
        meter: GasMeter,
        block: BlockContext,
        contract_address: Address,
    ) -> CallContext:
        """Build the :class:`CallContext` for a contract execution."""
        return CallContext(
            state=state,
            meter=meter,
            caller=tx.sender,
            origin=tx.sender,
            contract_address=contract_address,
            value=tx.value,
            block=block,
            schedule=self.schedule,
        )

    # -- read-only calls and estimation --------------------------------------

    def static_call(
        self,
        state: WorldState,
        caller: Address,
        contract_address: Address,
        method: str,
        args: List[Any],
        block: Optional[BlockContext] = None,
        gas_limit: int = 10_000_000,
    ) -> Any:
        """Execute a read-only contract call without mutating state.

        Mirrors ``eth_call``: the call runs against a snapshot that is always
        reverted, so it is free for the caller (no gas is charged to any
        account) -- this is why Step 5 of the paper's workflow ("Download
        CIDs") costs nothing.
        """
        account = state.get_account(contract_address)
        if not account.is_contract:
            raise ContractNotFoundError(f"no contract at {contract_address}")
        if self.backend is None:
            raise ContractNotFoundError("no contract backend configured")
        block = block or BlockContext()
        snapshot_id = state.snapshot()
        meter = GasMeter(gas_limit, self.schedule)
        ctx = CallContext(
            state=state,
            meter=meter,
            caller=Address(caller),
            origin=Address(caller),
            contract_address=Address(contract_address),
            value=0,
            block=block,
            schedule=self.schedule,
        )
        try:
            return self.backend.call(account.contract, method, args, ctx)
        finally:
            state.revert(snapshot_id)

    def estimate_gas(
        self,
        tx: Transaction,
        state: WorldState,
        block: Optional[BlockContext] = None,
        safety_margin: float = 0.10,
    ) -> int:
        """Estimate the gas a transaction will use, with a safety margin.

        The transaction is executed against a snapshot which is then fully
        reverted (including nonce and balance changes), mirroring
        ``eth_estimateGas``.
        """
        snapshot_id = state.snapshot()
        try:
            receipt = self.apply(tx, state, block)
        finally:
            state.revert(snapshot_id)
        estimated = int(receipt.gas_used * (1.0 + safety_margin))
        return max(estimated, tx.intrinsic_gas(self.schedule))
