"""A testnet faucet.

On Sepolia, participants obtain test ETH from public faucets.  The simulated
faucet simply credits balances in the world state (it mints, as testnet
faucets effectively do from the user's perspective) and keeps a record of the
drips for auditability in experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.chain.account import Address
from repro.chain.node import EthereumNode
from repro.utils.units import ether_to_wei


@dataclass
class Faucet:
    """Credits test ETH to accounts on the simulated chain."""

    node: EthereumNode
    default_drip_wei: int = field(default_factory=lambda: ether_to_wei("1"))
    _history: List[Tuple[str, int]] = field(default_factory=list)

    def drip(self, address: Address | str, amount_wei: int | None = None) -> int:
        """Credit ``amount_wei`` (default one ether) to ``address``."""
        amount = self.default_drip_wei if amount_wei is None else int(amount_wei)
        if amount <= 0:
            raise ValueError(f"drip amount must be positive, got {amount}")
        # Mint through the chain (not the raw state) so the credit lands in
        # the write-ahead log and survives a crash/recovery cycle.  A node
        # that replicates mints itself (the cluster facade fans them out to
        # every replica) takes precedence over the single-chain path.
        minter = getattr(self.node, "mint", None)
        if minter is not None:
            minter(Address(address), amount)
        else:
            self.node.chain.mint(Address(address), amount)
        self._history.append((str(Address(address)), amount))
        return amount

    def fund_many(self, addresses, amount_wei: int | None = None) -> Dict[str, int]:
        """Drip the same amount to every address in ``addresses``."""
        return {str(Address(addr)): self.drip(addr, amount_wei) for addr in addresses}

    @property
    def history(self) -> List[Tuple[str, int]]:
        """All (address, amount) drips performed so far."""
        return list(self._history)

    @property
    def total_dripped(self) -> int:
        """Total wei created by this faucet."""
        return sum(amount for _, amount in self._history)
