"""The replication cluster: N replicas, leader rotation, convergence.

:class:`ChainCluster` is the control plane over a set of
:class:`~repro.cluster.replica.Replica` objects and one
:class:`~repro.cluster.gossip.GossipLayer`:

* **leader rotation** -- the leader for height *h* is replica
  ``(h - 1) % N`` (round-robin on the simulated slot clock), so exactly one
  replica produces each height while the cluster is healthy.  When the
  designated leader is dead or unreachable, the next alive replica in
  rotation takes over (configurable: ``ClusterConfig.failover``);
* **production** -- :meth:`tick` advances the clock to the next slot
  boundary, pumps gossip, and lets each reachable partition side's leader
  produce a block.  During a partition both sides keep producing, which is
  exactly the divergence longest-chain fork choice later resolves;
* **writes** -- :meth:`submit` routes a signed transaction to the current
  write leader's mempool and floods it to every peer;
* **mints** -- faucet credits are out-of-band governance operations applied
  to every live replica synchronously (dead replicas receive them on
  recovery), because mints never travel inside blocks;
* **convergence** -- :meth:`converge` runs explicit anti-entropy rounds
  (pairwise head exchange over reachable links) until no replica's chain
  changes; after a heal this drives every replica to the byte-identical
  longest head.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Union

from repro.errors import ClusterError
from repro.chain.chain import ChainConfig
from repro.cluster.config import (
    GEO_INTER_REGION_LATENCY_SECONDS,
    GEO_INTRA_REGION_LATENCY_SECONDS,
    ClusterConfig,
)
from repro.cluster.gossip import GossipLayer
from repro.cluster.replica import Replica
from repro.utils.clock import SimulatedClock
from repro.utils.rng import derive_seed


def build_cluster_network(config: ClusterConfig) -> Optional[Any]:
    """The inter-replica :class:`~repro.simnet.netmodel.NetworkModel`.

    With ``regions`` set, links are heterogeneous: intra-region hops are
    LAN-fast, inter-region hops pay the geo latency.  Otherwise the named
    ``repro.simnet`` profile applies to every link (``"ideal"`` -> ``None``,
    the instant lossless wire).
    """
    from repro.simnet.netmodel import LinkProfile, NetworkModel
    from repro.simnet.profiles import make_network

    seed = derive_seed(config.seed, "cluster-net")
    if config.regions is None:
        return make_network(config.network_profile, seed=seed)
    network = NetworkModel(
        default_profile=LinkProfile(
            latency_seconds=GEO_INTRA_REGION_LATENCY_SECONDS),
        seed=seed,
    )
    for a in range(config.replicas):
        for b in range(a + 1, config.replicas):
            if config.regions[a] != config.regions[b]:
                network.set_link(
                    f"replica-{a}", f"replica-{b}",
                    LinkProfile(
                        latency_seconds=GEO_INTER_REGION_LATENCY_SECONDS,
                        jitter_seconds=GEO_INTER_REGION_LATENCY_SECONDS / 8,
                    ),
                )
    return network


class ChainCluster:
    """N replicated chain nodes behind one leader-routing control plane."""

    def __init__(
        self,
        config: Union[ClusterConfig, int],
        *,
        clock: Optional[SimulatedClock] = None,
        registry: Any = None,
        chain_config: Optional[ChainConfig] = None,
        network: Optional[Any] = None,
        storage: Optional[Any] = None,
    ) -> None:
        if isinstance(config, int):
            config = ClusterConfig(replicas=config)
        self.config = config
        self.clock = clock or SimulatedClock()
        self.registry = registry
        self.chain_config = chain_config or ChainConfig()
        self.network = network if network is not None else \
            build_cluster_network(config)
        genesis_timestamp = self.clock.now

        from repro.storage.engine import StorageEngine, ensure_engine

        engines = [ensure_engine(storage) or StorageEngine()]
        engines += [StorageEngine() for _ in range(config.replicas - 1)]
        self.replicas: List[Replica] = [
            Replica(
                index,
                clock=self.clock,
                registry=registry,
                engine=engines[index],
                genesis_timestamp=genesis_timestamp,
                chain_config=self.chain_config,
                fork_snapshot_interval=config.fork_snapshot_interval,
                parallel_workers=config.parallel_execution,
            )
            for index in range(config.replicas)
        ]
        self.gossip = GossipLayer(self.replicas, self.network, self.clock)
        #: Optional observability hooks (``repro.obs``); ``None`` -- the seed
        #: default -- emits no structured chaos events.  Attached via
        #: ``Observability.instrument_cluster``.
        self.obs: Optional[Any] = None
        self.partitions_started = 0
        self.heals = 0
        #: Cached connected components; topology only changes through
        #: partition()/heal()/crash_replica()/recover_replica(), which
        #: invalidate it -- reads would otherwise pay an O(N^2) BFS each.
        self._groups_cache: Optional[List[List[Replica]]] = None

    # -- topology ---------------------------------------------------------------

    def alive_replicas(self) -> List[Replica]:
        """Replicas currently up, in index order."""
        return [replica for replica in self.replicas if replica.alive]

    def reachable_groups(self) -> List[List[Replica]]:
        """Connected components of alive replicas under the current links.

        One group while the network is whole; one group per partition side
        while split.  Each group independently elects a leader and produces.
        Cached between topology changes (every partition/heal/crash/recover
        goes through this cluster, which invalidates the cache).
        """
        if self._groups_cache is None:
            self._groups_cache = self._compute_groups()
        return self._groups_cache

    def _invalidate_topology(self) -> None:
        """Drop the cached groups after a partition/heal/crash/recover."""
        self._groups_cache = None

    def _compute_groups(self) -> List[List[Replica]]:
        """BFS over alive replicas and passable links."""
        alive = self.alive_replicas()
        groups: List[List[Replica]] = []
        seen: set = set()
        for replica in alive:
            if replica.index in seen:
                continue
            group = [replica]
            seen.add(replica.index)
            frontier = [replica]
            while frontier:
                current = frontier.pop()
                for other in alive:
                    if other.index in seen:
                        continue
                    if self.gossip.reachable(current.index, other.index):
                        seen.add(other.index)
                        group.append(other)
                        frontier.append(other)
            groups.append(sorted(group, key=lambda r: r.index))
        return groups

    def partition(self, groups: Sequence[Sequence[int]]) -> None:
        """Split the gossip network into isolated replica-index groups."""
        if self.network is None:
            raise ClusterError(
                "cannot partition an ideal cluster network; give the "
                "cluster a real network profile (e.g. 'lan')")
        self.network.partition(
            [[self.replicas[i].name for i in group] for group in groups])
        self.partitions_started += 1
        self._invalidate_topology()
        if self.obs is not None:
            self.obs.event("cluster.partition",
                           groups=[sorted(int(i) for i in group)
                                   for group in groups])

    def heal(self) -> None:
        """Remove the partition (gossip resumes; convergence follows)."""
        if self.network is not None:
            self.network.heal()
        self.heals += 1
        self._invalidate_topology()
        if self.obs is not None:
            self.obs.event("cluster.heal")

    # -- leadership ---------------------------------------------------------------

    def leader_for_height(self, height: int,
                          group: Optional[List[Replica]] = None
                          ) -> Optional[Replica]:
        """The replica entitled to produce block ``height`` (or its backup).

        Round-robin base: replica ``(height - 1) % N``.  If that replica is
        dead or outside ``group`` and failover is enabled, the next alive
        in-group replica in rotation takes over; with failover disabled the
        height has no producer until the designated leader returns.
        """
        members = group if group is not None else self.alive_replicas()
        if not members:
            return None
        count = len(self.replicas)
        base = (int(height) - 1) % count
        by_index = {replica.index: replica for replica in members
                    if replica.alive}
        if not self.config.failover:
            return by_index.get(base)
        for offset in range(count):
            candidate = by_index.get((base + offset) % count)
            if candidate is not None:
                return candidate
        return None

    def primary_group(self) -> List[Replica]:
        """The primary partition side: clients reach the cluster through it.

        Defined as the reachable group containing the lowest-index alive
        replica -- the ONE definition shared by write routing
        (:meth:`leader_replica`) and the node facade's consistency-critical
        reads, so they can never disagree about which side is primary.
        """
        groups = self.reachable_groups()
        if not groups:
            raise ClusterError("every replica in the cluster is down")
        return min(groups, key=lambda group: group[0].index)

    def leader_replica(self) -> Replica:
        """The current *write* leader: who the gateway routes writes to.

        The leader is whoever produces the primary side's next height.
        """
        primary = self.primary_group()
        height = max(replica.height for replica in primary)
        leader = self.leader_for_height(height + 1, primary)
        if leader is None:
            raise ClusterError(
                "the primary side has no eligible leader (failover is off "
                "and the designated leader is down)")
        return leader

    def attach_follower_analytics(self) -> Any:
        """Attach a columnar analytics replica to a *follower* replica.

        Picks the alive replica furthest from write leadership (the last
        one in rotation order after the current leader) so analytical
        scans never share a process with the ingest leader -- the HTAP
        placement Polynesia argues for.  With only one replica alive, that
        replica serves both roles.  Returns the feeder; the follower's
        ``logs``/``logs_page`` fan-out reads are served from the columns
        from now on (sticky across crash/recover/resync).
        """
        leader = self.leader_replica()
        alive = self.alive_replicas()
        follower = max(
            alive,
            key=lambda replica:
                (replica.index - leader.index) % len(self.replicas))
        return follower.attach_analytics()

    # -- production ----------------------------------------------------------------

    def pump(self) -> int:
        """Deliver all gossip due at the current simulated time."""
        return self.gossip.deliver_due(self.clock.now)

    def produce_now(self, force: bool = False) -> List[Any]:
        """One production round at the current time, per reachable group.

        Each group's leader produces a block on its *own* chain when its
        mempool has work (always, with ``force``), then announces the new
        head to every peer.  Returns the produced blocks.
        """
        self.pump()
        produced = []
        consensus = self._consensus()
        now_slot = consensus.slot_at(self.clock.now)
        for group in self.reachable_groups():
            height = max(replica.height for replica in group)
            leader = self.leader_for_height(height + 1, group)
            if leader is None:
                continue
            # One block per slot per side: when this side's best tip already
            # sits in the current slot, a second producer (e.g. a synchronous
            # wait_for_receipt racing the slot-cadence producer process)
            # would fork the chain for nothing.
            best_tip = max((replica.chain.latest_block for replica in group),
                           key=lambda block: block.number)
            if best_tip.number > 0 and \
                    consensus.slot_at(best_tip.timestamp) == now_slot:
                continue
            if not force and len(leader.chain.mempool) == 0:
                continue
            block = leader.chain.produce_block(advance_clock=False)
            leader.blocks_produced += 1
            self.gossip.announce_block(leader.index, block.hash, block.number)
            produced.append(block)
        self.pump()
        return produced

    def tick(self, force: bool = False) -> List[Any]:
        """Advance the clock one slot boundary and run a production round."""
        self.clock.advance_to(
            self._consensus().next_block_timestamp(self.clock.now))
        return self.produce_now(force=force)

    def _consensus(self):
        """Any live replica's consensus schedule (all share one config)."""
        alive = self.alive_replicas()
        source = alive[0] if alive else self.replicas[0]
        return source.chain.consensus

    # -- writes and mints -----------------------------------------------------------

    def submit(self, tx: Any) -> str:
        """Route a signed transaction to the write leader; flood to peers."""
        leader = self.leader_replica()
        tx_hash = leader.chain.submit_transaction(tx)
        self.gossip.flood_tx(leader.index, tx)
        return tx_hash

    def mint(self, address: Any, amount_wei: int) -> None:
        """Credit ``address`` on every replica (faucet fan-out).

        Mints never travel inside blocks, so replication happens here: live
        replicas apply the credit synchronously, dead replicas queue it and
        re-apply on recovery.  Out-of-band by design -- the operator's
        handbook documents this as the one non-gossiped mutation.
        """
        for replica in self.replicas:
            if replica.alive:
                replica.chain.mint(address, amount_wei)
            else:
                replica.missed_mints.append((str(address), int(amount_wei)))

    # -- failures --------------------------------------------------------------------

    def crash_replica(self, index: int) -> Replica:
        """Kill replica ``index`` (its disk survives; its memory does not)."""
        replica = self.replicas[index]
        replica.crash()
        self._invalidate_topology()
        if self.obs is not None:
            self.obs.event("cluster.crash", replica=replica.name)
        return replica

    def recover_replica(self, index: int) -> Replica:
        """Recover replica ``index`` from its WAL, then catch it up via a peer."""
        replica = self.replicas[index]
        replica.recover()
        self._invalidate_topology()
        if self.obs is not None:
            self.obs.event("cluster.recover", replica=replica.name,
                           height=replica.height)
        peers = [other for other in self.alive_replicas()
                 if other is not replica
                 and self.gossip.reachable(replica.index, other.index)]
        if peers:
            best = max(peers, key=lambda r: (r.height, r.head_hash))
            self.gossip.sync_from(replica, best, best.head_hash)
        return replica

    # -- convergence -----------------------------------------------------------------

    def heads_identical(self) -> bool:
        """Whether every alive replica serves the byte-identical chain head."""
        heads = {(replica.height, replica.head_hash)
                 for replica in self.alive_replicas()}
        return len(heads) <= 1

    def converge(self, max_rounds: int = 16) -> bool:
        """Anti-entropy until stable: pairwise head pulls over reachable links.

        Returns whether all alive replicas ended on one head.  Bounded by
        ``max_rounds`` defensively; one round per divergent branch suffices
        in practice because fork choice is deterministic (longest chain,
        lexicographic tie-break), so the loop cannot flap.
        """
        self.gossip.drain()
        for _ in range(max_rounds):
            changed = False
            for target in self.alive_replicas():
                for source in self.alive_replicas():
                    if source is target:
                        continue
                    if not self.gossip.reachable(target.index, source.index):
                        continue
                    if target.head_hash == source.head_hash:
                        continue
                    changed |= self.gossip.sync_from(
                        target, source, source.head_hash)
            self.gossip.drain()
            if not changed:
                break
        return self.heads_identical()

    # -- reporting -------------------------------------------------------------------

    def finalized_height(self) -> int:
        """Highest height every alive replica agrees on, minus finality depth."""
        alive = self.alive_replicas()
        if not alive:
            return 0
        return max(0, min(replica.height for replica in alive)
                   - self.config.finality_depth)

    def status(self) -> Dict[str, Any]:
        """Cluster-wide status document (``repro cluster status``)."""
        replicas = [replica.status() for replica in self.replicas]
        try:
            leader = self.leader_replica().name
        except ClusterError:
            leader = None
        return {
            "config": self.config.to_dict(),
            "clock_now": self.clock.now,
            "leader": leader,
            "converged": self.heads_identical(),
            "finalized_height": self.finalized_height(),
            "partitioned": (self.network.partitioned
                            if self.network is not None else False),
            "partitions_started": self.partitions_started,
            "heals": self.heals,
            "reorgs_total": sum(r["fork"]["reorgs"] for r in replicas),
            "side_blocks_seen": sum(r["fork"]["side_blocks_seen"]
                                    for r in replicas),
            "replicas": replicas,
            "gossip": self.gossip.stats.to_dict(),
            "network": (self.network.stats.to_dict()
                        if self.network is not None else None),
        }
