"""The cluster's node facade: one ``EthereumNode``-shaped door to N replicas.

:class:`ClusterNode` subclasses :class:`~repro.chain.node.EthereumNode` so
every existing consumer -- the JSON-RPC gateway's ``eth_*`` namespace,
wallets, the faucet, the workflow, the load generator -- can hold a cluster
without knowing it.  Routing policy:

* **writes** (``send_transaction`` and everything built on it) go to the
  current *leader* and are flooded to the other replicas by gossip;
* **consistency-critical reads** (nonces, receipts, pending state, contract
  calls) are served by the leader's chain -- read-your-writes for the
  replica that accepted the write;
* **fan-out reads** (balances, blocks, logs, height) load-balance round-robin
  across replicas that are *caught up* with the leader's head; a lagging
  replica is skipped rather than allowed to serve stale data;
* **block production** (``wait_for_receipt``, ``mine``) drives the whole
  cluster through :meth:`~repro.cluster.cluster.ChainCluster.tick`, so the
  rotation schedule decides who actually mints each height.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import UnknownTransactionError
from repro.chain.block import Block
from repro.chain.chain import Blockchain
from repro.chain.events import EventLog, LogFilter, LogPage
from repro.chain.node import EthereumNode
from repro.chain.receipts import TransactionReceipt
from repro.chain.transaction import Transaction
from repro.cluster.cluster import ChainCluster


class ClusterNode(EthereumNode):
    """``EthereumNode`` facade over a :class:`ChainCluster`."""

    def __init__(self, cluster: ChainCluster, network=None) -> None:
        # Deliberately no super().__init__: the cluster's replicas own the
        # chains; this facade only routes.
        self.cluster = cluster
        self.clock = cluster.clock
        #: Optional client->cluster RPC-link model (the same seam as
        #: ``EthereumNode.network``): submissions pay its delivery delay and
        #: can be lost before they ever reach the leader.  Distinct from the
        #: cluster's *inter-replica* gossip network.
        self.network = network
        self.storage = cluster.replicas[0].engine
        self.dropped_submissions = 0
        self._read_cursor = 0

    # -- routing -----------------------------------------------------------------

    @property
    def chain(self) -> Blockchain:  # type: ignore[override]
        """The freshest primary-side chain (the consistency-critical view).

        Delivers any due gossip first, then serves the highest caught-up
        replica of the primary partition side -- the most recent canonical
        state a client of this cluster can observe.  The *write* leader (who
        produces the next height) is computed separately by the cluster's
        rotation schedule.
        """
        self.cluster.pump()
        return self._freshest_replica().chain

    def _freshest_replica(self):
        """Highest caught-up replica of the cluster's primary side."""
        return max(self.cluster.primary_group(),
                   key=lambda replica: (replica.height, -replica.index))

    def _read_chain(self) -> Blockchain:
        """A load-balanced chain for fan-out reads.

        Round-robins across alive replicas whose head equals the freshest
        head; a lagging replica is skipped rather than allowed to serve
        stale data, so a read is never behind the write side.
        """
        self.cluster.pump()
        freshest = self._freshest_replica()
        # Never empty: the freshest replica trivially matches its own head.
        synced = [replica for replica in self.cluster.alive_replicas()
                  if replica.head_hash == freshest.head_hash]
        self._read_cursor = (self._read_cursor + 1) % len(synced)
        return synced[self._read_cursor].chain

    # -- fan-out reads -------------------------------------------------------------

    @property
    def block_number(self) -> int:
        """Height of the latest block (any caught-up replica)."""
        return self._read_chain().height

    def get_block(self, number_or_hash) -> Block:
        """Fetch a block by number or hash from a caught-up replica."""
        return self._read_chain().get_block(number_or_hash)

    def get_balance(self, address) -> int:
        """Balance of ``address`` in wei (any caught-up replica)."""
        return self._read_chain().state.balance_of(address)

    def is_contract(self, address) -> bool:
        """Whether a contract is deployed at ``address``."""
        return self._read_chain().state.get_account(address).is_contract

    def get_logs(
        self,
        log_filter: Optional[LogFilter] = None,
        limit: Optional[int] = None,
        cursor: Optional[str] = None,
    ) -> List[EventLog]:
        """Query event logs from a caught-up replica."""
        chain = self._read_chain()
        if limit is None and cursor is None:
            return chain.logs(log_filter)
        return chain.logs_page(log_filter, limit=limit, cursor=cursor).logs

    def get_logs_page(
        self,
        log_filter: Optional[LogFilter] = None,
        limit: Optional[int] = None,
        cursor: Optional[str] = None,
    ) -> LogPage:
        """Paginated log query from a caught-up replica."""
        return self._read_chain().logs_page(log_filter, limit=limit,
                                            cursor=cursor)

    # -- writes ----------------------------------------------------------------------

    def send_transaction(self, tx: Transaction) -> str:
        """Route a signed transaction to the leader and flood it to peers.

        With a client-link network model attached, the submission first
        traverses the sender->cluster RPC link exactly as it would for a
        single node (delay, retransmissions, possible loss).
        """
        self._traverse_client_link(tx)
        return self.cluster.submit(tx)

    def pending_nonce(self, address) -> int:
        """Next usable nonce, judged by the *write leader's* mempool.

        The leader is where the next submission will be validated and
        queued, so its pending set -- not a load-balanced read replica's,
        which may not have received the flood yet -- is the authority.
        """
        from repro.chain.account import Address

        self.cluster.pump()
        chain = self.cluster.leader_replica().chain
        addr = Address(address)
        return chain.state.nonce_of(addr) + chain.mempool.pending_count(addr.lower)

    # -- mints (faucet fan-out) ------------------------------------------------------

    def mint(self, address, amount_wei: int) -> None:
        """Credit ``address`` on every replica (see ``ChainCluster.mint``)."""
        self.cluster.mint(address, amount_wei)

    # -- block production ------------------------------------------------------------

    def wait_for_receipt(self, tx_hash: str,
                         max_blocks: int = 25) -> TransactionReceipt:
        """Tick the cluster until ``tx_hash`` is included on the leader side."""
        for _ in range(max_blocks):
            if self.chain.has_receipt(tx_hash):
                return self.chain.get_receipt(tx_hash)
            self.cluster.tick(force=True)
        if self.chain.has_receipt(tx_hash):
            return self.chain.get_receipt(tx_hash)
        raise UnknownTransactionError(
            f"transaction {tx_hash} not included after {max_blocks} blocks")

    def mine(self, blocks: int = 1) -> List[Block]:
        """Produce ``blocks`` cluster ticks (empty blocks included)."""
        produced: List[Block] = []
        for _ in range(blocks):
            produced.extend(self.cluster.tick(force=True))
        return produced
