"""Declarative cluster topology: replica count, links, leadership knobs.

A :class:`ClusterConfig` describes one chain-replication cluster the way a
:class:`~repro.simnet.scenario.ScenarioSpec` describes one experiment: how
many replicas run, what the inter-replica links look like (a named
``repro.simnet`` network profile, or per-replica *regions* for a geo
topology), how leader failover behaves, and how often replicas snapshot
their state for reorg rollback.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict, Optional, Tuple

from repro.errors import ClusterError

#: Inter-region one-way latency (seconds) used by geo topologies: replicas in
#: the same region talk at LAN speed, replicas in different regions pay this.
GEO_INTER_REGION_LATENCY_SECONDS = 0.08

#: Intra-region latency for geo topologies (a fast metro LAN).
GEO_INTRA_REGION_LATENCY_SECONDS = 0.001


@dataclass(frozen=True)
class ClusterConfig:
    """Static parameters of one replication cluster."""

    replicas: int = 3
    """Number of chain replicas (each owns a full copy of the chain)."""

    network_profile: str = "ideal"
    """Inter-replica link profile (a ``repro.simnet.profiles`` name).  The
    ``"ideal"`` default delivers gossip instantly and never drops."""

    regions: Optional[Tuple[int, ...]] = None
    """Optional region id per replica (geo topology): intra-region links are
    LAN-fast, inter-region links pay :data:`GEO_INTER_REGION_LATENCY_SECONDS`.
    Overrides ``network_profile`` when set."""

    failover: bool = True
    """Whether a dead or unreachable leader's slot is handed to the next
    replica in rotation.  With ``False`` the height simply stalls until the
    designated leader returns -- useful to study availability loss."""

    fork_snapshot_interval: int = 8
    """Blocks between in-memory rollback snapshots on each replica (the
    cost/rollback-depth trade-off of ``Blockchain.reorg_to``)."""

    finality_depth: int = 12
    """Blocks below the head considered final for reporting purposes.  With
    longest-chain fork choice this is advisory: it holds whenever partitions
    are shorter than ``finality_depth`` blocks, which the property tests
    arrange and the operator's handbook explains."""

    seed: int = 0
    """Seed for the gossip network model's jitter/drop draws."""

    parallel_execution: Optional[int] = None
    """Worker count for wave-parallel block production on each replica's
    *own* blocks (``repro.parallel``).  Followers always re-verify gossiped
    blocks through the serial replay path, so agreement with a wave-executing
    leader is checked structurally on every block.  ``None`` -- the default
    -- keeps every replica on the serial loop."""

    def __post_init__(self) -> None:
        if self.replicas < 1:
            raise ClusterError(
                f"a cluster needs at least one replica, got {self.replicas}")
        if self.regions is not None and len(self.regions) != self.replicas:
            raise ClusterError(
                f"regions must list one region per replica "
                f"({self.replicas}), got {len(self.regions)}")
        if self.fork_snapshot_interval < 1:
            raise ClusterError(
                f"fork_snapshot_interval must be positive, "
                f"got {self.fork_snapshot_interval}")
        if self.finality_depth < 1:
            raise ClusterError(
                f"finality_depth must be positive, got {self.finality_depth}")
        if self.parallel_execution is not None and self.parallel_execution < 1:
            raise ClusterError(
                f"parallel_execution needs at least 1 worker, "
                f"got {self.parallel_execution}")

    def with_overrides(self, **kwargs: Any) -> "ClusterConfig":
        """A copy of this config with the given fields replaced."""
        return replace(self, **kwargs)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly form (embedded in cluster status and reports)."""
        return {
            "replicas": self.replicas,
            "network_profile": self.network_profile,
            "regions": list(self.regions) if self.regions is not None else None,
            "failover": self.failover,
            "fork_snapshot_interval": self.fork_snapshot_interval,
            "finality_depth": self.finality_depth,
            "seed": self.seed,
            "parallel_execution": self.parallel_execution,
        }
