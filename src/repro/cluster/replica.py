"""One chain replica: a full chain copy, its durable store, and its lifecycle.

A :class:`Replica` owns a complete :class:`~repro.chain.chain.Blockchain`
(fork choice enabled), a :class:`~repro.storage.StorageEngine` standing in
for its local disk, and an identity: a deterministic proposer address that
ends up in the headers of every block it produces, which is what makes two
partition sides' blocks *byte-different* and fork choice observable.

Lifecycle:

* :meth:`crash` -- the simulated ``kill -9``: the in-memory chain object is
  discarded wholesale; only the storage engine (the "disk") survives;
* :meth:`recover` -- rebuild the chain from the engine's snapshot + WAL
  (``repro.storage.recover_chain``), re-enable fork choice, and re-apply any
  faucet mints the cluster performed while this replica was down;
* :meth:`resync_from` -- the snap-sync fallback: copy a peer's state and
  import its blocks verbatim.  Used when a reorg would have to roll back
  below this replica's recovery point (no rollback snapshots exist there).
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

from repro.errors import ClusterError
from repro.chain.account import Address
from repro.chain.chain import Blockchain, ChainConfig
from repro.chain.keys import KeyPair


def proposer_address(index: int) -> Address:
    """The deterministic block-proposer identity of replica ``index``."""
    return Address(KeyPair.from_label(f"cluster-replica-{index}").address)


class Replica:
    """A full chain replica inside a :class:`~repro.cluster.ChainCluster`."""

    def __init__(
        self,
        index: int,
        *,
        clock: Any,
        registry: Any,
        engine: Any,
        genesis_timestamp: float,
        chain_config: Optional[ChainConfig] = None,
        fork_snapshot_interval: int = 8,
        parallel_workers: Optional[int] = None,
    ) -> None:
        self.index = int(index)
        self.name = f"replica-{index}"
        self.clock = clock
        self.registry = registry
        self.engine = engine
        self.genesis_timestamp = float(genesis_timestamp)
        self.chain_config = chain_config or ChainConfig()
        self.fork_snapshot_interval = int(fork_snapshot_interval)
        self.alive = True
        self.blocks_produced = 0
        self.crashes = 0
        self.recoveries = 0
        self.resyncs = 0
        #: Faucet mints performed cluster-wide while this replica was down,
        #: re-applied on :meth:`recover` so balances converge again.
        self.missed_mints: List[Tuple[str, int]] = []
        #: Optional observability hooks (``repro.obs``); ``None`` -- the seed
        #: default.  Recover/resync replace the chain object, so every
        #: replacement point re-attaches via :meth:`_reattach_obs`.
        self.obs: Optional[Any] = None
        #: Whether this replica serves analytical reads from a columnar
        #: analytics replica over its own WAL (``repro.analytics``).  Sticky
        #: across crash/recover/resync: every chain replacement point
        #: re-attaches a fresh feeder, which backfills from the archive.
        self.analytics_enabled = False
        #: Wave-parallel production workers (``repro.parallel``); ``None``
        #: (the seed default) keeps the serial loop.  Sticky like analytics:
        #: every chain replacement point re-enables it, so a recovered or
        #: resynced replica produces its next leader block the same way.
        self.parallel_workers = parallel_workers
        self.chain = self._fresh_chain()

    def _reattach_obs(self) -> None:
        """Point the observability hooks at the (possibly new) chain object."""
        if self.obs is not None:
            self.obs.attach_chain(self.chain, self.name)

    def attach_analytics(self) -> Any:
        """Serve this replica's reads from a columnar analytics replica.

        The HTAP follower-replica pattern: the cluster's fan-out read path
        (``ClusterNode._read_chain``) already round-robins ``logs`` /
        ``logs_page`` over caught-up replicas, so attaching a feeder here
        transparently serves those reads from the columns while the leader
        keeps its ingest path untouched.  Returns the feeder.
        """
        from repro.analytics import attach_analytics

        self.analytics_enabled = True
        return attach_analytics(self.chain, obs=self.obs)

    def _reattach_analytics(self) -> None:
        """Re-attach a fresh analytics feeder after a chain replacement."""
        if self.analytics_enabled:
            from repro.analytics import attach_analytics

            attach_analytics(self.chain, obs=self.obs)

    def _fresh_chain(self) -> Blockchain:
        """A new empty chain bound to this replica's identity and store."""
        chain = Blockchain(
            config=self.chain_config,
            backend=self.registry,
            clock=self.clock,
            validators=[proposer_address(self.index)],
            genesis_timestamp=self.genesis_timestamp,
            store=self.engine.chain_store(),
        )
        chain.enable_fork_choice(self.registry,
                                 snapshot_interval=self.fork_snapshot_interval)
        if self.parallel_workers is not None:
            chain.enable_parallel_execution(self.parallel_workers)
        return chain

    # -- status -----------------------------------------------------------------

    @property
    def height(self) -> int:
        """Canonical chain height (last persisted view while crashed)."""
        return self.chain.height

    @property
    def head_hash(self) -> str:
        """Hash of the canonical chain head."""
        return self.chain.latest_block.hash

    def status(self) -> dict:
        """One row of ``repro cluster status``: identity, head, counters."""
        return {
            "index": self.index,
            "name": self.name,
            "alive": self.alive,
            "height": self.height,
            "head_hash": self.head_hash,
            "mempool_depth": len(self.chain.mempool),
            "blocks_produced": self.blocks_produced,
            "crashes": self.crashes,
            "recoveries": self.recoveries,
            "resyncs": self.resyncs,
            "fork": self.chain.fork_stats(),
        }

    # -- lifecycle ---------------------------------------------------------------

    def crash(self) -> None:
        """Kill the replica: its process memory is considered lost.

        The ``kill -9`` contract is enforced where it matters --
        :meth:`recover` rebuilds exclusively from the storage engine (the
        "disk") and never consults the old chain object.  The stale object
        is retained only so ``status()`` can report the replica's last-known
        view; gossip, production and leadership all skip dead replicas.
        """
        if not self.alive:
            raise ClusterError(f"{self.name} is already down")
        self.alive = False
        self.crashes += 1

    def recover(self) -> None:
        """Rebuild the chain from this replica's own WAL + latest snapshot.

        The recovered chain reaches the exact head the dead process had
        persisted; catching up with the rest of the cluster happens through
        ordinary gossip afterwards (announce -> fetch), or through
        :meth:`resync_from` when the cluster has reorged past this replica's
        recovery point.
        """
        if self.alive:
            raise ClusterError(f"{self.name} is not down")
        from repro.storage.engine import recover_chain

        chain = recover_chain(self.engine, backend=self.registry,
                              clock=self.clock)
        chain.enable_fork_choice(self.registry,
                                 snapshot_interval=self.fork_snapshot_interval)
        if self.parallel_workers is not None:
            chain.enable_parallel_execution(self.parallel_workers)
        self.chain = chain
        self._reattach_obs()
        self._reattach_analytics()
        for address, amount in self.missed_mints:
            self.chain.mint(address, amount)
        self.missed_mints.clear()
        self.alive = True
        self.recoveries += 1

    def resync_from(self, origin: "Replica") -> None:
        """Snap-sync: adopt ``origin``'s chain and state wholesale.

        Builds a fresh chain over a fresh in-memory store, imports the
        peer's canonical blocks verbatim (hash-checked, no re-execution) and
        restores a copy of its world state -- the same shape as a real
        chain's snapshot sync.  The replica's previous durable store is
        abandoned: its WAL describes a branch the cluster no longer serves.
        """
        from repro.storage.engine import StorageEngine
        from repro.storage.snapshot import encode_state, restore_state

        self.engine = StorageEngine()
        chain = Blockchain(
            config=self.chain_config,
            backend=self.registry,
            clock=self.clock,
            validators=[proposer_address(self.index)],
            genesis_timestamp=self.genesis_timestamp,
            store=self.engine.chain_store(),
        )
        for block in origin.chain.iter_blocks():
            if block.number == 0:
                continue
            chain.import_block(block.to_record())
        chain.state = restore_state(encode_state(origin.chain.state),
                                    self.registry)
        # Snapshot immediately: the fresh WAL holds verbatim blocks but no
        # mint history (mints live inside the copied state), so a later
        # recovery must restore from this snapshot rather than re-execute.
        chain.store.snapshot()
        # Fork choice starts fresh *after* the state restore: the rollback
        # snapshot written here already contains every historical mint, so
        # the mint journal correctly restarts empty.
        chain.enable_fork_choice(self.registry,
                                 snapshot_interval=self.fork_snapshot_interval)
        if self.parallel_workers is not None:
            chain.enable_parallel_execution(self.parallel_workers)
        self.chain = chain
        self._reattach_obs()
        self._reattach_analytics()
        self.resyncs += 1
        if self.obs is not None:
            self.obs.event("cluster.resync", replica=self.name,
                           origin=origin.name, height=self.chain.height)
