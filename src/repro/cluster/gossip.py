"""The gossip layer: transaction flooding and block announce/fetch.

Replicas never call each other directly.  Every piece of replicated data
crosses this layer, which models the wire with a ``repro.simnet``
:class:`~repro.simnet.netmodel.NetworkModel`:

* **transaction floods** -- a transaction accepted by one replica is flooded
  to every peer; each copy independently pays the link's delivery delay and
  can be dropped or blocked by a partition;
* **block announcements** -- a replica that appends a block announces the
  new head (hash + height) to every peer.  An announcement is tiny; on
  delivery the peer *fetches* the missing block records from the announcer
  (walking parents until it reaches a block it already knows) and applies
  them through the chain's fork choice.  This pull-based fetch is what heals
  gaps: a replica that missed ten announcements catches up entirely from the
  next one it hears.

Messages sit in per-replica inboxes ordered by delivery time and are applied
when the cluster pumps (:meth:`GossipLayer.deliver_due`), so everything stays
deterministic on the simulated clock.  Fetching is modelled as an immediate
pull at delivery time -- the announce already paid the link delay, and the
block bytes are charged to the network model's byte counters.
"""

from __future__ import annotations

import heapq
import json
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import BlockValidationError, ClusterError, ReproError

#: Safety cap on ancestors fetched per announcement (a replica further behind
#: than this resyncs from the peer's snapshot instead of walking the chain).
MAX_FETCH_DEPTH = 10_000


class GossipStats:
    """Counters the cluster status report reads off the gossip layer."""

    def __init__(self) -> None:
        self.tx_floods = 0
        self.tx_delivered = 0
        self.tx_rejected = 0
        self.announces = 0
        self.announces_delivered = 0
        self.blocks_fetched = 0
        self.reorgs_triggered = 0
        self.orphans_resolved = 0
        self.resyncs = 0
        self.undeliverable = 0

    def to_dict(self) -> Dict[str, int]:
        """JSON-friendly counter dump."""
        return {
            "tx_floods": self.tx_floods,
            "tx_delivered": self.tx_delivered,
            "tx_rejected": self.tx_rejected,
            "announces": self.announces,
            "announces_delivered": self.announces_delivered,
            "blocks_fetched": self.blocks_fetched,
            "reorgs_triggered": self.reorgs_triggered,
            "orphans_resolved": self.orphans_resolved,
            "resyncs": self.resyncs,
            "undeliverable": self.undeliverable,
        }


class GossipLayer:
    """Floods transactions and announces/fetches blocks between replicas.

    ``network`` is an optional :class:`~repro.simnet.netmodel.NetworkModel`
    keyed by replica endpoint names; ``None`` is the ideal wire (instant,
    lossless, never partitioned).
    """

    def __init__(self, replicas: List[Any], network: Optional[Any],
                 clock: Any) -> None:
        self.replicas = replicas
        self.network = network
        self.clock = clock
        self.stats = GossipStats()
        #: Optional observability hooks (``repro.obs``); ``None`` -- the seed
        #: default -- keeps send/deliver free of any tracing work.  When set,
        #: flooded tx messages carry a ``"trace"`` context dict so delivery
        #: spans on receiving replicas parent onto the sender's span.
        self.obs: Optional[Any] = None
        self._seq = 0
        #: Per-replica inbox: a heap of ``(deliver_at, seq, message)``.
        self._inboxes: List[List[Tuple[float, int, Dict[str, Any]]]] = [
            [] for _ in replicas
        ]

    # -- wire model -------------------------------------------------------------

    def reachable(self, a_index: int, b_index: int) -> bool:
        """Whether the link between two replicas is currently passable."""
        if self.network is None:
            return True
        return self.network.can_reach(
            self.replicas[a_index].name, self.replicas[b_index].name)

    def _deliver_later(self, origin: int, target: int,
                       message: Dict[str, Any], num_bytes: int) -> None:
        """Enqueue one message copy, paying the link's delivery semantics."""
        if self.network is None:
            delay, delivered = 0.0, True
        else:
            outcome = self.network.delivery_delay(
                self.replicas[origin].name, self.replicas[target].name,
                num_bytes)
            delay, delivered = outcome.delay_seconds, outcome.delivered
        if not delivered:
            self.stats.undeliverable += 1
            return
        heapq.heappush(self._inboxes[target],
                       (self.clock.now + delay, self._seq, message))
        self._seq += 1

    # -- send side --------------------------------------------------------------

    def flood_tx(self, origin_index: int, tx: Any) -> None:
        """Broadcast an accepted transaction to every other replica."""
        payload = tx.to_dict()
        wire_bytes = len(json.dumps(payload))
        for target, replica in enumerate(self.replicas):
            if target == origin_index:
                continue
            self.stats.tx_floods += 1
            message: Dict[str, Any] = {"kind": "tx", "tx": payload}
            if self.obs is not None:
                # One send span per target; ``link=False`` so its children
                # live on the *receiving* replica, not the origin's chain.
                span = self.obs.tx_span(
                    "gossip.send", tx.hash_hex, link=False,
                    replica=self.replicas[origin_index].name,
                    target=self.replicas[target].name)
                message["trace"] = self.obs.span_context(span)
                self.obs.end(span)
            self._deliver_later(origin_index, target, message, wire_bytes)

    def announce_block(self, origin_index: int, head_hash: str,
                       height: int) -> None:
        """Announce a new head to every other replica (fetch follows pull)."""
        message = {"kind": "announce", "origin": origin_index,
                   "hash": head_hash, "height": int(height)}
        for target, replica in enumerate(self.replicas):
            if target == origin_index:
                continue
            self.stats.announces += 1
            self._deliver_later(origin_index, target, message, 96)

    # -- receive side -----------------------------------------------------------

    def deliver_due(self, now: float) -> int:
        """Apply every message whose delivery time has arrived; returns count."""
        delivered = 0
        for index, replica in enumerate(self.replicas):
            inbox = self._inboxes[index]
            while inbox and inbox[0][0] <= now:
                _, _, message = heapq.heappop(inbox)
                if not replica.alive:
                    continue  # a dead replica's NIC drops everything
                self._apply(index, message)
                delivered += 1
        return delivered

    def drain(self) -> int:
        """Apply every queued message regardless of delivery time.

        Used by explicit anti-entropy (:meth:`ChainCluster.converge`) so a
        heal does not leave half-delivered gossip behind.
        """
        latest = max((deliver_at
                      for inbox in self._inboxes
                      for deliver_at, _, _ in inbox),
                     default=self.clock.now)
        return self.deliver_due(max(latest, self.clock.now))

    def _apply(self, index: int, message: Dict[str, Any]) -> None:
        replica = self.replicas[index]
        if message["kind"] == "tx":
            from repro.chain.transaction import Transaction

            span = None
            ctx = message.get("trace")
            if self.obs is not None and ctx is not None:
                span = self.obs.tx_span(
                    "gossip.deliver", ctx["trace_id"],
                    parent_id=ctx.get("parent"), replica=replica.name)
            try:
                replica.chain.submit_transaction(
                    Transaction.from_dict(message["tx"]))
                self.stats.tx_delivered += 1
                if span is not None:
                    self.obs.end(span.annotate("accepted", True))
            except ReproError:
                # Duplicate, already mined here, or invalid against this
                # replica's state -- all normal in a gossip mesh.
                self.stats.tx_rejected += 1
                if span is not None:
                    self.obs.end(span.annotate("accepted", False))
            return
        if message["kind"] == "announce":
            origin = self.replicas[message["origin"]]
            self.stats.announces_delivered += 1
            self.sync_from(replica, origin, message["hash"])
            return
        raise ClusterError(f"unknown gossip message kind {message['kind']!r}")

    # -- fetch / anti-entropy ----------------------------------------------------

    def sync_from(self, replica: Any, origin: Any, target_hash: str) -> bool:
        """Pull the chain ending at ``target_hash`` from ``origin``.

        Walks parents back from the target until hitting a block ``replica``
        already knows, then applies the records in forward order through the
        chain's fork choice.  Falls back to a full resync (state snapshot +
        verbatim block import) when the rollback a reorg would need is no
        longer possible -- e.g. a replica recovered from its WAL being asked
        to abandon pre-recovery history.  Returns True if the replica's
        canonical chain changed.
        """
        if not replica.alive or not origin.alive:
            return False
        chain = replica.chain
        if chain.knows_block(target_hash) and \
                chain.latest_block.hash == target_hash:
            return False
        records: List[Dict[str, Any]] = []
        cursor = target_hash
        while len(records) < MAX_FETCH_DEPTH and not chain.knows_block(cursor):
            record = origin.chain.block_record(cursor)
            if record is None:
                return False  # the announcer itself reorged away from it
            records.append(record)
            self.stats.blocks_fetched += 1
            cursor = record["header"]["parent_hash"]
        if not chain.knows_block(cursor):
            # Too far behind to walk the chain (the fetch budget ran out
            # before reaching shared history): snap-sync from the peer.
            self.stats.resyncs += 1
            replica.resync_from(origin)
            return True
        changed = False
        applied = 0
        try:
            for record in reversed(records):
                status = chain.apply_block(record)
                if status == "reorged":
                    self.stats.reorgs_triggered += 1
                if status in ("extended", "side", "reorged"):
                    applied += 1
                if status in ("extended", "reorged"):
                    changed = True
        except BlockValidationError:
            self.stats.resyncs += 1
            replica.resync_from(origin)
            return True
        # Ancestors pulled beyond the announced head itself are resolved gaps.
        self.stats.orphans_resolved += max(0, applied - 1)
        return changed
