"""Multi-node chain replication: gossip, leader rotation, fork choice.

``repro.cluster`` scales the single ``EthereumNode`` ingest point into N
full chain replicas connected by ``repro.simnet`` network links:

* :class:`ClusterConfig` -- declarative topology (replica count, link
  profile or geo regions, failover policy, rollback-snapshot cadence);
* :class:`ChainCluster` -- the control plane: round-robin leader rotation
  on the simulated slot clock, per-partition-side production, faucet-mint
  fan-out, crash/recover lifecycle and anti-entropy convergence;
* :class:`GossipLayer` -- transaction flooding plus block announce/fetch
  over per-link latency/drop models;
* :class:`Replica` -- one full chain copy with its own durable store,
  recoverable from its WAL and resyncable from a peer;
* :class:`ClusterNode` -- an ``EthereumNode``-shaped facade that routes
  writes to the current leader and load-balances caught-up reads, so the
  JSON-RPC gateway, wallets and the load generator can hold a cluster
  without knowing it.

The operator-facing walkthrough (how the pieces behave under partitions,
leader crashes and geo latency) lives in ``docs/architecture.md`` under
"Cluster operations"; scenario usage lives in ``docs/simnet.md``.
"""

from repro.cluster.cluster import ChainCluster, build_cluster_network
from repro.cluster.config import ClusterConfig
from repro.cluster.gossip import GossipLayer, GossipStats
from repro.cluster.node import ClusterNode
from repro.cluster.replica import Replica, proposer_address

__all__ = [
    "ChainCluster",
    "ClusterConfig",
    "ClusterNode",
    "GossipLayer",
    "GossipStats",
    "Replica",
    "build_cluster_network",
    "proposer_address",
]
