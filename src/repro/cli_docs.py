"""Auto-generated CLI reference.

:func:`cli_reference_markdown` walks the real ``argparse`` tree built by
:func:`repro.cli.build_parser` and renders every subcommand -- its help
line, positional arguments and options with defaults -- as markdown.
``docs/cli.md`` is this function's output, verbatim; a tier-1 test
(``tests/system/test_cli_docs.py``) regenerates the reference and fails if
the file has drifted from the actual parser, so the document cannot rot.

Regenerate with::

    PYTHONPATH=src python -m repro.cli_docs > docs/cli.md
"""

from __future__ import annotations

import argparse
from typing import List

HEADER = """\
# CLI reference

Every experiment in this repository is reachable from one entry point:
`python -m repro <subcommand> ...` (or the `repro` console script after
`pip install -e .`).  This file lists every subcommand and flag the parser
actually accepts.

> **Auto-generated** by `python -m repro.cli_docs > docs/cli.md`; do not
> edit by hand.  A tier-1 test (`tests/system/test_cli_docs.py`)
> regenerates it and fails when this file is out of sync with the parser.

See [docs/simnet.md](simnet.md) for what the `simulate` scenarios do,
[docs/performance.md](performance.md) for `loadgen` workflows, and
[docs/architecture.md](architecture.md) for the subsystem map (including
the cluster operations the `cluster` subcommand exercises).
"""


def _flag_cell(action: argparse.Action) -> str:
    """Render one action's invocation: flags + metavar, or the positional."""
    if action.option_strings:
        flags = ", ".join(action.option_strings)
        if action.nargs == 0:
            return f"`{flags}`"
        metavar = action.metavar or (action.dest or "").upper()
        return f"`{flags} {metavar}`"
    metavar = action.metavar or action.dest
    if action.nargs in ("*", "?"):
        return f"`[{metavar}]`"
    return f"`{metavar}`"


def _default_cell(action: argparse.Action) -> str:
    """Render an action's default value (choices shown inline)."""
    parts: List[str] = []
    if action.choices:
        parts.append("/".join(str(choice) for choice in action.choices))
    if action.default not in (None, False, argparse.SUPPRESS):
        parts.append(f"default `{action.default}`")
    return "; ".join(parts) if parts else "--"


def _escape(text: str) -> str:
    """Make free-form help text table-cell safe."""
    return (text or "").replace("|", "\\|").replace("\n", " ")


def _actions_table(parser: argparse.ArgumentParser) -> List[str]:
    """The argument table of one (sub)parser."""
    rows: List[str] = []
    for action in parser._actions:
        if isinstance(action, (argparse._HelpAction, argparse._VersionAction,
                               argparse._SubParsersAction)):
            continue
        rows.append(f"| {_flag_cell(action)} | {_default_cell(action)} "
                    f"| {_escape(action.help)} |")
    if not rows:
        return []
    return ["| Argument | Choices / default | Description |",
            "|----------|-------------------|-------------|"] + rows


def cli_reference_markdown() -> str:
    """The full CLI reference as markdown (the contents of docs/cli.md)."""
    from repro.cli import build_parser

    parser = build_parser()
    subparsers_action = next(
        action for action in parser._actions
        if isinstance(action, argparse._SubParsersAction))
    help_by_name = {
        choice.dest: choice.help
        for choice in subparsers_action._choices_actions
    }

    lines = [HEADER]
    lines.append("## Subcommands")
    lines.append("")
    lines.append("| Subcommand | Purpose |")
    lines.append("|------------|---------|")
    for name in subparsers_action.choices:
        lines.append(f"| [`{name}`](#repro-{name}) | {_escape(help_by_name.get(name))} |")
    lines.append("")
    for name, subparser in subparsers_action.choices.items():
        lines.append(f"## `repro {name}`")
        lines.append("")
        summary = help_by_name.get(name)
        if summary:
            lines.append(f"{summary[0].upper()}{summary[1:]}.")
            lines.append("")
        table = _actions_table(subparser)
        if table:
            lines.extend(table)
        else:
            lines.append("_No arguments._")
        lines.append("")
    lines.append(f"_{len(subparsers_action.choices)} subcommands._")
    lines.append("")
    return "\n".join(lines)


def main() -> int:
    """Print the reference (``python -m repro.cli_docs > docs/cli.md``)."""
    print(cli_reference_markdown(), end="")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
