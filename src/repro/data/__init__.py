"""Datasets and federated partitioning.

The paper evaluates on MNIST with the non-IID partitioning scheme of PFNM.
MNIST itself is not redistributable inside this offline reproduction, so
:mod:`repro.data.synthetic_mnist` generates a synthetic stand-in: a
784-dimensional, 10-class image-like dataset built from class prototypes with
low-rank within-class variation.  What the evaluation needs from the dataset
-- that a well-trained global model is far better than models trained on
label-skewed local shards -- is preserved.

:mod:`repro.data.partition` provides the federated splits (IID, Dirichlet,
label-skew, shards) and :mod:`repro.data.stats` quantifies their
heterogeneity.
"""

from repro.data.dataset import Dataset, train_test_split
from repro.data.partition import (
    dirichlet_partition,
    iid_partition,
    label_skew_partition,
    partition_dataset,
    shard_partition,
)
from repro.data.stats import label_distribution, label_entropy, partition_summary
from repro.data.synthetic_mnist import SyntheticMnistConfig, generate_synthetic_mnist

__all__ = [
    "Dataset",
    "train_test_split",
    "dirichlet_partition",
    "iid_partition",
    "label_skew_partition",
    "partition_dataset",
    "shard_partition",
    "label_distribution",
    "label_entropy",
    "partition_summary",
    "SyntheticMnistConfig",
    "generate_synthetic_mnist",
]
