"""Federated data partitioning.

The paper follows PFNM's non-IID partitioning of MNIST across ten model
owners.  Four schemes are provided:

* :func:`iid_partition` -- uniform random split (the homogeneous baseline);
* :func:`dirichlet_partition` -- per-client class proportions drawn from a
  Dirichlet(alpha) distribution, the scheme used by PFNM and most follow-up
  work (small alpha = highly skewed);
* :func:`label_skew_partition` -- each client holds only ``classes_per_client``
  classes (the "#C=k" pathological split);
* :func:`shard_partition` -- the original FedAvg shard scheme (sort by label,
  deal out shards).

All functions return a list of index arrays into the given dataset, one per
client, and guarantee every client receives at least ``min_samples`` samples.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.errors import PartitionError
from repro.data.dataset import Dataset
from repro.utils.rng import make_rng


def _validate(dataset: Dataset, num_clients: int) -> None:
    """Shared argument validation."""
    if num_clients <= 0:
        raise PartitionError(f"num_clients must be positive, got {num_clients}")
    if len(dataset) < num_clients:
        raise PartitionError(
            f"cannot split {len(dataset)} samples across {num_clients} clients"
        )


def iid_partition(dataset: Dataset, num_clients: int, rng=None) -> List[np.ndarray]:
    """Shuffle and deal samples round-robin, giving near-equal IID shards."""
    _validate(dataset, num_clients)
    indices = np.arange(len(dataset))
    make_rng(rng).shuffle(indices)
    return [np.sort(part) for part in np.array_split(indices, num_clients)]


def dirichlet_partition(
    dataset: Dataset,
    num_clients: int,
    alpha: float = 0.5,
    min_samples: int = 10,
    rng=None,
    max_retries: int = 100,
) -> List[np.ndarray]:
    """Split by per-class Dirichlet(alpha) proportions (PFNM's scheme).

    Smaller ``alpha`` produces stronger label skew.  The draw is retried until
    every client holds at least ``min_samples`` samples.
    """
    _validate(dataset, num_clients)
    if alpha <= 0:
        raise PartitionError(f"alpha must be positive, got {alpha}")
    generator = make_rng(rng)
    labels = dataset.labels
    for _ in range(max_retries):
        client_indices: List[List[int]] = [[] for _ in range(num_clients)]
        for cls in range(dataset.num_classes):
            class_indices = np.where(labels == cls)[0]
            if class_indices.size == 0:
                continue
            generator.shuffle(class_indices)
            proportions = generator.dirichlet([alpha] * num_clients)
            cut_points = (np.cumsum(proportions) * class_indices.size).astype(int)[:-1]
            for client, chunk in enumerate(np.split(class_indices, cut_points)):
                client_indices[client].extend(chunk.tolist())
        sizes = [len(chunk) for chunk in client_indices]
        if min(sizes) >= min_samples:
            return [np.sort(np.asarray(chunk, dtype=np.int64)) for chunk in client_indices]
    raise PartitionError(
        f"could not satisfy min_samples={min_samples} for {num_clients} clients "
        f"with alpha={alpha} after {max_retries} draws"
    )


def label_skew_partition(
    dataset: Dataset,
    num_clients: int,
    classes_per_client: int = 2,
    rng=None,
) -> List[np.ndarray]:
    """Give each client samples from only ``classes_per_client`` classes.

    Class assignments rotate so that every class is covered by roughly the
    same number of clients; each class's samples are split evenly among the
    clients that hold it.
    """
    _validate(dataset, num_clients)
    if not 1 <= classes_per_client <= dataset.num_classes:
        raise PartitionError(
            f"classes_per_client must be in [1, {dataset.num_classes}], got {classes_per_client}"
        )
    generator = make_rng(rng)
    # Rotate class assignments: client i holds classes i, i+1, ... (mod C).
    assignments = [
        [(client + offset) % dataset.num_classes for offset in range(classes_per_client)]
        for client in range(num_clients)
    ]
    holders: List[List[int]] = [[] for _ in range(dataset.num_classes)]
    for client, classes in enumerate(assignments):
        for cls in classes:
            holders[cls].append(client)

    client_indices: List[List[int]] = [[] for _ in range(num_clients)]
    for cls in range(dataset.num_classes):
        class_indices = np.where(dataset.labels == cls)[0]
        generator.shuffle(class_indices)
        cls_holders = holders[cls]
        if not cls_holders:
            continue
        for holder, chunk in zip(cls_holders, np.array_split(class_indices, len(cls_holders))):
            client_indices[holder].extend(chunk.tolist())

    sizes = [len(chunk) for chunk in client_indices]
    if min(sizes) == 0:
        raise PartitionError(
            "label-skew partition left a client with no data; "
            "increase classes_per_client or the dataset size"
        )
    return [np.sort(np.asarray(chunk, dtype=np.int64)) for chunk in client_indices]


def shard_partition(
    dataset: Dataset,
    num_clients: int,
    shards_per_client: int = 2,
    rng=None,
) -> List[np.ndarray]:
    """The FedAvg shard scheme: sort by label, cut into shards, deal them out."""
    _validate(dataset, num_clients)
    if shards_per_client <= 0:
        raise PartitionError(f"shards_per_client must be positive, got {shards_per_client}")
    num_shards = num_clients * shards_per_client
    if num_shards > len(dataset):
        raise PartitionError(
            f"{num_shards} shards requested but the dataset has only {len(dataset)} samples"
        )
    sorted_indices = np.argsort(dataset.labels, kind="stable")
    shards = np.array_split(sorted_indices, num_shards)
    order = np.arange(num_shards)
    make_rng(rng).shuffle(order)
    client_indices = [
        np.sort(np.concatenate([shards[order[client * shards_per_client + s]]
                                for s in range(shards_per_client)]))
        for client in range(num_clients)
    ]
    return client_indices


def partition_dataset(
    dataset: Dataset,
    num_clients: int,
    scheme: str = "dirichlet",
    rng=None,
    **kwargs,
) -> List[Dataset]:
    """Partition and materialize per-client :class:`Dataset` objects.

    ``scheme`` selects one of the index-level partitioners above:
    ``"iid"``, ``"dirichlet"``, ``"label_skew"`` or ``"shard"``.
    """
    schemes = {
        "iid": iid_partition,
        "dirichlet": dirichlet_partition,
        "label_skew": label_skew_partition,
        "shard": shard_partition,
    }
    if scheme not in schemes:
        raise PartitionError(f"unknown partition scheme {scheme!r}; expected one of {sorted(schemes)}")
    indices = schemes[scheme](dataset, num_clients, rng=rng, **kwargs)
    return [dataset.subset(chunk) for chunk in indices]
