"""Statistics describing how heterogeneous a federated partition is."""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from repro.data.dataset import Dataset


def label_distribution(dataset: Dataset) -> np.ndarray:
    """Normalized class histogram of a dataset (sums to 1)."""
    counts = dataset.class_counts().astype(np.float64)
    total = counts.sum()
    if total == 0:
        return counts
    return counts / total


def label_entropy(dataset: Dataset) -> float:
    """Shannon entropy (nats) of the label distribution.

    A uniform split over 10 classes has entropy ``ln(10) ~= 2.30``; a client
    holding a single class has entropy 0, so low values indicate strong skew.
    """
    distribution = label_distribution(dataset)
    nonzero = distribution[distribution > 0]
    return float(-np.sum(nonzero * np.log(nonzero)))


def partition_summary(clients: Sequence[Dataset]) -> Dict[str, object]:
    """Summarize a list of client datasets (sizes, skew, class coverage)."""
    sizes = [len(client) for client in clients]
    entropies = [label_entropy(client) for client in clients]
    coverage = [int(np.count_nonzero(client.class_counts())) for client in clients]
    return {
        "num_clients": len(clients),
        "sizes": sizes,
        "total_samples": int(np.sum(sizes)),
        "min_size": int(np.min(sizes)) if sizes else 0,
        "max_size": int(np.max(sizes)) if sizes else 0,
        "mean_label_entropy": float(np.mean(entropies)) if entropies else 0.0,
        "classes_per_client": coverage,
    }
