"""A small immutable dataset container."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.errors import ShapeError
from repro.utils.rng import make_rng


@dataclass(frozen=True)
class Dataset:
    """Features and integer labels, with convenience accessors."""

    features: np.ndarray
    labels: np.ndarray
    num_classes: int

    def __post_init__(self) -> None:
        features = np.asarray(self.features, dtype=np.float64)
        labels = np.asarray(self.labels, dtype=np.int64)
        if features.ndim != 2:
            raise ShapeError(f"features must be 2-D, got shape {features.shape}")
        if labels.ndim != 1 or labels.shape[0] != features.shape[0]:
            raise ShapeError(
                f"labels must be 1-D with one entry per sample, got {labels.shape} "
                f"for {features.shape[0]} samples"
            )
        if self.num_classes <= 0:
            raise ShapeError(f"num_classes must be positive, got {self.num_classes}")
        if labels.size and (labels.min() < 0 or labels.max() >= self.num_classes):
            raise ShapeError(
                f"labels must lie in [0, {self.num_classes}), got range "
                f"[{labels.min()}, {labels.max()}]"
            )
        object.__setattr__(self, "features", features)
        object.__setattr__(self, "labels", labels)

    def __len__(self) -> int:
        return self.features.shape[0]

    @property
    def num_features(self) -> int:
        """Dimensionality of each sample."""
        return self.features.shape[1]

    def subset(self, indices: Sequence[int]) -> "Dataset":
        """A new dataset restricted to ``indices`` (order preserved)."""
        index_array = np.asarray(indices, dtype=np.int64)
        return Dataset(
            features=self.features[index_array],
            labels=self.labels[index_array],
            num_classes=self.num_classes,
        )

    def class_counts(self) -> np.ndarray:
        """Number of samples per class (length ``num_classes``)."""
        return np.bincount(self.labels, minlength=self.num_classes)

    def shuffled(self, rng=None) -> "Dataset":
        """A copy with samples in random order."""
        indices = np.arange(len(self))
        make_rng(rng).shuffle(indices)
        return self.subset(indices)


def train_test_split(dataset: Dataset, test_fraction: float = 0.2, rng=None) -> Tuple[Dataset, Dataset]:
    """Split a dataset into train and test portions after shuffling.

    The split is stratification-free but shuffled, which is sufficient for the
    synthetic dataset's balanced classes.
    """
    if not 0.0 < test_fraction < 1.0:
        raise ValueError(f"test_fraction must be in (0, 1), got {test_fraction}")
    indices = np.arange(len(dataset))
    make_rng(rng).shuffle(indices)
    test_count = int(round(len(dataset) * test_fraction))
    test_indices = indices[:test_count]
    train_indices = indices[test_count:]
    return dataset.subset(train_indices), dataset.subset(test_indices)
