"""A synthetic MNIST-like dataset.

MNIST is not available offline, so experiments use a synthetic 10-class,
784-dimensional (28x28) dataset with the statistical structure the
evaluation depends on:

* each class has a distinct smooth "digit-like" prototype image built from a
  few random Gaussian strokes;
* samples are the class prototype plus low-rank within-class variation plus
  pixel noise, clipped to [0, 1];
* classes are balanced by default and linearly separable *enough* that a
  well-trained MLP reaches high accuracy, while models trained on
  label-skewed shards generalize poorly to unseen classes -- which is the
  phenomenon Fig. 4 of the paper illustrates.

The substitution is documented in DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.data.dataset import Dataset
from repro.utils.rng import derive_seed, make_rng

IMAGE_SIDE = 28
NUM_PIXELS = IMAGE_SIDE * IMAGE_SIDE


@dataclass(frozen=True)
class SyntheticMnistConfig:
    """Parameters of the synthetic dataset generator."""

    num_samples: int = 10_000
    num_classes: int = 10
    num_features: int = NUM_PIXELS
    strokes_per_class: int = 6
    variation_rank: int = 8
    variation_scale: float = 0.35
    noise_scale: float = 0.10
    class_similarity: float = 0.0
    label_noise: float = 0.0
    seed: int = 7

    def __post_init__(self) -> None:
        if self.num_samples <= 0:
            raise ValueError(f"num_samples must be positive, got {self.num_samples}")
        if self.num_classes <= 1:
            raise ValueError(f"num_classes must be at least 2, got {self.num_classes}")
        if self.num_features <= 0:
            raise ValueError(f"num_features must be positive, got {self.num_features}")
        if not 0.0 <= self.class_similarity < 1.0:
            raise ValueError(f"class_similarity must be in [0, 1), got {self.class_similarity}")
        if not 0.0 <= self.label_noise < 1.0:
            raise ValueError(f"label_noise must be in [0, 1), got {self.label_noise}")


def _class_prototype(rng: np.random.Generator, config: SyntheticMnistConfig) -> np.ndarray:
    """Build one class prototype as a sum of random Gaussian strokes."""
    side = int(round(np.sqrt(config.num_features)))
    side = max(side, 2)
    ys, xs = np.mgrid[0:side, 0:side]
    image = np.zeros((side, side), dtype=np.float64)
    for _ in range(config.strokes_per_class):
        center_y, center_x = rng.uniform(side * 0.2, side * 0.8, size=2)
        sigma_y, sigma_x = rng.uniform(side * 0.05, side * 0.18, size=2)
        angle = rng.uniform(0, np.pi)
        dy, dx = ys - center_y, xs - center_x
        rot_y = dy * np.cos(angle) - dx * np.sin(angle)
        rot_x = dy * np.sin(angle) + dx * np.cos(angle)
        image += np.exp(-(rot_y**2 / (2 * sigma_y**2) + rot_x**2 / (2 * sigma_x**2)))
    image /= max(image.max(), 1e-9)
    flat = image.ravel()
    if flat.size >= config.num_features:
        return flat[: config.num_features]
    return np.pad(flat, (0, config.num_features - flat.size))


def generate_synthetic_mnist(config: Optional[SyntheticMnistConfig] = None) -> Dataset:
    """Generate the synthetic dataset described in the module docstring."""
    config = config or SyntheticMnistConfig()
    prototype_rng = make_rng(derive_seed(config.seed, "prototypes"))
    prototypes = np.stack(
        [_class_prototype(prototype_rng, config) for _ in range(config.num_classes)]
    )
    if config.class_similarity > 0.0:
        # Blend every class prototype toward a shared "background" so that
        # classes overlap and small local datasets cannot separate them well.
        shared = _class_prototype(prototype_rng, config)
        prototypes = (
            config.class_similarity * shared[None, :]
            + (1.0 - config.class_similarity) * prototypes
        )
    variation_rng = make_rng(derive_seed(config.seed, "variation"))
    variation_bases = variation_rng.normal(
        0.0, 1.0, size=(config.num_classes, config.variation_rank, config.num_features)
    )
    variation_bases /= np.linalg.norm(variation_bases, axis=2, keepdims=True) + 1e-12

    sample_rng = make_rng(derive_seed(config.seed, "samples"))
    labels = sample_rng.integers(0, config.num_classes, size=config.num_samples)
    coefficients = sample_rng.normal(
        0.0, config.variation_scale, size=(config.num_samples, config.variation_rank)
    )
    noise = sample_rng.normal(0.0, config.noise_scale, size=(config.num_samples, config.num_features))

    features = prototypes[labels]
    features = features + np.einsum("nr,nrf->nf", coefficients, variation_bases[labels]) + noise
    features = np.clip(features, 0.0, 1.0)

    if config.label_noise > 0.0:
        # Flip a fraction of labels uniformly at random, putting an intrinsic
        # ceiling on achievable test accuracy (as real MNIST's ambiguity does).
        noise_rng = make_rng(derive_seed(config.seed, "label-noise"))
        flip = noise_rng.random(config.num_samples) < config.label_noise
        labels = labels.copy()
        labels[flip] = noise_rng.integers(0, config.num_classes, size=int(flip.sum()))

    return Dataset(features=features, labels=labels, num_classes=config.num_classes)
