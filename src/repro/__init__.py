"""OFL-W3 reproduction: a one-shot federated learning system on Web 3.0.

The :mod:`repro` package reproduces the system described in *"OFL-W3: A
One-shot Federated Learning System on Web 3.0"* (PVLDB 2024).  It contains
every substrate the demo system depends on, implemented from scratch in pure
Python/NumPy:

``repro.chain``
    An Ethereum-like blockchain with accounts, transactions, gas accounting,
    blocks, a proof-of-authority consensus clock and an Etherscan-like
    explorer.
``repro.contracts``
    A gas-metered smart-contract execution framework and the contracts the
    paper deploys (CID storage, FL-task escrow, a fungible token).
``repro.ipfs``
    A content-addressed storage network (chunking, Merkle DAG, CIDs,
    multi-node swarm, pinning, gateway).
``repro.ml``
    A NumPy neural-network substrate (MLPs, optimizers, training loop).
``repro.data``
    A synthetic MNIST-like dataset plus IID / Dirichlet / label-skew
    partitioners.
``repro.fl``
    Federated-learning clients and servers, multi-round FedAvg, and the
    one-shot aggregators (PFNM neuron matching, ensembles, FedOV-style
    voting, naive averaging).
``repro.incentives``
    Leave-one-out and Shapley contribution measures and payment allocation.
``repro.web``
    A Flask-like backend, a MetaMask-like wallet simulator, and DApp
    facades for the buyer and owner interfaces.
``repro.rpc``
    A versioned JSON-RPC 2.0 gateway (the one metered door to the stack)
    and the typed ``MarketplaceClient`` SDK.
``repro.storage``
    The durable, pluggable storage engine: write-ahead log, periodic
    chain-state snapshots with replay-based crash recovery, blob spaces for
    IPFS payloads, and a shared LRU read cache.
``repro.simnet``
    A discrete-event scenario simulator: concurrent tasks, adversarial
    owner populations, lossy networks, node crash/recovery.
``repro.loadgen``
    An open-/closed-loop workload driver: Zipf-skewed, bursty request
    mixes, latency percentiles and saturation sweeps at the gateway.
``repro.cluster``
    Multi-node chain replication: gossip transaction/block dissemination,
    round-robin leader rotation with failover, longest-chain fork choice
    with reorgs, and WAL-based replica recovery.
``repro.system``
    The OFL-W3 workflow (Steps 1-7 of the paper), roles, timing model and
    the experiment orchestrator.
"""

from repro.version import __version__

__all__ = ["__version__"]
