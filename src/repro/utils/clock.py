"""A deterministic simulated clock.

Real-world OFL-W3 latency is dominated by waiting for block inclusion on
Sepolia (~12 s slots) and IPFS transfers.  To reproduce the execution-time
breakdown (Fig. 7) deterministically and instantly, every component that
"waits" does so against a :class:`SimulatedClock` rather than wall time.
The clock only moves when a component explicitly advances it, which makes
experiments reproducible and fast while preserving relative durations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple


ClockObserver = Callable[[float, float], None]


@dataclass
class SimulatedClock:
    """A monotonically non-decreasing virtual clock measured in seconds.

    Observers subscribed with :meth:`subscribe` are notified on every forward
    movement with ``(old_now, new_now)``.  The event scheduler and the
    scenario runner (``repro.simnet``) use this to sample time-series metrics
    (e.g. mempool depth) whenever any component -- even one deep inside
    ``wait_for_receipt`` -- moves simulated time.
    """

    start_time: float = 0.0
    _now: float = field(init=False)
    _observers: List[ClockObserver] = field(init=False, default_factory=list)

    def __post_init__(self) -> None:
        self._now = float(self.start_time)

    @property
    def now(self) -> float:
        """Current virtual time in seconds since the epoch of the simulation."""
        return self._now

    def subscribe(self, observer: ClockObserver) -> ClockObserver:
        """Register ``observer(old_now, new_now)`` for every forward movement."""
        self._observers.append(observer)
        return observer

    def unsubscribe(self, observer: ClockObserver) -> None:
        """Remove a previously subscribed observer (no-op if absent)."""
        if observer in self._observers:
            self._observers.remove(observer)

    def _move_to(self, timestamp: float) -> float:
        old = self._now
        self._now = float(timestamp)
        if self._now > old:
            for observer in self._observers:
                observer(old, self._now)
        return self._now

    def advance(self, seconds: float) -> float:
        """Advance the clock by ``seconds`` (must be non-negative)."""
        if seconds < 0:
            raise ValueError(f"cannot advance clock by negative time: {seconds}")
        return self._move_to(self._now + float(seconds))

    def advance_to(self, timestamp: float) -> float:
        """Advance the clock to an absolute ``timestamp`` if it is in the future."""
        if timestamp > self._now:
            self._move_to(timestamp)
        return self._now

    def sleep(self, seconds: float) -> None:
        """Alias of :meth:`advance`, mirroring ``time.sleep`` call sites."""
        self.advance(seconds)


class Stopwatch:
    """Accumulates named durations against a :class:`SimulatedClock`.

    Components report how long each phase of the OFL-W3 workflow took; the
    stopwatch records (label, duration) pairs which the Fig. 7 benchmark then
    groups into the owner/buyer time breakdown.
    """

    def __init__(self, clock: Optional[SimulatedClock] = None) -> None:
        self.clock = clock or SimulatedClock()
        self._records: List[Tuple[str, float]] = []

    def record(self, label: str, seconds: float) -> None:
        """Advance the clock by ``seconds`` and remember it under ``label``."""
        self.clock.advance(seconds)
        self._records.append((label, float(seconds)))

    def measure(self, label: str, fn: Callable[[], object], seconds: float) -> object:
        """Run ``fn`` and attribute a simulated duration of ``seconds`` to it."""
        result = fn()
        self.record(label, seconds)
        return result

    @property
    def records(self) -> List[Tuple[str, float]]:
        """All recorded (label, seconds) pairs in insertion order."""
        return list(self._records)

    def totals(self) -> Dict[str, float]:
        """Total simulated seconds per label."""
        totals: Dict[str, float] = {}
        for label, seconds in self._records:
            totals[label] = totals.get(label, 0.0) + seconds
        return totals

    @property
    def total(self) -> float:
        """Total simulated seconds across all labels."""
        return sum(seconds for _, seconds in self._records)
