"""Binary-to-text encodings used by the chain (hex) and IPFS (base58/base32).

The implementations follow the multibase conventions used by IPFS:

* base58btc -- the Bitcoin alphabet, used by CIDv0 (``Qm...``) strings;
* base32 lower-case without padding (RFC 4648), used by CIDv1 (``bafy...``);
* ``0x``-prefixed hexadecimal, used by Ethereum addresses and hashes.
"""

from __future__ import annotations

_B58_ALPHABET = "123456789ABCDEFGHJKLMNPQRSTUVWXYZabcdefghijkmnopqrstuvwxyz"
_B58_INDEX = {c: i for i, c in enumerate(_B58_ALPHABET)}

_B32_ALPHABET = "abcdefghijklmnopqrstuvwxyz234567"
_B32_INDEX = {c: i for i, c in enumerate(_B32_ALPHABET)}


# ---------------------------------------------------------------------------
# Hexadecimal
# ---------------------------------------------------------------------------


def to_hex(data: bytes, prefix: bool = True) -> str:
    """Encode bytes as lowercase hex, with a ``0x`` prefix by default."""
    hexstr = bytes(data).hex()
    return "0x" + hexstr if prefix else hexstr


def from_hex(text: str) -> bytes:
    """Decode a hex string (with or without ``0x`` prefix) into bytes."""
    if not isinstance(text, str):
        raise TypeError(f"from_hex expects str, got {type(text).__name__}")
    stripped = text[2:] if text.startswith(("0x", "0X")) else text
    if len(stripped) % 2 != 0:
        raise ValueError(f"hex string has odd length: {text!r}")
    try:
        return bytes.fromhex(stripped)
    except ValueError as exc:
        raise ValueError(f"invalid hex string: {text!r}") from exc


# ---------------------------------------------------------------------------
# Base58 (Bitcoin alphabet) -- CIDv0
# ---------------------------------------------------------------------------


def b58_encode(data: bytes) -> str:
    """Encode bytes in base58btc (the alphabet used by CIDv0 strings)."""
    data = bytes(data)
    # Count leading zero bytes: each is encoded as '1'.
    n_leading_zeros = len(data) - len(data.lstrip(b"\x00"))
    num = int.from_bytes(data, "big")
    chars = []
    while num > 0:
        num, rem = divmod(num, 58)
        chars.append(_B58_ALPHABET[rem])
    return "1" * n_leading_zeros + "".join(reversed(chars))


def b58_decode(text: str) -> bytes:
    """Decode a base58btc string into bytes."""
    if not isinstance(text, str):
        raise TypeError(f"b58_decode expects str, got {type(text).__name__}")
    num = 0
    for char in text:
        if char not in _B58_INDEX:
            raise ValueError(f"invalid base58 character {char!r} in {text!r}")
        num = num * 58 + _B58_INDEX[char]
    n_leading_ones = len(text) - len(text.lstrip("1"))
    body = num.to_bytes((num.bit_length() + 7) // 8, "big") if num else b""
    return b"\x00" * n_leading_ones + body


# ---------------------------------------------------------------------------
# Base32 (RFC 4648, lowercase, unpadded) -- CIDv1
# ---------------------------------------------------------------------------


def b32_encode(data: bytes) -> str:
    """Encode bytes in lowercase unpadded base32 (as used by CIDv1)."""
    data = bytes(data)
    bits = 0
    bit_count = 0
    out = []
    for byte in data:
        bits = (bits << 8) | byte
        bit_count += 8
        while bit_count >= 5:
            bit_count -= 5
            out.append(_B32_ALPHABET[(bits >> bit_count) & 0x1F])
    if bit_count:
        out.append(_B32_ALPHABET[(bits << (5 - bit_count)) & 0x1F])
    return "".join(out)


def b32_decode(text: str) -> bytes:
    """Decode a lowercase unpadded base32 string into bytes."""
    if not isinstance(text, str):
        raise TypeError(f"b32_decode expects str, got {type(text).__name__}")
    bits = 0
    bit_count = 0
    out = bytearray()
    for char in text.lower():
        if char not in _B32_INDEX:
            raise ValueError(f"invalid base32 character {char!r} in {text!r}")
        bits = (bits << 5) | _B32_INDEX[char]
        bit_count += 5
        if bit_count >= 8:
            bit_count -= 8
            out.append((bits >> bit_count) & 0xFF)
    return bytes(out)
