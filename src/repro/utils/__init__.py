"""Shared low-level utilities: hashing, encodings, serialization, units.

These helpers are deliberately dependency-free (standard library + NumPy
only) and are used by every other subsystem.  They are re-exported here for
convenience:

>>> from repro.utils import keccak256, to_hex, ether_to_wei
"""

from repro.utils.clock import SimulatedClock
from repro.utils.encoding import (
    b32_decode,
    b32_encode,
    b58_decode,
    b58_encode,
    from_hex,
    to_hex,
)
from repro.utils.hashing import hash_json, keccak256, ripemd160_like, sha256
from repro.utils.rng import derive_seed, make_rng
from repro.utils.serialization import canonical_dumps, canonical_loads, rlp_encode
from repro.utils.units import (
    ETHER,
    GWEI,
    WEI,
    ether_to_wei,
    format_ether,
    gwei_to_wei,
    wei_to_ether,
    wei_to_gwei,
)

__all__ = [
    "SimulatedClock",
    "b32_decode",
    "b32_encode",
    "b58_decode",
    "b58_encode",
    "from_hex",
    "to_hex",
    "hash_json",
    "keccak256",
    "ripemd160_like",
    "sha256",
    "derive_seed",
    "make_rng",
    "canonical_dumps",
    "canonical_loads",
    "rlp_encode",
    "ETHER",
    "GWEI",
    "WEI",
    "ether_to_wei",
    "format_ether",
    "gwei_to_wei",
    "wei_to_ether",
    "wei_to_gwei",
]
