"""A small LRU read cache with hit/miss accounting.

Historically ``repro.storage.cache`` (which still re-exports it): IPFS
block fetches and snapshot loads go through one shared :class:`LRUCache` so
that a disk-backed store serves hot content at memory speed.  It lives in
``repro.utils`` because lower layers front hot paths with it too -- the
chain's address-checksum interning, for one -- and the chain package must
not depend on the storage package (storage imports the chain for recovery).
The cache never caches *writes* speculatively -- a `put` both stores and
freshens, mirroring a read-through / write-through cache -- and its
statistics are exported through the JSON-RPC ``RequestMetrics`` middleware
so scenario reports show cache effectiveness next to request counts.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Dict, Hashable

from repro.errors import StorageError


class LRUCache:
    """Least-recently-used cache with entry-count capacity and stats.

    Thread-safe: the chain's address-interning cache is shared with the
    parallel block executor's worker threads, and the check-then-act
    sequences below (hit test + ``move_to_end``, capacity test + eviction)
    would otherwise race.  A single lock keeps every operation atomic; the
    cost is nanoseconds against the lookups it fronts.
    """

    def __init__(self, capacity: int = 256) -> None:
        if capacity <= 0:
            raise StorageError(f"cache capacity must be positive, got {capacity}")
        self.capacity = int(capacity)
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.puts = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def get(self, key: Hashable, default: Any = None) -> Any:
        """Look up ``key``, counting a hit or miss and freshening on hit."""
        with self._lock:
            if key in self._entries:
                self.hits += 1
                self._entries.move_to_end(key)
                return self._entries[key]
            self.misses += 1
            return default

    def peek(self, key: Hashable, default: Any = None) -> Any:
        """Look up without touching recency or statistics (for tests/metrics)."""
        return self._entries.get(key, default)

    def put(self, key: Hashable, value: Any) -> None:
        """Insert or refresh ``key``; evicts the LRU entry when full."""
        with self._lock:
            self.puts += 1
            if key in self._entries:
                self._entries.move_to_end(key)
                self._entries[key] = value
                return
            self._entries[key] = value
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def invalidate(self, key: Hashable) -> bool:
        """Drop one entry; returns whether it was cached."""
        with self._lock:
            return self._entries.pop(key, None) is not None

    def clear(self) -> None:
        """Drop every entry (statistics are preserved)."""
        with self._lock:
            self._entries.clear()

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 with no lookups)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> Dict[str, Any]:
        """Canonical statistics spelling (alias of :meth:`snapshot`).

        ``repro.obs`` samples every registered cache through this one name,
        unifying the historical trio of ``address_cache_stats()``, the
        ``storage_cacheStats`` RPC method and ``cache.snapshot()``.
        """
        return self.snapshot()

    def snapshot(self) -> Dict[str, Any]:
        """JSON-friendly statistics dump (deterministic across runs)."""
        return {
            "capacity": self.capacity,
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "puts": self.puts,
            "hit_rate": round(self.hit_rate, 4),
        }
