"""Ether denomination conversions.

All on-chain balances, values and gas prices in :mod:`repro.chain` are held
as integer **wei** exactly as Ethereum does, so arithmetic is exact.  These
helpers convert between wei, gwei and ether and format amounts for reports
such as the payment table (Table 1 of the paper).
"""

from __future__ import annotations

from decimal import Decimal
from typing import Union

Number = Union[int, float, str, Decimal]

WEI = 1
GWEI = 10**9
ETHER = 10**18


def ether_to_wei(amount: Number) -> int:
    """Convert an ether amount (int/float/str/Decimal) into integer wei."""
    return int(Decimal(str(amount)) * ETHER)


def gwei_to_wei(amount: Number) -> int:
    """Convert a gwei amount into integer wei."""
    return int(Decimal(str(amount)) * GWEI)


def wei_to_ether(amount_wei: int) -> Decimal:
    """Convert integer wei into a :class:`~decimal.Decimal` ether amount."""
    return Decimal(amount_wei) / ETHER


def wei_to_gwei(amount_wei: int) -> Decimal:
    """Convert integer wei into a :class:`~decimal.Decimal` gwei amount."""
    return Decimal(amount_wei) / GWEI


def format_ether(amount_wei: int, places: int = 8) -> str:
    """Format a wei amount as an ether string with ``places`` decimals.

    Used by the payment-table report, matching the paper's ``0.00162366``
    style of presentation.
    """
    return f"{wei_to_ether(amount_wei):.{places}f}"
