"""Cryptographic hash helpers used by the chain and IPFS substrates.

The real OFL-W3 system relies on Ethereum's Keccak-256 and IPFS's SHA2-256.
Python's :mod:`hashlib` ships SHA3-256 (the standardized Keccak variant) and
SHA2-256; we use ``sha3_256`` wherever Ethereum would use Keccak-256.  The
distinction (padding byte) is irrelevant for the reproduction: all that
matters is a collision-resistant 32-byte digest with deterministic output.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any


def sha256(data: bytes) -> bytes:
    """Return the SHA2-256 digest of ``data`` (32 bytes)."""
    if not isinstance(data, (bytes, bytearray, memoryview)):
        raise TypeError(f"sha256 expects bytes, got {type(data).__name__}")
    return hashlib.sha256(bytes(data)).digest()


def keccak256(data: bytes) -> bytes:
    """Return a 32-byte Keccak-style digest of ``data``.

    Implemented with SHA3-256 (see module docstring); used for addresses,
    transaction hashes, block hashes and event topics, exactly where Ethereum
    uses Keccak-256.
    """
    if not isinstance(data, (bytes, bytearray, memoryview)):
        raise TypeError(f"keccak256 expects bytes, got {type(data).__name__}")
    return hashlib.sha3_256(bytes(data)).digest()


def ripemd160_like(data: bytes) -> bytes:
    """Return a 20-byte digest (used where Bitcoin-style stacks use RIPEMD160).

    ``hashlib.new("ripemd160")`` is not guaranteed to exist on every OpenSSL
    build, so we derive a 20-byte digest by truncating SHA2-256 of the
    SHA2-256 of the input.  Only the length and collision resistance matter
    for the simulation.
    """
    return sha256(sha256(data))[:20]


def hash_json(obj: Any) -> bytes:
    """Hash an arbitrary JSON-serializable object deterministically.

    Keys are sorted and separators fixed so that logically equal objects hash
    to the same digest regardless of insertion order.
    """
    payload = json.dumps(obj, sort_keys=True, separators=(",", ":"), default=_default)
    return keccak256(payload.encode("utf-8"))


def _default(obj: Any) -> Any:
    """JSON fallback encoder for bytes and objects exposing ``to_dict``."""
    if isinstance(obj, (bytes, bytearray)):
        return "0x" + bytes(obj).hex()
    if hasattr(obj, "to_dict"):
        return obj.to_dict()
    raise TypeError(f"Object of type {type(obj).__name__} is not JSON serializable")
