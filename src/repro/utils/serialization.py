"""Deterministic serialization helpers.

Two encodings are provided:

* :func:`canonical_dumps` / :func:`canonical_loads` -- canonical JSON
  (sorted keys, fixed separators, UTF-8) used for hashing structured objects
  such as transactions and IPFS DAG nodes.  Bytes values are transparently
  encoded as ``{"__bytes__": "0x..."}`` envelopes so round-tripping is exact.
* :func:`rlp_encode` -- a recursive-length-prefix encoding in the spirit of
  Ethereum's RLP, used to give transactions and blocks a compact binary wire
  form whose byte length feeds the calldata gas computation.
"""

from __future__ import annotations

import json
from typing import Any, List, Sequence, Union

RlpItem = Union[bytes, Sequence["RlpItem"]]


# ---------------------------------------------------------------------------
# Canonical JSON
# ---------------------------------------------------------------------------


def _encode_value(value: Any) -> Any:
    """Recursively rewrite values into a JSON-safe canonical form."""
    if isinstance(value, (bytes, bytearray)):
        return {"__bytes__": "0x" + bytes(value).hex()}
    if isinstance(value, dict):
        return {str(key): _encode_value(val) for key, val in value.items()}
    if isinstance(value, (list, tuple)):
        return [_encode_value(item) for item in value]
    if hasattr(value, "to_dict"):
        return _encode_value(value.to_dict())
    return value


def _decode_value(value: Any) -> Any:
    """Inverse of :func:`_encode_value`."""
    if isinstance(value, dict):
        if set(value.keys()) == {"__bytes__"}:
            return bytes.fromhex(value["__bytes__"][2:])
        return {key: _decode_value(val) for key, val in value.items()}
    if isinstance(value, list):
        return [_decode_value(item) for item in value]
    return value


def canonical_dumps(obj: Any) -> str:
    """Serialize ``obj`` to canonical JSON (sorted keys, no whitespace)."""
    return json.dumps(_encode_value(obj), sort_keys=True, separators=(",", ":"))


def canonical_loads(text: str) -> Any:
    """Parse canonical JSON produced by :func:`canonical_dumps`."""
    return _decode_value(json.loads(text))


# ---------------------------------------------------------------------------
# RLP-like binary encoding
# ---------------------------------------------------------------------------


def _encode_length(length: int, offset: int) -> bytes:
    """Encode a length header per the RLP scheme."""
    if length < 56:
        return bytes([offset + length])
    length_bytes = length.to_bytes((length.bit_length() + 7) // 8, "big")
    return bytes([offset + 55 + len(length_bytes)]) + length_bytes


def rlp_encode(item: RlpItem) -> bytes:
    """Encode a nested structure of bytes / lists into RLP-style bytes.

    Integers and strings are accepted for convenience and converted to their
    minimal big-endian / UTF-8 byte representation first.
    """
    if isinstance(item, int):
        if item < 0:
            raise ValueError("rlp_encode does not support negative integers")
        item = item.to_bytes((item.bit_length() + 7) // 8, "big") if item else b""
    if isinstance(item, str):
        item = item.encode("utf-8")
    if isinstance(item, (bytes, bytearray)):
        data = bytes(item)
        if len(data) == 1 and data[0] < 0x80:
            return data
        return _encode_length(len(data), 0x80) + data
    if isinstance(item, (list, tuple)):
        payload = b"".join(rlp_encode(sub) for sub in item)
        return _encode_length(len(payload), 0xC0) + payload
    raise TypeError(f"rlp_encode cannot encode {type(item).__name__}")


def rlp_decode(data: bytes) -> RlpItem:
    """Decode RLP-encoded bytes back into nested bytes/lists."""
    item, consumed = _decode_item(bytes(data), 0)
    if consumed != len(data):
        raise ValueError("trailing bytes after RLP item")
    return item


def _decode_item(data: bytes, offset: int) -> tuple:
    """Decode one RLP item starting at ``offset``; return (item, next offset)."""
    if offset >= len(data):
        raise ValueError("unexpected end of RLP data")
    prefix = data[offset]
    if prefix < 0x80:
        return bytes([prefix]), offset + 1
    if prefix < 0xB8:
        length = prefix - 0x80
        start = offset + 1
        return data[start:start + length], start + length
    if prefix < 0xC0:
        length_size = prefix - 0xB7
        start = offset + 1
        length = int.from_bytes(data[start:start + length_size], "big")
        start += length_size
        return data[start:start + length], start + length
    if prefix < 0xF8:
        length = prefix - 0xC0
        return _decode_list(data, offset + 1, length)
    length_size = prefix - 0xF7
    start = offset + 1
    length = int.from_bytes(data[start:start + length_size], "big")
    return _decode_list(data, start + length_size, length)


def _decode_list(data: bytes, start: int, length: int) -> tuple:
    """Decode a list payload of ``length`` bytes starting at ``start``."""
    end = start + length
    items: List[RlpItem] = []
    cursor = start
    while cursor < end:
        item, cursor = _decode_item(data, cursor)
        items.append(item)
    if cursor != end:
        raise ValueError("malformed RLP list payload")
    return items, end
