"""Seed management helpers.

Every stochastic component (data generation, partitioning, weight
initialization, training shuffles, Monte-Carlo Shapley) receives an explicit
NumPy :class:`~numpy.random.Generator`.  :func:`derive_seed` deterministically
derives child seeds from a parent seed and a string label so that experiments
are reproducible yet components do not share generator state.
"""

from __future__ import annotations

import hashlib
from typing import Optional, Union

import numpy as np

SeedLike = Union[int, np.random.Generator, None]


def derive_seed(base_seed: int, label: str) -> int:
    """Derive a 32-bit child seed from ``base_seed`` and a ``label``.

    The derivation hashes the pair so that distinct labels yield independent
    streams and the mapping is stable across runs and platforms.
    """
    digest = hashlib.sha256(f"{base_seed}:{label}".encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "big")


def make_rng(seed: SeedLike = None, label: Optional[str] = None) -> np.random.Generator:
    """Build a NumPy Generator from an int seed, an existing Generator or None.

    If ``label`` is given together with an integer seed, the child seed is
    derived with :func:`derive_seed`.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        return np.random.default_rng()
    if label is not None:
        seed = derive_seed(int(seed), label)
    return np.random.default_rng(int(seed))
