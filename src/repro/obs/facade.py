"""The :class:`Observability` facade every subsystem hooks into.

One instance bundles the four pillars -- :class:`MetricsRegistry`,
:class:`Tracer`, :class:`ObsEventLog` and :class:`PhaseProfiler` -- and
knows how to wire itself onto the stack's components (chain, cluster,
gossip, RPC gateway, storage engine, load generator).

**Off by default, overhead-gated.**  Nothing in the repo constructs an
``Observability`` unless a user passes ``--obs`` / ``observability=True``;
every instrumented call site follows the repo's fork-choice idiom of a
``None``-default attribute guarded by ``if self.obs is not None``, so the
disabled path costs one attribute check and the seed's behavior -- down to
the bytes of a saved ideal-scenario report -- is unchanged.

Chains are attached through :meth:`attach_chain` rather than a one-shot
registration because replica crash/recover and resync *replace* the chain
object; the facade tracks the current instance per label so metric
collectors keep sampling the live one.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.obs import adapters
from repro.obs.events import ObsEventLog
from repro.obs.profiling import PhaseProfiler
from repro.obs.registry import MetricsRegistry
from repro.obs.tracing import Tracer
from repro.utils.clock import SimulatedClock


class Observability:
    """Metrics + tracing + events + profiling behind one attachable object."""

    def __init__(self, clock: Optional[SimulatedClock] = None, *,
                 max_spans: int = 50_000, max_events: int = 100_000) -> None:
        self.clock = clock
        self.registry = MetricsRegistry()
        self.tracer = Tracer(clock=clock, max_spans=max_spans)
        self.event_log = ObsEventLog(clock=clock, max_events=max_events)
        self.profiler = PhaseProfiler()
        self._chains: Dict[str, Any] = {}
        self._caches: Dict[str, Any] = {}
        self._chain_collector_registered = False
        self._cache_collector_registered = False

    # -- hot-path helpers (what instrumented call sites use) ----------------

    def tx_span(self, name: str, trace_id: str, *,
                replica: Optional[str] = None,
                parent_id: Optional[str] = None,
                link: bool = True, **attrs: Any) -> Any:
        """Open a span on a transaction's trace (see ``Tracer.start_span``)."""
        return self.tracer.start_span(
            name, trace_id, parent_id=parent_id, replica=replica,
            link=link, attrs=attrs or None)

    def end(self, span: Any, status: str = "ok") -> Any:
        """Close a span against the simulated clock."""
        return span.end(self.clock, status=status)

    def span_context(self, span: Any) -> Optional[Dict[str, str]]:
        """The trace-context dict to carry inside a gossip message."""
        return self.tracer.context(span)

    def event(self, kind: str, **fields: Any) -> None:
        """Emit one structured event (reorg, partition, crash...)."""
        self.event_log.emit(kind, **fields)

    def phase(self, name: str):
        """``with obs.phase("verify"):`` -- time one profiled phase."""
        return self.profiler.phase(name)

    # -- wiring -------------------------------------------------------------

    def attach_chain(self, chain: Any, label: Optional[str] = None) -> None:
        """Hook one :class:`Blockchain` (re-attachable after recover/resync)."""
        chain.obs = self
        chain.obs_label = label
        self._chains[label or "node"] = chain
        if not self._chain_collector_registered:
            self._chain_collector_registered = True

            def collect(reg: MetricsRegistry) -> None:
                for name in sorted(self._chains):
                    adapters.collect_chain(reg, self._chains[name], name)

            self.registry.register_collector(collect)

    def register_cache(self, name: str, cache: Any) -> None:
        """Register an ``LRUCache``-shaped stat source under one label."""
        self._caches[name] = cache
        if not self._cache_collector_registered:
            self._cache_collector_registered = True

            def collect(reg: MetricsRegistry) -> None:
                for cache_name in sorted(self._caches):
                    adapters.collect_cache(reg, cache_name,
                                           self._caches[cache_name])

            self.registry.register_collector(collect)

    def instrument_node(self, node: Any, label: Optional[str] = None) -> None:
        """Hook a single-node :class:`EthereumNode` (chain + address cache)."""
        from repro.chain.account import checksum_cache
        from repro.chain.keys import inverse_cache

        self.attach_chain(node.chain, label)
        self.register_cache("address_checksum", checksum_cache())
        self.register_cache("schnorr_inverse", inverse_cache())

    def instrument_cluster(self, cluster: Any) -> None:
        """Hook every replica, the gossip layer and cluster chaos events."""
        from repro.chain.account import checksum_cache
        from repro.chain.keys import inverse_cache

        cluster.obs = self
        cluster.gossip.obs = self
        adapters.register_gossip(self.registry, cluster.gossip)
        self.register_cache("address_checksum", checksum_cache())
        self.register_cache("schnorr_inverse", inverse_cache())
        for replica in cluster.replicas:
            replica.obs = self
            self.attach_chain(replica.chain, replica.name)

    def instrument_gateway(self, gateway: Any) -> None:
        """Adapt the gateway's ``RequestMetrics`` into the registry."""
        if gateway.metrics is not None:
            adapters.register_rpc_metrics(self.registry, gateway.metrics)

    def instrument_storage(self, engine: Any) -> None:
        """Hook a storage engine's cache and WAL counters."""
        self.register_cache("storage", engine.cache)
        adapters.register_storage(self.registry, engine)

    def instrument_loadgen(self, sample: Callable[[], dict]) -> None:
        """Hook a load generator's saturation sampler."""
        adapters.register_loadgen(self.registry, sample)

    def instrument_analytics(self, feeder: Any) -> None:
        """Hook an analytics feeder's freshness gauges and rollback events."""
        feeder.obs = self
        adapters.register_analytics(self.registry, feeder)

    # -- reporting ----------------------------------------------------------

    def cache_stats(self) -> Dict[str, Any]:
        """Unified stats for every registered cache (the one spelling)."""
        return {
            name: (cache.stats() if hasattr(cache, "stats")
                   else cache.snapshot())
            for name, cache in sorted(self._caches.items())
        }

    def sample_trace_id(self) -> Optional[str]:
        """A representative trace id: the first transaction trace recorded."""
        for trace_id in self.tracer.trace_ids():
            if trace_id.startswith("0x"):
                return trace_id
        ids = self.tracer.trace_ids()
        return ids[0] if ids else None

    def sample_trace(self, include_wall: bool = False) -> List[Dict[str, Any]]:
        """The sampled trace as a span tree (empty when nothing traced)."""
        trace_id = self.sample_trace_id()
        if trace_id is None:
            return []
        return self.tracer.tree(trace_id, include_wall=include_wall)

    def stats_dict(self) -> Dict[str, Any]:
        """Deterministic summary embedded in scenario / load reports.

        Span, event and phase *counts* are deterministic under the
        simulated clock; wall-clock durations are excluded here and the
        full (non-deterministic) registry snapshot lives under its own
        ``"metrics"`` key so report diffs localize cleanly.
        """
        return {
            "events_by_kind": self.event_log.counts_by_kind(),
            "events_dropped": self.event_log.dropped,
            "events_total": len(self.event_log),
            "metrics": self.registry.snapshot(),
            "phase_calls": self.profiler.counts(),
            "sample_trace_id": self.sample_trace_id(),
            "spans_by_name": self.tracer.span_counts(),
            "spans_dropped": self.tracer.dropped,
            "spans_total": len(self.tracer.spans),
            "traces_total": len(self.tracer.trace_ids()),
        }


def ensure_observability(value: Any,
                         clock: Optional[SimulatedClock] = None
                         ) -> Optional[Observability]:
    """Normalize an ``observability`` argument.

    ``None``/``False`` -> ``None`` (disabled); ``True`` -> a fresh
    :class:`Observability` on ``clock``; an existing instance passes
    through (its clock is rebound to ``clock`` when one is given, so a
    caller-built facade still tracks the runner's simulated time).
    """
    if not value:
        return None
    if isinstance(value, Observability):
        if clock is not None and value.clock is None:
            value.clock = clock
            value.tracer.clock = clock
            value.event_log.clock = clock
        return value
    return Observability(clock=clock)
