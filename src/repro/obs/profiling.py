"""Lightweight per-phase wall-clock profiling hooks.

The chain's hot path has three cost centers the paper's Fig. 7 analogue
cares about -- **verify** (signature + stateless checks on submit),
**execute** (the state-transition loop inside block production) and
**persist** (storage-engine writes).  ``PhaseProfiler`` wraps each with a
``perf_counter`` timer and aggregates totals into a top-N cost table, which
is how ``repro obs top`` answers "where do a transaction's milliseconds
actually go?" with evidence instead of guesses.

Phase *call counts* are deterministic given the simulation; only the
accumulated wall seconds vary run to run, so report embeddings keep counts
and drop raw durations.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List


class PhaseProfiler:
    """Accumulates ``(calls, total wall seconds)`` per named phase."""

    def __init__(self) -> None:
        self._calls: Dict[str, int] = {}
        self._seconds: Dict[str, float] = {}

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Time one ``with``-scoped occurrence of ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.record(name, time.perf_counter() - start)

    def record(self, name: str, seconds: float) -> None:
        """Attribute ``seconds`` of wall time to ``name`` directly."""
        self._calls[name] = self._calls.get(name, 0) + 1
        self._seconds[name] = self._seconds.get(name, 0.0) + seconds

    def counts(self) -> Dict[str, int]:
        """Deterministic ``{phase: calls}`` (no wall time)."""
        return {name: self._calls[name] for name in sorted(self._calls)}

    def total_seconds(self) -> float:
        """Wall seconds across every phase."""
        return sum(self._seconds.values())

    def top(self, count: int = 10) -> List[Dict[str, Any]]:
        """The ``count`` most expensive phases, costliest first.

        Each row carries calls, total/mean wall seconds, and the fraction
        of all profiled time the phase accounts for.
        """
        total = self.total_seconds()
        rows = []
        for name in sorted(self._seconds,
                           key=lambda n: (-self._seconds[n], n))[:count]:
            seconds = self._seconds[name]
            calls = self._calls[name]
            rows.append({
                "calls": calls,
                "fraction": round(seconds / total, 4) if total else 0.0,
                "mean_ms": round(seconds / calls * 1000.0, 4) if calls else 0.0,
                "phase": name,
                "total_seconds": round(seconds, 6),
            })
        return rows

    def render_top(self, count: int = 10) -> str:
        """ASCII cost table (what ``repro obs top`` prints)."""
        rows = self.top(count)
        if not rows:
            return "no phases recorded"
        lines = [f"{'phase':<28} {'calls':>8} {'total s':>10} "
                 f"{'mean ms':>10} {'share':>7}"]
        for row in rows:
            lines.append(
                f"{row['phase']:<28} {row['calls']:>8} "
                f"{row['total_seconds']:>10.4f} {row['mean_ms']:>10.4f} "
                f"{row['fraction'] * 100:>6.1f}%")
        return "\n".join(lines)
