"""A unified metrics registry with Prometheus text exposition.

Every subsystem's counters -- RPC request totals, storage cache hits,
mempool depth, gossip traffic, loadgen saturation -- historically lived in
its own ad-hoc snapshot dict.  The :class:`MetricsRegistry` gives them one
home: typed counter / gauge / histogram families with label support,
deterministic sorted snapshots (safe to embed in byte-stable saved
reports), and ``render_prometheus()`` for the classic ``/metrics`` text
format.

Two usage styles coexist:

* **push** -- hot paths call ``registry.counter(...).labels(...).inc()``;
* **pull** -- ``register_collector(fn)`` registers an adapter that samples
  an existing stat source (``RequestMetrics``, ``LRUCache.stats()``,
  ``Mempool.stats()``, ``GossipStats``) right before a snapshot or render,
  which keeps instrumented hot paths free of any metric bookkeeping.

Naming follows the Prometheus convention the CI naming gate enforces:
``snake_case`` throughout, counters end in ``_total`` and duration
histograms end in ``_seconds``.
"""

from __future__ import annotations

import re
import threading
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ObservabilityError

#: Metric and label names must be snake_case: this is what the CI naming
#: gate (tests/system/test_metric_names.py) checks rendered output against.
METRIC_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*$")

#: Default histogram buckets in **seconds**; mirrors the RPC middleware's
#: millisecond buckets (``LATENCY_BUCKETS_MS``) divided by 1000.
DEFAULT_SECONDS_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0,
)

Collector = Callable[["MetricsRegistry"], None]


def _format_value(value: float) -> str:
    """Render a sample the way Prometheus text format expects."""
    if isinstance(value, bool):  # pragma: no cover - defensive
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def _escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus text-format rules."""
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _label_suffix(labelnames: Sequence[str], labelvalues: Sequence[str]) -> str:
    if not labelnames:
        return ""
    parts = [
        f'{name}="{_escape_label_value(str(value))}"'
        for name, value in zip(labelnames, labelvalues)
    ]
    return "{" + ",".join(parts) + "}"


class _Child:
    """One (family, label values) time series."""

    __slots__ = ("labelvalues",)

    def __init__(self, labelvalues: Tuple[str, ...]) -> None:
        self.labelvalues = labelvalues


class CounterChild(_Child):
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self, labelvalues: Tuple[str, ...]) -> None:
        super().__init__(labelvalues)
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Increase the counter (``amount`` must be non-negative)."""
        if amount < 0:
            raise ObservabilityError(f"counter increment must be >= 0, got {amount}")
        self.value += amount

    def set_total(self, value: float) -> None:
        """Adapter hook: overwrite the running total from an external source.

        Pull-based collectors sample pre-existing counters (for example
        ``RequestMetrics.requests_total``) that already track their own
        totals; ``set_total`` mirrors them without double counting.
        """
        self.value = float(value)


class GaugeChild(_Child):
    """A value that can go up and down (depth, entries, ratio...)."""

    __slots__ = ("value",)

    def __init__(self, labelvalues: Tuple[str, ...]) -> None:
        super().__init__(labelvalues)
        self.value = 0.0

    def set(self, value: float) -> None:
        """Set the gauge to an absolute value."""
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (may be negative) to the gauge."""
        self.value += amount


class HistogramChild(_Child):
    """Bucketed observations with ``le``-**inclusive** bounds.

    An observation equal to a bucket's upper bound lands *in* that bucket
    (Prometheus convention): ``observe(0.5)`` with a ``0.5`` bound counts
    toward ``le="0.5"``.  The RPC middleware's latency histogram pins the
    same semantics (see ``repro.rpc.middleware.RequestMetrics._observe``).
    """

    __slots__ = ("buckets", "counts", "sum")

    def __init__(self, labelvalues: Tuple[str, ...], buckets: Tuple[float, ...]) -> None:
        super().__init__(labelvalues)
        self.buckets = buckets
        self.counts = [0] * (len(buckets) + 1)  # final slot is +Inf
        self.sum = 0.0

    def observe(self, value: float) -> None:
        """Record one observation into its (inclusive) bucket."""
        self.sum += value
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[index] += 1
                return
        self.counts[-1] += 1

    @property
    def count(self) -> int:
        """Total number of observations."""
        return sum(self.counts)

    def load(self, counts: Sequence[int], total_sum: float) -> None:
        """Adapter hook: overwrite state from an external histogram.

        ``counts`` are per-bucket (non-cumulative) counts with the final
        entry being the +Inf overflow -- the exact shape
        ``RequestMetrics.latency_bucket_counts`` keeps.
        """
        if len(counts) != len(self.counts):
            raise ObservabilityError(
                f"expected {len(self.counts)} bucket counts, got {len(counts)}")
        self.counts = [int(c) for c in counts]
        self.sum = float(total_sum)


class MetricFamily:
    """A named metric with a fixed type, help string and label schema."""

    def __init__(self, name: str, kind: str, help_text: str,
                 labelnames: Tuple[str, ...],
                 buckets: Tuple[float, ...] = ()) -> None:
        self.name = name
        self.kind = kind
        self.help = help_text
        self.labelnames = labelnames
        self.buckets = buckets
        self._children: Dict[Tuple[str, ...], _Child] = {}

    def labels(self, **labels: Any) -> Any:
        """The child series for one label-value combination (get-or-create)."""
        if tuple(sorted(labels)) != tuple(sorted(self.labelnames)):
            raise ObservabilityError(
                f"metric {self.name!r} takes labels {sorted(self.labelnames)}, "
                f"got {sorted(labels)}")
        key = tuple(str(labels[name]) for name in self.labelnames)
        child = self._children.get(key)
        if child is None:
            child = self._new_child(key)
            self._children[key] = child
        return child

    def _new_child(self, key: Tuple[str, ...]) -> _Child:
        if self.kind == "counter":
            return CounterChild(key)
        if self.kind == "gauge":
            return GaugeChild(key)
        return HistogramChild(key, self.buckets)

    @property
    def child(self) -> Any:
        """The single unlabeled series (only valid with no label names)."""
        if self.labelnames:
            raise ObservabilityError(
                f"metric {self.name!r} is labeled; use .labels(...)")
        return self.labels()

    def children(self) -> List[Tuple[Tuple[str, ...], _Child]]:
        """All (label values, child) pairs, sorted for determinism."""
        return sorted(self._children.items())


class MetricsRegistry:
    """The central home for every metric family plus pull-based collectors.

    Family creation and the collect/snapshot/render paths hold a reentrant
    lock: the HTTP server renders ``/metrics`` while other threads dispatch
    requests that create label children, and a dict resize during a render
    would otherwise blow up the iteration.  The lock is reentrant because
    collectors run *inside* :meth:`collect` and themselves call
    :meth:`counter` / :meth:`gauge` / :meth:`histogram`.
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._families: Dict[str, MetricFamily] = {}
        self._collectors: List[Collector] = []

    # -- family creation ----------------------------------------------------

    def _family(self, name: str, kind: str, help_text: str,
                labelnames: Iterable[str],
                buckets: Tuple[float, ...] = ()) -> MetricFamily:
        labeltuple = tuple(labelnames)
        if not METRIC_NAME_RE.match(name):
            raise ObservabilityError(f"metric name {name!r} is not snake_case")
        for label in labeltuple:
            if not METRIC_NAME_RE.match(label):
                raise ObservabilityError(f"label name {label!r} is not snake_case")
        with self._lock:
            existing = self._families.get(name)
            if existing is not None:
                if existing.kind != kind or existing.labelnames != labeltuple:
                    raise ObservabilityError(
                        f"metric {name!r} already registered as {existing.kind} "
                        f"with labels {existing.labelnames}")
                return existing
            family = MetricFamily(name, kind, help_text, labeltuple, buckets)
            self._families[name] = family
            return family

    def counter(self, name: str, help_text: str = "",
                labelnames: Iterable[str] = ()) -> MetricFamily:
        """Get or create a counter family; the name must end in ``_total``."""
        if not name.endswith("_total"):
            raise ObservabilityError(f"counter name {name!r} must end in '_total'")
        return self._family(name, "counter", help_text, labelnames)

    def gauge(self, name: str, help_text: str = "",
              labelnames: Iterable[str] = ()) -> MetricFamily:
        """Get or create a gauge family."""
        return self._family(name, "gauge", help_text, labelnames)

    def histogram(self, name: str, help_text: str = "",
                  labelnames: Iterable[str] = (),
                  buckets: Tuple[float, ...] = DEFAULT_SECONDS_BUCKETS,
                  ) -> MetricFamily:
        """Get or create a histogram family; duration histograms are named
        ``*_seconds`` and bucketed in seconds."""
        return self._family(name, "histogram", help_text, labelnames,
                            tuple(buckets))

    # -- collection ---------------------------------------------------------

    def register_collector(self, collector: Collector) -> Collector:
        """Register ``collector(registry)`` to run before every snapshot.

        Collectors adapt existing stat sources into the registry lazily, so
        instrumented hot paths pay nothing until somebody actually asks for
        metrics.
        """
        with self._lock:
            self._collectors.append(collector)
        return collector

    def collect(self) -> None:
        """Run every registered collector once (refreshing adapted metrics)."""
        with self._lock:
            for collector in list(self._collectors):
                collector(self)

    # -- exposition ---------------------------------------------------------

    def families(self) -> List[MetricFamily]:
        """All families sorted by name (after running collectors)."""
        with self._lock:
            self.collect()
            return [self._families[name] for name in sorted(self._families)]

    def snapshot(self) -> Dict[str, Any]:
        """Deterministic JSON-friendly dump of every family.

        Keys are stable and sorted at every level, so embedding the
        snapshot in a ``save_json`` artifact keeps the file byte-stable for
        equal metric values.
        """
        with self._lock:
            return self._snapshot_locked()

    def _snapshot_locked(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {}
        for family in self.families():
            series: List[Dict[str, Any]] = []
            for labelvalues, child in family.children():
                labels = {
                    name: value
                    for name, value in zip(family.labelnames, labelvalues)
                }
                if family.kind == "histogram":
                    buckets = {
                        _format_value(bound): count
                        for bound, count in zip(family.buckets, child.counts)
                    }
                    buckets["+Inf"] = child.counts[-1]
                    series.append({
                        "buckets": buckets,
                        "count": child.count,
                        "labels": labels,
                        "sum": round(child.sum, 9),
                    })
                else:
                    series.append({"labels": labels, "value": child.value})
            out[family.name] = {
                "help": family.help,
                "series": series,
                "type": family.kind,
            }
        return out

    def render_prometheus(self) -> str:
        """The registry in Prometheus text exposition format (version 0.0.4)."""
        with self._lock:
            return self._render_locked()

    def _render_locked(self) -> str:
        lines: List[str] = []
        for family in self.families():
            lines.append(f"# HELP {family.name} {family.help}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            for labelvalues, child in family.children():
                suffix = _label_suffix(family.labelnames, labelvalues)
                if family.kind == "histogram":
                    cumulative = 0
                    for bound, count in zip(family.buckets, child.counts):
                        cumulative += count
                        le = _label_suffix(
                            family.labelnames + ("le",),
                            labelvalues + (_format_value(bound),))
                        lines.append(f"{family.name}_bucket{le} {cumulative}")
                    cumulative += child.counts[-1]
                    le = _label_suffix(family.labelnames + ("le",),
                                       labelvalues + ("+Inf",))
                    lines.append(f"{family.name}_bucket{le} {cumulative}")
                    lines.append(
                        f"{family.name}_sum{suffix} {_format_value(child.sum)}")
                    lines.append(f"{family.name}_count{suffix} {cumulative}")
                else:
                    lines.append(
                        f"{family.name}{suffix} {_format_value(child.value)}")
        return "\n".join(lines) + ("\n" if lines else "")

    def get(self, name: str) -> Optional[MetricFamily]:
        """Look up a family by name (``None`` when absent; no collectors run)."""
        return self._families.get(name)
