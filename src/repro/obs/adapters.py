"""Pull-based collectors adapting existing stat sources into the registry.

Every subsystem already keeps its own counters (``RequestMetrics``,
``LRUCache``, ``Mempool.stats()``, ``GossipStats``, the storage engine's
``describe()``); migrating them onto :class:`MetricsRegistry` must not
change their snapshot shapes or touch their hot paths.  These adapters
therefore *sample* the originals right before a snapshot or a Prometheus
render, via :meth:`MetricsRegistry.register_collector` -- the sources stay
authoritative and unmodified.

Naming: counters end ``_total``, duration histograms end ``_seconds``
(milliseconds from the RPC middleware are converted), everything is
``snake_case`` -- the CI naming gate checks the rendered output.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.obs.registry import MetricsRegistry


def register_rpc_metrics(registry: MetricsRegistry, metrics: Any) -> None:
    """Adapt a ``repro.rpc.middleware.RequestMetrics`` into the registry.

    Exposes per-method request counters, per-code error counters, and the
    latency histogram re-bucketed in **seconds** (the middleware keeps
    milliseconds; bounds divide by 1000, counts carry over verbatim
    because the bucketing is ``le``-inclusive in both).
    """
    from repro.rpc.middleware import LATENCY_BUCKETS_MS

    seconds_buckets = tuple(b / 1000.0 for b in LATENCY_BUCKETS_MS)

    def collect(reg: MetricsRegistry) -> None:
        # Copy under the metrics lock: the gateway mutates these dicts on
        # its dispatch thread while /metrics renders on the server thread.
        with metrics.lock:
            by_method = dict(metrics.by_method)
            errors_by_code = dict(metrics.errors_by_code)
            bucket_counts = list(metrics.latency_bucket_counts)
            latency_total_ms = metrics.latency_total_ms
        requests = reg.counter(
            "repro_rpc_requests_total",
            "JSON-RPC requests served, by method.", ("method",))
        for method, count in by_method.items():
            requests.labels(method=method).set_total(count)
        errors = reg.counter(
            "repro_rpc_errors_total",
            "JSON-RPC error responses, by error code.", ("code",))
        for code, count in errors_by_code.items():
            errors.labels(code=str(code)).set_total(count)
        latency = reg.histogram(
            "repro_rpc_request_latency_seconds",
            "Wall-clock JSON-RPC dispatch latency.",
            buckets=seconds_buckets)
        latency.child.load(bucket_counts, latency_total_ms / 1000.0)

    registry.register_collector(collect)


def collect_cache(reg: MetricsRegistry, name: str, cache: Any) -> None:
    """Sample one ``LRUCache``-shaped object under the ``cache=<name>`` label.

    This is the *single* spelling unifying ``address_cache_stats()``, the
    ``storage_cacheStats`` RPC method and ``engine.cache.stats()`` -- all
    three now sample the same ``repro_cache_*`` series.  The facade calls
    this from one collector iterating its registered caches, so a cache can
    be re-registered (e.g. after a node restart) without duplicating
    series.
    """
    stats = cache.stats() if hasattr(cache, "stats") else cache.snapshot()
    labels = {"cache": name}
    reg.gauge("repro_cache_entries", "Entries currently cached.",
              ("cache",)).labels(**labels).set(stats["entries"])
    reg.gauge("repro_cache_capacity", "Configured cache capacity.",
              ("cache",)).labels(**labels).set(stats["capacity"])
    reg.gauge("repro_cache_hit_ratio",
              "Fraction of lookups served from cache.",
              ("cache",)).labels(**labels).set(stats["hit_rate"])
    for field in ("hits", "misses", "evictions", "puts"):
        reg.counter(f"repro_cache_{field}_total",
                    f"Cache {field} since process start.",
                    ("cache",)).labels(**labels).set_total(stats[field])


def collect_chain(reg: MetricsRegistry, chain: Any,
                  label: Optional[str] = None) -> None:
    """Sample one chain's height, mempool depth and fork-choice counters.

    Called per snapshot from the facade's chain collector, which tracks the
    *current* chain object per label -- replica crash/recover and resync
    replace the chain instance, and sampling through the facade keeps the
    series pointed at the live one.
    """
    labels = {"replica": label or "node"}
    reg.gauge("repro_chain_height", "Canonical chain height.",
              ("replica",)).labels(**labels).set(chain.height)
    mempool = chain.mempool.stats()
    reg.gauge("repro_mempool_depth", "Transactions pending in the mempool.",
              ("replica",)).labels(**labels).set(mempool["depth"])
    reg.gauge("repro_mempool_max_depth", "High-water mempool depth.",
              ("replica",)).labels(**labels).set(mempool["max_depth"])
    reg.counter("repro_mempool_added_total",
                "Transactions ever admitted to the mempool.",
                ("replica",)).labels(**labels).set_total(mempool["total_added"])
    fork = getattr(chain, "_fork", None)
    if fork is not None:
        reg.counter("repro_chain_reorgs_total",
                    "Fork-choice reorganizations executed.",
                    ("replica",)).labels(**labels).set_total(fork.reorgs)
        reg.counter("repro_chain_side_blocks_total",
                    "Side-chain blocks ingested without a reorg.",
                    ("replica",)).labels(**labels).set_total(
                        fork.side_blocks_seen)
    parallel = getattr(chain, "parallel", None)
    if parallel is not None:
        stats = parallel.stats
        reg.counter("repro_parallel_blocks_total",
                    "Blocks produced, by execution path (waves vs serial "
                    "fallback).", ("replica", "path")).labels(
                        path="waves", **labels).set_total(
                            stats.blocks_parallel)
        reg.counter("repro_parallel_blocks_total",
                    "Blocks produced, by execution path (waves vs serial "
                    "fallback).", ("replica", "path")).labels(
                        path="serial_fallback", **labels).set_total(
                            stats.blocks_serial_fallback)
        waves = reg.counter(
            "repro_parallel_waves_total",
            "Execution waves scheduled, by wave width (the width "
            "histogram of the conflict-graph scheduler).",
            ("replica", "width"))
        for width, count in sorted(stats.wave_width_counts.items()):
            waves.labels(width=str(width), **labels).set_total(count)
        reg.counter("repro_parallel_txs_total",
                    "Transactions executed, by lane (scoped wave, exclusive "
                    "barrier, or serial fallback).",
                    ("replica", "lane")).labels(
                        lane="wave", **labels).set_total(stats.txs_parallel)
        reg.counter("repro_parallel_txs_total",
                    "Transactions executed, by lane (scoped wave, exclusive "
                    "barrier, or serial fallback).",
                    ("replica", "lane")).labels(
                        lane="exclusive", **labels).set_total(
                            stats.txs_exclusive)
        reg.counter("repro_parallel_txs_total",
                    "Transactions executed, by lane (scoped wave, exclusive "
                    "barrier, or serial fallback).",
                    ("replica", "lane")).labels(
                        lane="serial_fallback", **labels).set_total(
                            stats.txs_serial_fallback)
        reg.gauge("repro_parallel_conflict_ratio",
                  "Conflict ratio of the last wave-executed block "
                  "(0 = fully parallel, 1 = fully serialized).",
                  ("replica",)).labels(**labels).set(
                      stats.conflict_ratio_last)
    batchverify = getattr(chain, "batchverify", None)
    if batchverify is not None:
        reg.counter("repro_batchverify_signatures_total",
                    "Signatures settled through the batch verifier.",
                    ("replica",)).labels(**labels).set_total(
                        batchverify.verifier_stats.signatures)
        reg.counter("repro_batchverify_rejections_total",
                    "Deferred admissions evicted at settle (failed "
                    "signatures).", ("replica",)).labels(**labels).set_total(
                        batchverify.deferred_rejections)
        reg.counter("repro_batchverify_rlc_failures_total",
                    "Random-linear-combination checks that failed and "
                    "triggered bisection.", ("replica",)).labels(
                        **labels).set_total(
                            batchverify.verifier_stats.rlc_failures)
        reg.counter("repro_batchverify_pipeline_kicks_total",
                    "Next-block verify batches kicked during execution.",
                    ("replica",)).labels(**labels).set_total(
                        batchverify.pipeline_kicks)
        reg.counter("repro_batchverify_fallbacks_total",
                    "Batch attempts that dropped to the scalar path.",
                    ("replica",)).labels(**labels).set_total(
                        batchverify.pipeline_fallbacks)
        # Pipeline occupancy: of the wall-clock spent around in-flight
        # kicks, the fraction that overlapped useful chain work (1 = the
        # pipeline always finished before the settle needed it).
        busy = batchverify.overlap_seconds + batchverify.join_wait_seconds
        reg.gauge("repro_batchverify_pipeline_occupancy",
                  "Fraction of in-flight verify time overlapped with block "
                  "execution (1 = joins never waited).",
                  ("replica",)).labels(**labels).set(
                      batchverify.overlap_seconds / busy if busy else 0.0)


def register_gossip(registry: MetricsRegistry, gossip: Any) -> None:
    """Sample the cluster gossip layer's traffic counters."""

    def collect(reg: MetricsRegistry) -> None:
        family = reg.counter("repro_gossip_events_total",
                             "Gossip-layer events, by event kind.", ("event",))
        for event, count in gossip.stats.to_dict().items():
            family.labels(event=event).set_total(count)
        depth = reg.gauge("repro_gossip_inbox_depth",
                          "Messages queued for future delivery, per replica.",
                          ("replica",))
        for index, inbox in enumerate(gossip._inboxes):
            depth.labels(replica=f"replica-{index}").set(len(inbox))

    registry.register_collector(collect)


def register_storage(registry: MetricsRegistry, engine: Any) -> None:
    """Sample a storage engine's WAL record counts and snapshot presence."""

    def collect(reg: MetricsRegistry) -> None:
        wal = reg.counter("repro_storage_wal_records_total",
                          "WAL records appended, by record kind.", ("kind",))
        for kind, count in engine.wal.counts_by_kind().items():
            wal.labels(kind=kind).set_total(count)
        reg.gauge("repro_storage_archived_blocks",
                  "Block records archived out of the live WAL.").child.set(
                      len(engine.wal.archived_block_numbers()))

    registry.register_collector(collect)


def register_analytics(registry: MetricsRegistry, feeder: Any) -> None:
    """Sample an analytics feeder's freshness and replica-size gauges.

    ``applied_seq`` / ``lag_entries`` are the HTAP freshness pair: how far
    the columnar replica trails the WAL between queries (queries drain
    first, so user-visible reads are always fresh -- the lag gauge shows
    the propagation debt that drain paid down).
    """

    def collect(reg: MetricsRegistry) -> None:
        status = feeder.status()
        reg.gauge("repro_analytics_applied_seq",
                  "Last WAL sequence number applied to the analytics replica."
                  ).child.set(status["applied_seq"])
        reg.gauge("repro_analytics_lag_entries",
                  "WAL entries the analytics replica is behind.").child.set(
                      status["lag_entries"])
        reg.gauge("repro_analytics_height",
                  "Chain height replicated into the analytics columns."
                  ).child.set(status["height"])
        rows = reg.gauge("repro_analytics_rows",
                         "Rows held per analytics table.", ("table",))
        rows.labels(table="transactions").set(status["transactions"])
        rows.labels(table="logs").set(status["logs"])
        reg.counter("repro_analytics_rollbacks_total",
                    "Reorg rollbacks applied to the analytics replica."
                    ).child.set_total(status["rollbacks"])
        reg.counter("repro_analytics_queries_total",
                    "Queries served from the analytics replica."
                    ).child.set_total(status["queries"])

    registry.register_collector(collect)


def register_loadgen(registry: MetricsRegistry,
                     sample: Callable[[], dict]) -> None:
    """Sample a load generator's saturation view.

    ``sample()`` returns ``{"offered", "submitted", "mined", "timeouts",
    "outstanding"}`` -- offered vs mined is the saturation signal the
    sweep's knee detection uses.
    """

    def collect(reg: MetricsRegistry) -> None:
        stats = sample()
        reg.counter("repro_loadgen_offered_total",
                    "Operations the open-loop arrival process offered."
                    ).child.set_total(stats["offered"])
        reg.counter("repro_loadgen_tx_submitted_total",
                    "Transfer transactions submitted.").child.set_total(
                        stats["submitted"])
        reg.counter("repro_loadgen_tx_mined_total",
                    "Submitted transactions seen mined.").child.set_total(
                        stats["mined"])
        reg.counter("repro_loadgen_receipt_timeouts_total",
                    "Receipts that never arrived within the polling budget."
                    ).child.set_total(stats["timeouts"])
        reg.gauge("repro_loadgen_outstanding_txs",
                  "Transactions submitted but not yet mined.").child.set(
                      stats["outstanding"])

    registry.register_collector(collect)


def register_net_server(registry: MetricsRegistry, server: Any) -> None:
    """Sample an ``repro.net`` HTTP/WebSocket server's operational counters.

    Connection and subscription gauges, per-route request counters, and
    the backpressure signals (deepest send queue, slow-consumer
    disconnects, dropped subscriptions) -- the knobs
    ``docs/networking.md`` documents are observable here.
    """

    def collect(reg: MetricsRegistry) -> None:
        stats = server.stats
        reg.gauge("repro_net_open_connections",
                  "Sockets currently open against the server."
                  ).child.set(stats.open_connections)
        reg.counter("repro_net_connections_total",
                    "Sockets accepted over the server's lifetime."
                    ).child.set_total(stats.connections_total)
        reg.gauge("repro_net_open_ws_connections",
                  "WebSocket sessions currently upgraded."
                  ).child.set(stats.open_ws_connections)
        reg.counter("repro_net_ws_connections_total",
                    "WebSocket upgrades over the server's lifetime."
                    ).child.set_total(stats.ws_connections_total)
        requests = reg.counter("repro_net_http_requests_total",
                               "HTTP requests served, by route.", ("route",))
        for route, count in sorted(stats.http_requests.items()):
            requests.labels(route=route).set_total(count)
        rejections = reg.counter("repro_net_rejections_total",
                                 "Connections or requests refused, by reason.",
                                 ("reason",))
        for reason, count in sorted(stats.rejections.items()):
            rejections.labels(reason=reason).set_total(count)
        subs = reg.gauge("repro_net_active_subscriptions",
                         "Live push subscriptions, by kind.", ("kind",))
        for kind, count in sorted(server.subscription_kinds().items()):
            subs.labels(kind=kind).set(count)
        reg.counter("repro_net_ws_messages_total",
                    "Inbound WebSocket data messages."
                    ).child.set_total(stats.ws_messages_total)
        reg.counter("repro_net_notifications_total",
                    "Subscription notifications pushed to clients."
                    ).child.set_total(stats.notifications_total)
        reg.gauge("repro_net_send_queue_depth",
                  "Deepest per-socket send queue (backpressure signal)."
                  ).child.set(server.send_queue_depth())
        reg.counter("repro_net_slow_consumer_disconnects_total",
                    "Clients disconnected for not draining their send queue."
                    ).child.set_total(stats.slow_consumer_disconnects_total)
        reg.counter("repro_net_dropped_subscriptions_total",
                    "Subscriptions dropped by slow-consumer disconnects."
                    ).child.set_total(stats.dropped_subscriptions_total)

    registry.register_collector(collect)
