"""A structured, byte-stable JSONL event log.

Rare-but-significant happenings -- reorgs, partitions, heals, crashes,
recoveries, resyncs -- are appended as one dict per line.  Serialization
mirrors :func:`repro.system.artifacts.save_json`'s canonical-JSON
discipline: keys sorted, compact separators, trailing newline, so two runs
emitting equal events produce byte-identical logs (the CI obs smoke step
uploads the file as an artifact on failure and diffs must stay clean).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.utils.clock import SimulatedClock


class ObsEventLog:
    """Bounded in-memory event buffer with deterministic JSONL export."""

    def __init__(self, clock: Optional[SimulatedClock] = None,
                 max_events: int = 100_000) -> None:
        self.clock = clock
        self.max_events = int(max_events)
        self.dropped = 0
        self._events: List[Dict[str, Any]] = []

    def emit(self, kind: str, **fields: Any) -> Optional[Dict[str, Any]]:
        """Append one event stamped with a sequence number and sim time."""
        if len(self._events) >= self.max_events:
            self.dropped += 1
            return None
        event: Dict[str, Any] = {
            "kind": kind,
            "seq": len(self._events),
            "sim_time": round(self.clock.now, 6) if self.clock is not None else 0.0,
        }
        event.update(fields)
        self._events.append(event)
        return event

    def __len__(self) -> int:
        return len(self._events)

    def events(self, kind: Optional[str] = None,
               limit: Optional[int] = None) -> List[Dict[str, Any]]:
        """Events in emission order, optionally filtered by ``kind``."""
        selected = [e for e in self._events if kind is None or e["kind"] == kind]
        if limit is not None:
            selected = selected[-int(limit):]
        return [dict(e) for e in selected]

    def counts_by_kind(self) -> Dict[str, int]:
        """Deterministic ``{kind: count}`` summary."""
        counts: Dict[str, int] = {}
        for event in self._events:
            counts[event["kind"]] = counts.get(event["kind"], 0) + 1
        return {kind: counts[kind] for kind in sorted(counts)}

    def to_jsonl(self) -> str:
        """The whole log as canonical JSONL (sorted keys, one event per line)."""
        lines = [
            json.dumps(event, sort_keys=True, separators=(",", ":"))
            for event in self._events
        ]
        return "\n".join(lines) + ("\n" if lines else "")

    def write(self, path: Union[str, Path]) -> Path:
        """Write the JSONL log to ``path`` (parents created)."""
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(self.to_jsonl())
        return target
