"""Unified observability: metrics, tracing, structured events, profiling.

See :mod:`repro.obs.facade` for the attachable :class:`Observability`
object and ``docs/observability.md`` for the metric catalog and trace
anatomy.  Everything here is off by default: no component builds an
``Observability`` unless asked, and instrumented hot paths gate every hook
on a ``None`` check.
"""

from repro.obs.events import ObsEventLog
from repro.obs.facade import Observability, ensure_observability
from repro.obs.profiling import PhaseProfiler
from repro.obs.registry import (
    DEFAULT_SECONDS_BUCKETS,
    METRIC_NAME_RE,
    MetricsRegistry,
)
from repro.obs.tracing import NULL_SPAN, Span, Tracer

__all__ = [
    "DEFAULT_SECONDS_BUCKETS",
    "METRIC_NAME_RE",
    "MetricsRegistry",
    "NULL_SPAN",
    "ObsEventLog",
    "Observability",
    "PhaseProfiler",
    "Span",
    "Tracer",
    "ensure_observability",
]
