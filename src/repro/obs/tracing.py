"""Span-based tracing that records both wall-clock and simulated time.

A *trace* follows one logical operation -- almost always a transaction,
keyed by its hash -- through every subsystem it touches: submit on the
origin replica, mempool admission, gossip fan-out, delivery on each peer,
block inclusion, execution and receipt.  Each stage is a :class:`Span`
carrying two clocks:

* **simulated time** (:class:`repro.utils.clock.SimulatedClock`) -- where
  the event sits on the scenario timeline; deterministic across runs;
* **wall time** (``time.perf_counter``) -- what the stage actually cost in
  CPU, feeding the profiling cost tables.

Cross-replica propagation works by carrying a small *trace context* dict
(``{"trace_id", "parent"}``) inside gossip messages; the receiving side
parents its delivery span on the sender's span, so the whole cluster-wide
journey renders as one tree.  Within one replica, spans chain implicitly:
the tracer remembers the last span per ``(trace, replica)`` and parents
the next span on it, which is what threads submit -> execute -> receipt
together without any plumbing through the chain's call signatures.

Span ids are allocated from a per-tracer counter, so given the
deterministic simulation the span tree itself is deterministic; only the
wall-clock durations vary run to run.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional, Tuple

from repro.utils.clock import SimulatedClock


class Span:
    """One timed stage of a trace (see the module docstring for anatomy)."""

    __slots__ = ("name", "trace_id", "span_id", "parent_id", "replica",
                 "attrs", "start_sim", "end_sim", "start_wall", "end_wall",
                 "status")

    def __init__(self, name: str, trace_id: str, span_id: str,
                 parent_id: Optional[str], replica: Optional[str],
                 start_sim: float, start_wall: float,
                 attrs: Optional[Dict[str, Any]] = None) -> None:
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.replica = replica
        self.attrs = dict(attrs) if attrs else {}
        self.start_sim = start_sim
        self.end_sim = start_sim
        self.start_wall = start_wall
        self.end_wall = start_wall
        self.status = "ok"

    def annotate(self, key: str, value: Any) -> "Span":
        """Attach one attribute (chainable)."""
        self.attrs[key] = value
        return self

    def end(self, clock: Optional[SimulatedClock] = None,
            status: str = "ok") -> "Span":
        """Close the span, stamping both clocks; idempotent enough for hooks."""
        self.end_wall = time.perf_counter()
        if clock is not None:
            self.end_sim = clock.now
        self.status = status
        return self

    @property
    def wall_ms(self) -> float:
        """Wall-clock duration in milliseconds (non-deterministic)."""
        return (self.end_wall - self.start_wall) * 1000.0

    @property
    def sim_seconds(self) -> float:
        """Simulated duration in seconds (deterministic)."""
        return self.end_sim - self.start_sim

    def to_dict(self, include_wall: bool = True) -> Dict[str, Any]:
        """JSON-friendly dump; drop ``include_wall`` for deterministic output."""
        payload: Dict[str, Any] = {
            "attrs": {k: self.attrs[k] for k in sorted(self.attrs)},
            "name": self.name,
            "parent_id": self.parent_id,
            "replica": self.replica,
            "sim_end": round(self.end_sim, 6),
            "sim_start": round(self.start_sim, 6),
            "span_id": self.span_id,
            "status": self.status,
            "trace_id": self.trace_id,
        }
        if include_wall:
            payload["wall_ms"] = round(self.wall_ms, 4)
        return payload


class _NullSpan:
    """Stand-in returned once the span cap is hit: every operation no-ops.

    Call sites never have to branch on "was this span recorded" -- they
    annotate and end it exactly like a real span.
    """

    __slots__ = ()
    span_id: Optional[str] = None
    trace_id: Optional[str] = None

    def annotate(self, key: str, value: Any) -> "_NullSpan":
        return self

    def end(self, clock: Optional[SimulatedClock] = None,
            status: str = "ok") -> "_NullSpan":
        return self


NULL_SPAN = _NullSpan()


class Tracer:
    """Records spans, threads parent/child links, and renders trace trees."""

    def __init__(self, clock: Optional[SimulatedClock] = None,
                 max_spans: int = 50_000) -> None:
        self.clock = clock
        self.max_spans = int(max_spans)
        self.spans: List[Span] = []
        self.dropped = 0
        self._by_trace: Dict[str, List[Span]] = {}
        self._last: Dict[Tuple[str, Optional[str]], str] = {}
        self._next_id = 0

    # -- recording ----------------------------------------------------------

    def start_span(self, name: str, trace_id: str, *,
                   parent_id: Optional[str] = None,
                   replica: Optional[str] = None,
                   link: bool = True,
                   attrs: Optional[Dict[str, Any]] = None) -> Any:
        """Open a span on ``trace_id``.

        When ``parent_id`` is not given, the span is parented on the last
        *linked* span recorded for ``(trace_id, replica)`` -- the implicit
        chaining that turns per-replica stages into a tree.  ``link=False``
        records the span without making it the parent of what follows
        (used for fire-and-forget sends like gossip fan-out, whose children
        live on the *receiving* replica instead).
        """
        if len(self.spans) >= self.max_spans:
            self.dropped += 1
            return NULL_SPAN
        if parent_id is None:
            parent_id = self._last.get((trace_id, replica))
        self._next_id += 1
        span = Span(
            name=name,
            trace_id=trace_id,
            span_id=f"s{self._next_id:06d}",
            parent_id=parent_id,
            replica=replica,
            start_sim=self.clock.now if self.clock is not None else 0.0,
            start_wall=time.perf_counter(),
            attrs=attrs,
        )
        self.spans.append(span)
        self._by_trace.setdefault(trace_id, []).append(span)
        if link:
            self._last[(trace_id, replica)] = span.span_id
        return span

    def end_span(self, span: Any, status: str = "ok") -> Any:
        """Close ``span`` against this tracer's simulated clock."""
        return span.end(self.clock, status=status)

    def context(self, span: Any) -> Optional[Dict[str, str]]:
        """The propagation dict a message carries across replicas."""
        if span.span_id is None:
            return None
        return {"parent": span.span_id, "trace_id": span.trace_id}

    # -- inspection ---------------------------------------------------------

    def trace_ids(self) -> List[str]:
        """Every recorded trace id in first-seen order."""
        return list(self._by_trace)

    def spans_for(self, trace_id: str) -> List[Span]:
        """All spans of one trace in recording order."""
        return list(self._by_trace.get(trace_id, []))

    def span_counts(self) -> Dict[str, int]:
        """Deterministic ``{span name: count}`` across every trace."""
        counts: Dict[str, int] = {}
        for span in self.spans:
            counts[span.name] = counts.get(span.name, 0) + 1
        return {name: counts[name] for name in sorted(counts)}

    def replicas_for(self, trace_id: str) -> List[str]:
        """Sorted replica labels that recorded at least one span."""
        return sorted({s.replica for s in self._by_trace.get(trace_id, [])
                       if s.replica is not None})

    def tree(self, trace_id: str,
             include_wall: bool = True) -> List[Dict[str, Any]]:
        """The trace as nested ``{"span": ..., "children": [...]}`` dicts.

        Spans whose parent is missing (sampled out or cross-trace) surface
        as additional roots rather than disappearing.
        """
        spans = self._by_trace.get(trace_id, [])
        nodes = {
            s.span_id: {"children": [], "span": s.to_dict(include_wall)}
            for s in spans
        }
        roots: List[Dict[str, Any]] = []
        for span in spans:
            node = nodes[span.span_id]
            parent = nodes.get(span.parent_id) if span.parent_id else None
            if parent is not None:
                parent["children"].append(node)
            else:
                roots.append(node)
        return roots

    def render(self, trace_id: str, include_wall: bool = False) -> str:
        """ASCII rendering of the span tree (what ``repro obs trace`` prints)."""
        lines = [f"trace {trace_id}"]

        def walk(node: Dict[str, Any], depth: int) -> None:
            span = node["span"]
            where = f" @{span['replica']}" if span["replica"] else ""
            timing = f"sim {span['sim_start']:.3f}s"
            if span["sim_end"] != span["sim_start"]:
                timing += f" +{span['sim_end'] - span['sim_start']:.3f}s"
            if include_wall:
                timing += f", wall {span.get('wall_ms', 0.0):.3f}ms"
            extra = ""
            if span["attrs"]:
                rendered = " ".join(
                    f"{k}={span['attrs'][k]}" for k in sorted(span["attrs"]))
                extra = f" [{rendered}]"
            lines.append("  " * (depth + 1)
                         + f"{span['name']}{where} ({timing}){extra}")
            for child in node["children"]:
                walk(child, depth + 1)

        for root in self.tree(trace_id, include_wall=include_wall):
            walk(root, 0)
        return "\n".join(lines)
