"""Command-line interface for the OFL-W3 reproduction.

Subcommands
-----------
``run``
    Run the end-to-end marketplace (quick or paper preset, overridable) and
    print the headline results; optionally save the full report to JSON.
``simulate``
    Run a named discrete-event scenario (``repro.simnet``): concurrent
    tasks, adversarial owner populations, lossy networks -- and print the
    scenario report (throughput, mempool depth, gas, accuracy vs adversary
    fraction).
``loadgen``
    Drive an open-/closed-loop workload (``repro.loadgen``) at the JSON-RPC
    gateway: thousands of simulated clients, Zipf-skewed and bursty request
    mixes, latency percentiles and error rates -- or sweep offered rates to
    find the saturation knee and measure wall-clock tx-ingest throughput.
``serve``
    Serve the JSON-RPC gateway over real sockets (``repro.net``): HTTP
    single/batch POST, a WebSocket endpoint with ``eth_subscribe`` push,
    Prometheus ``GET /metrics`` and a graceful SIGTERM drain.
``rpc``
    Ad-hoc JSON-RPC calls against the gateway (``repro.rpc``): list the
    served methods, issue a single ``eth_*``/``ipfs_*``/``oflw3_*`` call or
    a raw batch, optionally against a chain pre-seeded with a tiny
    marketplace run.
``storage``
    Inspect, verify (replay to the recovered chain head) or compact a
    persistent store directory written by ``run --store DIR``
    (``repro.storage``: WAL + snapshots + IPFS blobs).
``analytics``
    Attach a columnar analytics replica (``repro.analytics``) to a store
    directory written by ``run --store DIR``: print its freshness status,
    run replica-served queries with an OLTP-scan parity check, or backfill
    the columns from scratch off the WAL + archive.
``cluster``
    Spin up an N-replica chain replication cluster (``repro.cluster``),
    drive a few funded transfers through leader rotation and gossip, and
    print the per-replica status table (heights, heads, reorgs,
    convergence) -- the quickest way to watch replication work.
``obs``
    Run a short observed workload (a loadgen burst or a named scenario) with
    the unified observability layer (``repro.obs``) enabled and print its
    Prometheus metrics, a transaction's span tree, the per-phase cost table
    or the structured event log.
``gas-report``
    Replay only the on-chain side of the workflow and print the Fig. 5 fee
    table plus the CID-vs-model storage comparison.
``model-quality``
    Run only the ML side (local training + one-shot aggregation + LOO) and
    print the Fig. 4 / Fig. 6 series.
``show``
    Pretty-print a previously saved report JSON.
``info``
    Print the library version and the subsystems it provides.

Invoke as ``python -m repro <subcommand> ...``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.version import __version__


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="OFL-W3: one-shot federated learning on a simulated Web 3.0 stack",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    subparsers = parser.add_subparsers(dest="command")

    run_parser = subparsers.add_parser("run", help="run the end-to-end marketplace")
    run_parser.add_argument("--preset", choices=["quick", "paper"], default="quick",
                            help="experiment scale (default: quick)")
    run_parser.add_argument("--owners", type=int, default=None, help="override the owner count")
    run_parser.add_argument("--epochs", type=int, default=None, help="override local epochs")
    run_parser.add_argument("--aggregator", default=None,
                            choices=["pfnm", "mean", "ensemble"], help="one-shot aggregator")
    run_parser.add_argument("--seed", type=int, default=None, help="override the random seed")
    run_parser.add_argument("--save", default=None, metavar="PATH",
                            help="save the full report to a JSON file")
    run_parser.add_argument("--store", default=None, metavar="DIR",
                            help="persist the chain (WAL + snapshots) and IPFS "
                                 "blocks under DIR; inspect or recover later "
                                 "with 'repro storage'")

    # Choices come from the simnet registries, so new scenarios/profiles are
    # CLI-reachable without touching this file.  scenario.py is import-light;
    # profiles.py pulls numpy, which every subcommand needs anyway.
    from repro.simnet.profiles import NETWORK_PROFILES
    from repro.simnet.scenario import SCENARIOS

    sim_parser = subparsers.add_parser(
        "simulate", help="run a discrete-event scenario (simnet)")
    sim_parser.add_argument("--scenario", default="ideal",
                            choices=sorted(SCENARIOS),
                            help="named scenario (default: ideal)")
    sim_parser.add_argument("--preset", choices=["quick", "paper"], default="quick",
                            help="marketplace scale per task (default: quick)")
    sim_parser.add_argument("--tasks", type=int, default=None,
                            help="override the number of concurrent tasks")
    sim_parser.add_argument("--owners", type=int, default=None,
                            help="override the owner count per task")
    sim_parser.add_argument("--epochs", type=int, default=None,
                            help="override local epochs per owner")
    sim_parser.add_argument("--seed", type=int, default=None,
                            help="override the random seed")
    sim_parser.add_argument("--stagger", type=float, default=None, metavar="SECONDS",
                            help="override the delay between task launches")
    sim_parser.add_argument("--network", default=None,
                            choices=sorted(NETWORK_PROFILES),
                            help="override the network profile")
    sim_parser.add_argument("--poison-fraction", type=float, default=None,
                            help="fraction of owners that label-flip poison")
    sim_parser.add_argument("--dropout-fraction", type=float, default=None,
                            help="fraction of owners that churn out mid-task")
    sim_parser.add_argument("--straggler-fraction", type=float, default=None,
                            help="fraction of owners that upload late")
    sim_parser.add_argument("--freerider-fraction", type=float, default=None,
                            help="fraction of owners that upload junk models")
    sim_parser.add_argument("--obs", action="store_true",
                            help="enable the repro.obs observability layer "
                                 "(spans, events, unified metrics; the saved "
                                 "report gains an 'obs' section)")
    sim_parser.add_argument("--save", default=None, metavar="PATH",
                            help="save the scenario report to a JSON file")

    load_parser = subparsers.add_parser(
        "loadgen", help="drive skewed/bursty load at the gateway (repro.loadgen)")
    load_parser.add_argument("--clients", type=int, default=100,
                             help="simulated client population (default: 100)")
    load_parser.add_argument("--rate", type=float, default=20.0,
                             help="open-loop arrivals per simulated second")
    load_parser.add_argument("--duration", type=float, default=300.0,
                             metavar="SECONDS", help="simulated load duration")
    load_parser.add_argument("--mode", choices=["open", "closed"], default="open",
                             help="open loop (arrival process) or closed loop "
                                  "(think/request/wait clients)")
    load_parser.add_argument("--arrival", default="poisson",
                             choices=["uniform", "poisson", "ramp", "flashcrowd"],
                             help="open-loop arrival process (default: poisson)")
    load_parser.add_argument("--mix", default=None, metavar="SPEC",
                             help="request mix, e.g. transfer=0.5,read=0.35,ipfs=0.15")
    load_parser.add_argument("--zipf", type=float, default=1.1, metavar="EXPONENT",
                             help="sender/content popularity skew (0 = uniform)")
    load_parser.add_argument("--think", type=float, default=10.0, metavar="SECONDS",
                             help="closed-loop mean think time")
    load_parser.add_argument("--rate-limit", type=float, default=None,
                             help="gateway token-bucket rate (requests per "
                                  "simulated second)")
    load_parser.add_argument("--cluster", type=int, default=None, metavar="N",
                             help="drive an N-replica replication cluster "
                                  "instead of one node (sweeps then measure "
                                  "replicated ingest)")
    load_parser.add_argument("--parallel", type=int, default=None, metavar="W",
                             help="produce blocks with W-worker wave-parallel "
                                  "execution (repro.parallel); default: the "
                                  "serial block loop")
    load_parser.add_argument("--batch-verify", type=int, nargs="?", const=4,
                             default=None, metavar="W",
                             help="batch Schnorr verification with pipelined "
                                  "block production (repro.batchverify): "
                                  "defer signature checks to one RLC-gated "
                                  "batch per block on W verify workers "
                                  "(default W: 4; 0 = inline batches); "
                                  "default: scalar verify at submission")
    load_parser.add_argument("--seed", type=int, default=7,
                             help="deterministic seed for arrivals and skew")
    load_parser.add_argument("--sweep", default=None, metavar="RATES",
                             help="comma-separated offered rates (e.g. 10,40,80,160) "
                                  "or 'auto'; runs a saturation sweep and the "
                                  "wall-clock tx-ingest measurement")
    load_parser.add_argument("--obs", action="store_true",
                             help="enable the repro.obs observability layer "
                                  "for a single run (the saved report gains "
                                  "an 'obs' section)")
    load_parser.add_argument("--save", default=None, metavar="PATH",
                             help="save the load/sweep report to a JSON file")
    load_parser.add_argument("--transport", choices=["inprocess", "http"],
                             default="inprocess",
                             help="inprocess: simulated clients straight at "
                                  "the gateway (default); http: worker "
                                  "processes over real sockets against a "
                                  "live server (repro.net)")
    load_parser.add_argument("--url", default=None, metavar="URL",
                             help="http transport: server to drive (e.g. "
                                  "http://127.0.0.1:8545/); default: "
                                  "self-host a fresh serve stack on an "
                                  "ephemeral port")
    load_parser.add_argument("--workers", type=int, default=2, metavar="N",
                             help="http transport: worker processes "
                                  "(default: 2)")
    load_parser.add_argument("--txs", type=int, default=64, metavar="N",
                             help="http transport: pre-signed transfers to "
                                  "submit (default: 64)")
    load_parser.add_argument("--reads", type=int, default=128, metavar="N",
                             help="http transport: read calls interleaved "
                                  "with the transfers (default: 128)")
    load_parser.add_argument("--senders", type=int, default=8, metavar="N",
                             help="http transport: funded sender accounts "
                                  "(default: 8)")

    serve_parser = subparsers.add_parser(
        "serve", help="serve the JSON-RPC gateway over HTTP/WebSocket (repro.net)")
    serve_parser.add_argument("--host", default="127.0.0.1",
                              help="interface to bind (default: 127.0.0.1)")
    serve_parser.add_argument("--port", type=int, default=8545,
                              help="TCP port; 0 binds an ephemeral port "
                                   "(default: 8545)")
    serve_parser.add_argument("--cluster", type=int, default=None, metavar="N",
                              help="serve an N-replica replication cluster "
                                   "instead of one node")
    serve_parser.add_argument("--parallel", type=int, default=None, metavar="W",
                              help="produce blocks with W-worker "
                                   "wave-parallel execution")
    serve_parser.add_argument("--batch-verify", type=int, nargs="?", const=4,
                              default=None, metavar="W",
                              help="batch Schnorr verification with W verify "
                                   "workers (default W: 4; 0 = inline "
                                   "batches)")
    serve_parser.add_argument("--store", default=None, metavar="DIR",
                              help="persist the chain (WAL + snapshots) "
                                   "under DIR (single node only)")
    serve_parser.add_argument("--obs", action="store_true",
                              help="enable the repro.obs observability layer "
                                   "(GET /metrics then serves the full "
                                   "unified registry)")
    serve_parser.add_argument("--block-interval", type=float, default=0.5,
                              metavar="SECONDS",
                              help="producer cadence: mine pending "
                                   "transactions every interval; 0 disables "
                                   "the producer (mine via evm_mine) "
                                   "(default: 0.5)")
    serve_parser.add_argument("--max-connections", type=int, default=64,
                              help="global concurrent-socket cap (default: 64)")
    serve_parser.add_argument("--max-batch", type=int, default=100,
                              help="envelopes per batch POST (default: 100)")
    serve_parser.add_argument("--read-timeout", type=float, default=10.0,
                              metavar="SECONDS",
                              help="budget for reading one request (default: 10)")
    serve_parser.add_argument("--send-queue", type=int, default=256,
                              metavar="FRAMES",
                              help="bounded per-WebSocket send queue; overflow "
                                   "disconnects the slow consumer (default: 256)")
    serve_parser.add_argument("--seed", type=int, default=7,
                              help="seed for the served stack (default: 7)")

    obs_parser = subparsers.add_parser(
        "obs", help="run an observed workload and inspect metrics/traces/events")
    obs_parser.add_argument("action", choices=["metrics", "trace", "top", "events"],
                            help="metrics: Prometheus text exposition; "
                                 "trace: one transaction's span tree; "
                                 "top: per-phase cost table; "
                                 "events: structured JSONL event log")
    obs_parser.add_argument("--scenario", default=None, choices=sorted(SCENARIOS),
                            help="observe a named simnet scenario instead of "
                                 "the default short loadgen burst")
    obs_parser.add_argument("--clients", type=int, default=20,
                            help="loadgen burst: client population (default: 20)")
    obs_parser.add_argument("--rate", type=float, default=10.0,
                            help="loadgen burst: arrivals per simulated second")
    obs_parser.add_argument("--duration", type=float, default=60.0, metavar="SECONDS",
                            help="loadgen burst: simulated duration (default: 60)")
    obs_parser.add_argument("--seed", type=int, default=7,
                            help="deterministic seed (default: 7)")
    obs_parser.add_argument("--trace-id", default=None,
                            help="trace action: trace to render (default: a "
                                 "sampled transaction)")
    obs_parser.add_argument("--limit", type=int, default=20,
                            help="rows for the top/events actions (default: 20)")
    obs_parser.add_argument("--save-events", default=None, metavar="PATH",
                            help="also write the structured event log as JSONL")

    rpc_parser = subparsers.add_parser(
        "rpc", help="issue ad-hoc JSON-RPC calls against the gateway")
    rpc_parser.add_argument("method", nargs="?", default=None,
                            help="JSON-RPC method name (e.g. eth_blockNumber)")
    rpc_parser.add_argument("params", nargs="*",
                            help="params, each parsed as JSON (bare words stay strings)")
    rpc_parser.add_argument("--list", action="store_true", dest="list_methods",
                            help="list every method the gateway serves")
    rpc_parser.add_argument("--markdown", action="store_true",
                            help="with --list: render the full method reference "
                                 "as markdown (the source of docs/rpc.md)")
    rpc_parser.add_argument("--batch", default=None, metavar="JSON",
                            help="send a raw JSON-RPC envelope or batch array instead")
    rpc_parser.add_argument("--demo", action="store_true",
                            help="seed the chain with a tiny marketplace run first")
    rpc_parser.add_argument("--seed", type=int, default=7,
                            help="seed for the --demo marketplace (default: 7)")

    gas_parser = subparsers.add_parser("gas-report", help="print the Fig. 5 gas-fee analysis")
    gas_parser.add_argument("--owners", type=int, default=10)
    gas_parser.add_argument("--gas-price-gwei", type=float, default=1.0)

    quality_parser = subparsers.add_parser("model-quality",
                                           help="print the Fig. 4 / Fig. 6 model-quality analysis")
    quality_parser.add_argument("--owners", type=int, default=10)
    quality_parser.add_argument("--epochs", type=int, default=10)
    quality_parser.add_argument("--samples", type=int, default=20_000)
    quality_parser.add_argument("--seed", type=int, default=7)

    storage_parser = subparsers.add_parser(
        "storage", help="inspect, verify or compact a persistent store directory")
    storage_parser.add_argument("action", choices=["inspect", "verify", "compact"],
                                help="inspect: summarize WAL/snapshots/blobs; "
                                     "verify: replay the store and report the "
                                     "recovered head; compact: snapshot at the "
                                     "head and truncate the WAL")
    storage_parser.add_argument("directory", help="store directory (from run --store)")

    analytics_parser = subparsers.add_parser(
        "analytics", help="attach a columnar analytics replica to a store "
                          "directory and query it (repro.analytics)")
    analytics_parser.add_argument(
        "action", choices=["status", "query", "backfill"],
        help="status: replica freshness and per-table row counts; "
             "query: replica-served logs/leaderboard/fee summary with an "
             "OLTP-scan parity check; "
             "backfill: rebuild the columns from scratch off the WAL + "
             "archive")
    analytics_parser.add_argument("directory",
                                  help="store directory (from run --store)")
    analytics_parser.add_argument("--leaderboard", default="payments",
                                  choices=["payments", "submissions", "fees"],
                                  help="query: which leaderboard to print")
    analytics_parser.add_argument("--event", default=None, metavar="NAME",
                                  help="query: filter logs by event name "
                                       "(e.g. PaymentSent)")
    analytics_parser.add_argument("--limit", type=int, default=10,
                                  help="query: leaderboard rows (default: 10)")
    analytics_parser.add_argument("--json", action="store_true", dest="as_json",
                                  help="print the full result document as JSON")

    cluster_parser = subparsers.add_parser(
        "cluster", help="run a replication cluster and print its status")
    cluster_parser.add_argument("action", choices=["status"],
                                help="status: build a cluster, drive funded "
                                     "transfers through leader rotation and "
                                     "gossip, print the per-replica table")
    cluster_parser.add_argument("--replicas", type=int, default=3,
                                help="number of chain replicas (default: 3)")
    cluster_parser.add_argument("--blocks", type=int, default=4,
                                help="slots to drive before reporting")
    cluster_parser.add_argument("--txs", type=int, default=12,
                                help="funded transfers to submit (default: 12)")
    cluster_parser.add_argument("--profile", default="lan",
                                help="inter-replica link profile "
                                     "(ideal/lan/wan/lossy/flaky; default: lan)")
    cluster_parser.add_argument("--geo", action="store_true",
                                help="place each replica in its own region "
                                     "(inter-region gossip pays WAN latency)")
    cluster_parser.add_argument("--seed", type=int, default=7,
                                help="seed for link jitter/drops (default: 7)")
    cluster_parser.add_argument("--json", action="store_true", dest="as_json",
                                help="print the full status document as JSON")

    show_parser = subparsers.add_parser("show", help="summarize a saved report JSON")
    show_parser.add_argument("path", help="path to a report saved with 'run --save'")

    subparsers.add_parser("info", help="print version and subsystem inventory")
    return parser


def _command_run(args: argparse.Namespace) -> int:
    """Implement the ``run`` subcommand."""
    from repro.system import paper_config, quick_config, run_marketplace
    from repro.system.artifacts import save_report
    from repro.utils.units import format_ether

    overrides = {}
    if args.owners is not None:
        overrides["num_owners"] = args.owners
    if args.epochs is not None:
        overrides["local_epochs"] = args.epochs
    if args.aggregator is not None:
        overrides["aggregator"] = args.aggregator
    if args.seed is not None:
        overrides["seed"] = args.seed
    config = paper_config(**overrides) if args.preset == "paper" else quick_config(**overrides)

    environment = None
    if args.store:
        from repro.errors import StorageError
        from repro.system.orchestrator import build_environment
        from repro.storage import StorageConfig

        try:
            environment = build_environment(
                config, storage=StorageConfig(backend="log", directory=args.store))
        except StorageError as error:
            # E.g. pointing a fresh run at a directory that already holds
            # another run's chain history.
            print(f"error: {error}", file=sys.stderr)
            return 2

    print(f"running the OFL-W3 marketplace ({args.preset} preset, "
          f"{config.num_owners} owners, aggregator={config.aggregator})...")
    try:
        report = run_marketplace(config, environment=environment)
    finally:
        # A failed run must still flush what it persisted (blob indexes are
        # lazy) so the store is post-mortem inspectable.
        if environment is not None and environment.storage is not None:
            environment.storage.backend.sync()

    print(f"\naggregate accuracy ({report.aggregate_algorithm}): {report.aggregate_accuracy:.4f}")
    print(f"local accuracies: {[round(a, 3) for a in report.local_accuracies]}")
    print(f"margin over worst local: {report.accuracy_margin_over_worst:.4f}")
    print(f"total paid: {format_ether(report.total_paid_wei)} ETH "
          f"of {format_ether(report.config.budget_wei)} ETH budget")
    owner_time = report.owner_time_breakdown()
    print(f"owner time {owner_time.total:.0f}s, buyer time {report.buyer_breakdown.total:.0f}s "
          f"(blockchain dominates both)")
    if args.save:
        target = save_report(report, args.save)
        print(f"full report saved to {target}")
    if environment is not None and environment.storage is not None:
        engine = environment.storage
        # Snapshot the final head so a later recovery restores instead of
        # re-executing the whole run.
        environment.node.chain.store.snapshot()
        pointer = engine.snapshots.latest_pointer()
        print(f"chain persisted to {args.store} "
              f"(snapshot at height {pointer['height']}, "
              f"head {pointer['head_hash'][:18]}...); "
              f"inspect with: python -m repro storage inspect {args.store}")
        engine.close()
    return 0


def _command_simulate(args: argparse.Namespace) -> int:
    """Implement the ``simulate`` subcommand."""
    from repro.errors import ReproError
    from repro.simnet import ScenarioRunner, build_scenario
    from repro.system import paper_config, quick_config

    config_overrides = {}
    if args.owners is not None:
        config_overrides["num_owners"] = args.owners
    if args.epochs is not None:
        config_overrides["local_epochs"] = args.epochs
    if args.seed is not None:
        config_overrides["seed"] = args.seed
    config = (paper_config(**config_overrides) if args.preset == "paper"
              else quick_config(**config_overrides))

    spec_overrides = {}
    if args.tasks is not None:
        spec_overrides["num_tasks"] = args.tasks
    if args.stagger is not None:
        spec_overrides["task_stagger_seconds"] = args.stagger
    if args.network is not None:
        spec_overrides["network_profile"] = args.network
    fraction_flags = {
        "poisoner": args.poison_fraction,
        "dropout": args.dropout_fraction,
        "straggler": args.straggler_fraction,
        "free_rider": args.freerider_fraction,
    }
    if any(value is not None for value in fraction_flags.values()):
        spec = build_scenario(args.scenario)
        fractions = dict(spec.behavior_fractions)
        for archetype, value in fraction_flags.items():
            if value is not None:
                if value > 0:
                    fractions[archetype] = value
                else:
                    fractions.pop(archetype, None)
        spec_overrides["behavior_fractions"] = fractions

    try:
        spec = build_scenario(args.scenario, **spec_overrides)
        print(f"simulating scenario {spec.name!r}: {spec.description}")
        print(f"  {spec.num_tasks} task(s) x {config.num_owners} owners, "
              f"network={spec.network_profile}, "
              f"submissions={'async' if spec.async_submissions else 'sync'}, "
              f"seed={config.seed}")
        runner = ScenarioRunner(spec, config=config, observability=args.obs)
        report = runner.run()
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print()
    print(report.summary())
    if args.save:
        from repro.system.artifacts import save_json

        # save_json sorts keys at every nesting level, so two identical runs
        # write byte-identical files and saved reports diff cleanly.
        target = save_json(report.to_dict(), args.save)
        print(f"\nscenario report saved to {target}")
    return 0 if report.tasks_failed == 0 else 3


def _command_loadgen(args: argparse.Namespace) -> int:
    """Implement the ``loadgen`` subcommand."""
    from repro.errors import ReproError
    from repro.loadgen import LoadGenConfig, LoadGenerator, RequestMix, run_sweep

    if args.transport == "http":
        return _command_loadgen_http(args)
    try:
        mix = (RequestMix.parse(args.mix).to_dict() if args.mix is not None
               else None)
        config = LoadGenConfig(
            clients=args.clients,
            duration_seconds=args.duration,
            rate=args.rate,
            mode=args.mode,
            arrival=args.arrival,
            think_time_seconds=args.think,
            zipf_exponent=args.zipf,
            rate_limit=args.rate_limit,
            cluster=args.cluster,
            parallel=args.parallel,
            batch_verify=args.batch_verify,
            seed=args.seed,
            **({"mix": mix} if mix is not None else {}),
        )
        if args.sweep is not None:
            if args.obs:
                print("error: --obs applies to a single run, not a sweep",
                      file=sys.stderr)
                return 2
            if args.sweep == "auto":
                rates = [args.rate, args.rate * 2, args.rate * 4, args.rate * 8]
            else:
                rates = [float(rate) for rate in args.sweep.split(",") if rate.strip()]
            print(f"sweeping offered rates {[round(r, 1) for r in sorted(rates)]} "
                  f"({config.clients} clients, {config.duration_seconds:.0f}s "
                  f"simulated each, seed {config.seed})...")
            report = run_sweep(config, rates)
        else:
            print(f"generating load: {config.clients} clients, "
                  f"{config.mode} loop at {config.rate}/s ({config.arrival}), "
                  f"{config.duration_seconds:.0f}s simulated, seed {config.seed}...")
            report = LoadGenerator(config, observability=args.obs).run()
    except (ReproError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print()
    print(report.summary())
    if args.save:
        from repro.system.artifacts import save_json

        target = save_json(report.to_dict(), args.save)
        print(f"\nload report saved to {target}")
    return 0


def _command_loadgen_http(args: argparse.Namespace) -> int:
    """The ``loadgen --transport http`` path: real sockets, worker processes."""
    from repro.errors import ReproError
    from repro.net import HttpLoadConfig, run_http_load

    try:
        config = HttpLoadConfig(
            url=args.url,
            num_txs=args.txs,
            num_reads=args.reads,
            workers=args.workers,
            senders=args.senders,
            seed=args.seed,
        )
        target = args.url or "a self-hosted server on an ephemeral port"
        print(f"driving {target} with {config.workers} worker process(es): "
              f"{config.num_txs} transfers + {config.num_reads} reads "
              f"across {config.senders} senders (seed {config.seed})...")
        report = run_http_load(config)
    except (ReproError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print()
    print(report.summary())
    if args.save:
        from repro.system.artifacts import save_json

        target = save_json(report.to_dict(), args.save)
        print(f"\nload report saved to {target}")
    return 0


def _command_serve(args: argparse.Namespace) -> int:
    """Implement the ``serve`` subcommand: boot, print the port, run until
    SIGTERM/SIGINT, then drain gracefully."""
    import asyncio
    import signal

    from repro.errors import ReproError
    from repro.net import NetConfig, build_serve_stack

    try:
        config = NetConfig(
            host=args.host,
            port=args.port,
            max_connections=args.max_connections,
            max_batch=args.max_batch,
            read_timeout_seconds=args.read_timeout,
            send_queue_frames=args.send_queue,
            block_interval_seconds=args.block_interval,
        )
        server = build_serve_stack(
            config,
            cluster=args.cluster,
            parallel=args.parallel,
            batch_verify=args.batch_verify,
            store=args.store,
            obs=args.obs,
            seed=args.seed,
            logger=lambda message: print(f"[serve] {message}", flush=True),
        )
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    async def _serve() -> None:
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, stop.set)
            except (NotImplementedError, RuntimeError):
                pass  # platforms without signal support: Ctrl-C raises instead
        await server.run(stop)

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        pass
    return 0


def _command_obs(args: argparse.Namespace) -> int:
    """Implement the ``obs`` subcommand (metrics / trace / top / events)."""
    import json

    from repro.errors import ReproError

    try:
        if args.scenario is not None:
            from repro.simnet import ScenarioRunner, build_scenario
            from repro.system import quick_config

            spec = build_scenario(args.scenario)
            print(f"observing scenario {spec.name!r} (seed {args.seed})...",
                  file=sys.stderr)
            runner = ScenarioRunner(spec, config=quick_config(seed=args.seed),
                                    observability=True)
            runner.run()
            obs = runner.obs
        else:
            from repro.loadgen import LoadGenConfig, LoadGenerator

            config = LoadGenConfig(clients=args.clients,
                                   duration_seconds=args.duration,
                                   rate=args.rate, seed=args.seed)
            print(f"observing a {config.duration_seconds:.0f}s load burst "
                  f"({config.clients} clients at {config.rate:g}/s, "
                  f"seed {config.seed})...", file=sys.stderr)
            generator = LoadGenerator(config, observability=True)
            generator.run()
            obs = generator.obs
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    if args.save_events:
        target = obs.event_log.write(args.save_events)
        print(f"event log saved to {target}", file=sys.stderr)

    if args.action == "metrics":
        print(obs.registry.render_prometheus(), end="")
        return 0
    if args.action == "trace":
        trace_id = args.trace_id or obs.sample_trace_id()
        if trace_id is None or not obs.tracer.spans_for(trace_id):
            print("error: no matching trace recorded", file=sys.stderr)
            return 3
        print(obs.tracer.render(trace_id))
        return 0
    if args.action == "top":
        print(obs.profiler.render_top(args.limit))
        return 0
    for event in obs.event_log.events(limit=args.limit):
        print(json.dumps(event, sort_keys=True))
    return 0


def _command_rpc(args: argparse.Namespace) -> int:
    """Implement the ``rpc`` subcommand."""
    import json

    from repro.chain import EthereumNode
    from repro.contracts import default_registry
    from repro.ipfs import Swarm
    from repro.rpc import JsonRpcGateway

    if args.demo:
        from repro.system import quick_config, run_marketplace
        from repro.system.orchestrator import build_environment

        config = quick_config(num_owners=2, num_samples=400, local_epochs=1,
                              seed=args.seed)
        print(f"seeding the chain with a tiny marketplace run (seed {args.seed})...",
              file=sys.stderr)
        environment = build_environment(config)
        run_marketplace(environment=environment)
        gateway = environment.gateway
    else:
        gateway = JsonRpcGateway(
            node=EthereumNode(backend=default_registry()), swarm=Swarm())

    if args.list_methods:
        if args.markdown:
            from repro.rpc.docs import rpc_reference_markdown

            # The reference documents the *fully loaded* surface (backend and
            # storage namespaces mounted), independent of --demo.
            print(rpc_reference_markdown(), end="")
            return 0
        for name in gateway.methods():
            print(name)
        return 0

    if args.batch is not None:
        try:
            payload = json.loads(args.batch)
        except ValueError as error:
            print(f"error: --batch is not valid JSON: {error}", file=sys.stderr)
            return 2
        response = gateway.handle(payload)
    elif args.method is not None:
        params = []
        for raw in args.params:
            try:
                params.append(json.loads(raw))
            except ValueError:
                params.append(raw)  # bare words (addresses, CIDs) stay strings
        response = gateway.handle(
            {"jsonrpc": "2.0", "id": 1, "method": args.method, "params": params})
    else:
        print("error: give a method, --batch, or --list", file=sys.stderr)
        return 2

    print(json.dumps(response, indent=2, sort_keys=True, default=str))
    failed = ("error" in response if isinstance(response, dict)
              else any("error" in entry for entry in response or []))
    return 1 if failed else 0


def _run_gas_report(owners: int, gas_price_gwei: float) -> int:
    """Print the gas-fee table (shared by the CLI and tests)."""
    from repro.chain import EthereumNode, Faucet, KeyPair
    from repro.contracts import default_registry
    from repro.system.costs import build_gas_cost_report, estimate_onchain_model_storage_gas
    from repro.utils.units import ether_to_wei, format_ether, gwei_to_wei

    gas_price = gwei_to_wei(str(gas_price_gwei))
    node = EthereumNode(backend=default_registry())
    faucet = Faucet(node)
    buyer = KeyPair.from_label("cli-gas-buyer")
    faucet.drip(buyer.address, ether_to_wei(2))

    spec = {"task": "digit-classification", "model": [784, 100, 10], "max_owners": owners}
    deployment = node.wait_for_receipt(
        node.deploy_contract(buyer, "FLTask", [spec], value=ether_to_wei("0.01"),
                             gas_price=gas_price)
    )
    task = deployment.contract_address
    for index in range(owners):
        keys = KeyPair.from_label(f"cli-gas-owner-{index}")
        faucet.drip(keys.address, ether_to_wei("0.05"))
        node.wait_for_receipt(
            node.transact_contract(keys, task, "registerOwner", [], gas_price=gas_price))
        node.wait_for_receipt(
            node.transact_contract(keys, task, "uploadCid", [f"Qm{index:044d}"],
                                   gas_price=gas_price))
        node.wait_for_receipt(
            node.transact_contract(buyer, task, "payOwner",
                                   [keys.address, ether_to_wei("0.01") // owners],
                                   gas_price=gas_price))

    report = build_gas_cost_report(node.chain)
    print(f"{'category':<26}{'count':>6}{'mean gas':>14}{'mean fee (ETH)':>18}")
    for name, row in sorted(report.rows.items(), key=lambda kv: -kv[1].mean_fee_wei):
        print(f"{name:<26}{row.count:>6}{row.mean_gas:>14,.0f}{row.mean_fee_eth:>18}")
    estimate = estimate_onchain_model_storage_gas(node.chain, 318_132)
    print(f"\nCID on-chain: {estimate['cid_storage_gas']:,} gas "
          f"({format_ether(estimate['cid_storage_gas'] * gas_price)} ETH); "
          f"whole model on-chain: {estimate['model_storage_gas']:,} gas "
          f"({format_ether(estimate['model_storage_gas'] * gas_price)} ETH); "
          f"ratio {estimate['gas_ratio']:.0f}x")
    return 0


def _run_model_quality(owners: int, epochs: int, samples: int, seed: int) -> int:
    """Print the Fig. 4 / Fig. 6 series (shared by the CLI and tests)."""
    from repro.data import (SyntheticMnistConfig, generate_synthetic_mnist,
                            partition_dataset, train_test_split)
    from repro.fl import FLClient, OneShotServer
    from repro.fl.oneshot import make_aggregator
    from repro.incentives import leave_one_out
    from repro.ml import TrainingConfig
    from repro.ml.trainer import evaluate_model

    dataset = generate_synthetic_mnist(
        SyntheticMnistConfig(num_samples=samples, class_similarity=0.5, noise_scale=0.4,
                             variation_scale=1.2, variation_rank=24, seed=seed)
    )
    train, test = train_test_split(dataset, test_fraction=0.15, rng=seed)
    shards = partition_dataset(train, owners, scheme="dirichlet", alpha=0.35, rng=seed)
    server = OneShotServer(aggregator=make_aggregator("pfnm"))
    local_accuracies = []
    for index, shard in enumerate(shards):
        client = FLClient(f"owner-{index}", shard,
                          config=TrainingConfig(epochs=epochs, seed=seed + index),
                          seed=seed + index)
        result = client.train_local()
        server.submit(result.update)
        accuracy = evaluate_model(client.model, test.features, test.labels).accuracy
        local_accuracies.append(accuracy)
        print(f"owner {index}: {len(shard)} samples, local accuracy {accuracy:.4f}")
    aggregate = server.aggregate()
    aggregate_accuracy = aggregate.evaluate(test)
    print(f"aggregate (pfnm): {aggregate_accuracy:.4f} "
          f"(margin over worst local {aggregate_accuracy - min(local_accuracies):+.4f})")

    def value_fn(subset):
        return server.aggregate(subset=list(subset)).evaluate(test) if subset else 0.0

    loo = leave_one_out(owners, value_fn)
    for owner in range(owners):
        print(f"drop owner {owner}: accuracy {loo.drop_values[owner]:.4f}")
    print(f"least useful owner: {loo.least_useful()}")
    return 0


def _command_storage(args: argparse.Namespace) -> int:
    """Implement the ``storage`` subcommand (inspect / verify / compact)."""
    import json
    from pathlib import Path

    from repro.contracts import default_registry
    from repro.errors import ReproError
    from repro.storage import StorageConfig, StorageEngine, compact_store, verify_store

    directory = Path(args.directory)
    # Require an actual store marker, not mere existence: opening an
    # arbitrary directory would silently mkdir wal/blobs/meta inside it.
    if not directory.is_dir() or not (directory / "wal").is_dir():
        print(f"error: {args.directory} is not a store directory", file=sys.stderr)
        return 2
    engine = StorageEngine(StorageConfig(backend="log", directory=args.directory))
    try:
        if args.action == "inspect":
            print(json.dumps(engine.describe(), indent=2, sort_keys=True))
            return 0
        if args.action == "verify":
            result = verify_store(engine, backend=default_registry())
            print(json.dumps(result, indent=2, sort_keys=True))
            return 0
        result = compact_store(engine, backend=default_registry())
        print(f"compacted WAL: {sum(result['before'].values())} -> "
              f"{sum(result['after'].values())} entries "
              f"(snapshot at height {result['snapshot']['height']})")
        print(json.dumps(result, indent=2, sort_keys=True))
        return 0
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 3
    finally:
        engine.close()


def _command_analytics(args: argparse.Namespace) -> int:
    """Implement the ``analytics`` subcommand (status / query / backfill)."""
    import json
    from pathlib import Path

    from repro.analytics import attach_analytics, scan_leaderboard
    from repro.chain.events import LogFilter
    from repro.chain.explorer import Explorer
    from repro.contracts import default_registry
    from repro.errors import ReproError
    from repro.storage import StorageConfig, StorageEngine
    from repro.storage.engine import recover_chain

    directory = Path(args.directory)
    if not directory.is_dir() or not (directory / "wal").is_dir():
        print(f"error: {args.directory} is not a store directory", file=sys.stderr)
        return 2
    engine = StorageEngine(StorageConfig(backend="log", directory=args.directory))
    try:
        chain = recover_chain(engine, backend=default_registry())
        feeder = attach_analytics(chain)

        if args.action == "backfill":
            result = feeder.backfill()
            print(f"backfilled {result['blocks_applied']} block(s) from the "
                  f"WAL + archive (height {result['height']}, "
                  f"applied_seq {result['applied_seq']})")
            if args.as_json:
                print(json.dumps(feeder.status(), indent=2, sort_keys=True))
            return 0

        if args.action == "status":
            status = feeder.status()
            if args.as_json:
                print(json.dumps(status, indent=2, sort_keys=True))
                return 0
            print(f"analytics replica over {args.directory}: "
                  f"height={status['height']} "
                  f"applied_seq={status['applied_seq']} "
                  f"wal_last_seq={status['wal_last_seq']} "
                  f"lag={status['lag_entries']}")
            print(f"tables: transactions={status['transactions']} "
                  f"logs={status['logs']} addresses={status['addresses']} "
                  f"event_names={status['event_names']}")
            print(f"counters: rollbacks={status['rollbacks']} "
                  f"queries={status['queries']}")
            return 0

        # query: replica-served reads, parity-checked against the OLTP scan
        # path on the same recovered chain (the feeder is detached for the
        # scan so the comparison exercises the seed code, not the replica).
        log_filter = (LogFilter(event_name=args.event) if args.event
                      else LogFilter())
        replica_logs = [log.to_dict() for log in feeder.logs(log_filter)]
        replica_board = feeder.leaderboard(args.leaderboard, args.limit)
        replica_fees = feeder.fee_summary_by_kind()
        chain.analytics = None
        try:
            scan_logs = [log.to_dict() for log in chain.logs(log_filter)]
            scan_board = scan_leaderboard(chain, args.leaderboard, args.limit)
            scan_fees = Explorer(chain).fee_summary_by_kind()
        finally:
            chain.analytics = feeder
        parity = (replica_logs == scan_logs and replica_board == scan_board
                  and replica_fees == scan_fees)
        if args.as_json:
            print(json.dumps({"logs": replica_logs,
                              "leaderboard": replica_board,
                              "fee_summary": replica_fees,
                              "parity": "ok" if parity else "failed"},
                             indent=2, sort_keys=True))
            return 0 if parity else 3
        print(f"{len(replica_logs)} log(s) match"
              + (f" event={args.event}" if args.event else ""))
        print(f"leaderboard {args.leaderboard!r} (top {args.limit}):")
        value_key = {"payments": "total_wei", "submissions": "submissions",
                     "fees": "total_fees_paid_wei"}[args.leaderboard]
        for rank, row in enumerate(replica_board, start=1):
            print(f"  {rank:>2}. {row['address']}  {value_key}={row[value_key]}")
        print("fee summary by kind:")
        for kind, row in replica_fees.items():
            print(f"  {kind}: count={row['count']} "
                  f"mean_fee_wei={row['mean_fee_wei']:.0f} "
                  f"mean_gas_used={row['mean_gas_used']:.0f}")
        print(f"parity={'ok' if parity else 'FAILED'} "
              f"(replica vs OLTP scan: logs, leaderboard, fee summary)")
        return 0 if parity else 3
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 3
    finally:
        engine.close()


def _command_cluster(args: argparse.Namespace) -> int:
    """Implement the ``cluster`` subcommand (status)."""
    import json

    from repro.errors import ReproError
    from repro.chain.faucet import Faucet
    from repro.chain.keys import KeyPair
    from repro.cluster import ChainCluster, ClusterConfig, ClusterNode
    from repro.contracts.registry import default_registry
    from repro.utils.units import ether_to_wei

    try:
        config = ClusterConfig(
            replicas=args.replicas,
            network_profile=args.profile,
            regions=tuple(range(args.replicas)) if args.geo else None,
            seed=args.seed,
        )
        cluster = ChainCluster(config, registry=default_registry())
        node = ClusterNode(cluster)
        faucet = Faucet(node)
        senders = [KeyPair.from_label(f"cluster-cli-{index}")
                   for index in range(min(4, max(1, args.txs)))]
        for keypair in senders:
            faucet.drip(keypair.address, ether_to_wei(1))
        sink = KeyPair.from_label("cluster-cli-sink").address
        for index in range(max(0, args.txs)):
            node.sign_and_send(senders[index % len(senders)], to=sink, value=1_000)
        for _ in range(max(1, args.blocks)):
            cluster.tick(force=True)
        cluster.converge()
        status = cluster.status()
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    if args.as_json:
        print(json.dumps(status, indent=2, sort_keys=True))
        return 0
    print(f"cluster: {config.replicas} replicas, links={args.profile}"
          f"{' (geo regions)' if args.geo else ''}, "
          f"leader={status['leader']}, "
          f"{'converged' if status['converged'] else 'DIVERGED'}, "
          f"finalized height {status['finalized_height']}")
    header = (f"{'replica':<12}{'alive':<7}{'height':>7}{'produced':>10}"
              f"{'reorgs':>8}{'mempool':>9}  head")
    print(header)
    print("-" * len(header))
    for row in status["replicas"]:
        print(f"{row['name']:<12}{str(row['alive']).lower():<7}"
              f"{row['height']:>7}{row['blocks_produced']:>10}"
              f"{row['fork']['reorgs']:>8}{row['mempool_depth']:>9}"
              f"  {row['head_hash'][:18]}...")
    gossip = status["gossip"]
    print(f"gossip: {gossip['tx_floods']} tx floods "
          f"({gossip['tx_delivered']} delivered), "
          f"{gossip['announces']} announces, "
          f"{gossip['blocks_fetched']} blocks fetched, "
          f"{gossip['reorgs_triggered']} gossip-triggered reorg(s)")
    return 0 if status["converged"] else 3


def _command_show(path: str) -> int:
    """Implement the ``show`` subcommand."""
    from repro.system.artifacts import load_report, summarize_report

    payload = load_report(path)
    print(summarize_report(payload))
    return 0


def _command_info() -> int:
    """Implement the ``info`` subcommand."""
    print(f"repro {__version__} - OFL-W3 reproduction")
    print("subsystems: chain, contracts, ipfs, ml, data, fl, incentives, web, rpc, "
          "storage, system, simnet, loadgen, cluster, obs, analytics, net")
    print("entry points: repro.system.run_marketplace, repro.web.BuyerDApp / OwnerDApp, "
          "repro.rpc.MarketplaceClient, repro.storage.recover_node, "
          "repro.cluster.ChainCluster, repro.analytics.attach_analytics, "
          "repro.net.build_serve_stack")
    print("docs: README.md, docs/architecture.md, docs/rpc.md, docs/simnet.md, "
          "docs/cli.md, docs/performance.md, docs/observability.md, "
          "docs/analytics.md, docs/networking.md")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command is None:
        parser.print_help()
        return 1
    if args.command == "run":
        return _command_run(args)
    if args.command == "simulate":
        return _command_simulate(args)
    if args.command == "loadgen":
        return _command_loadgen(args)
    if args.command == "serve":
        return _command_serve(args)
    if args.command == "obs":
        return _command_obs(args)
    if args.command == "rpc":
        return _command_rpc(args)
    if args.command == "storage":
        return _command_storage(args)
    if args.command == "analytics":
        return _command_analytics(args)
    if args.command == "cluster":
        return _command_cluster(args)
    if args.command == "gas-report":
        return _run_gas_report(args.owners, args.gas_price_gwei)
    if args.command == "model-quality":
        return _run_model_quality(args.owners, args.epochs, args.samples, args.seed)
    if args.command == "show":
        return _command_show(args.path)
    if args.command == "info":
        return _command_info()
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
