"""Auto-generated JSON-RPC method reference.

:func:`rpc_reference_markdown` renders every method a fully loaded gateway
serves -- name, parameters with defaults, and the handler's docstring
summary -- grouped by namespace.  ``docs/rpc.md`` is this function's output,
verbatim; a tier-1 test regenerates the reference and fails if the file has
drifted from the served surface, so the document cannot rot.

Regenerate with::

    PYTHONPATH=src python -m repro rpc --list --markdown > docs/rpc.md
"""

from __future__ import annotations

import inspect
from typing import Any, Dict, List, Optional

HEADER = """\
# JSON-RPC method reference

All marketplace traffic crosses one versioned JSON-RPC 2.0 gateway
(`repro.rpc.JsonRpcGateway`).  This file lists every method a fully loaded
gateway serves (chain node + IPFS swarm + buyer backend + storage engine
attached), grouped by namespace.

> **Auto-generated** by `python -m repro rpc --list --markdown`; do not edit
> by hand.  A tier-1 test (`tests/rpc/test_docs.py`) regenerates it and
> fails when this file is out of sync with the served methods.

Envelopes are standard JSON-RPC 2.0 (single requests, notifications,
batches); `eth_*` quantities are hex strings; errors use the codes listed in
`README.md` (`-32700` ... `-32005`).
"""

_NAMESPACE_BLURBS = {
    "analytics": "The columnar HTAP replica (`repro.analytics`): freshness "
                 "status, replica-served log queries and pre-aggregated "
                 "rollups/leaderboards (mounted only when a replica is "
                 "attached).",
    "eth": "Chain access over `EthereumNode` -- the MetaMask/web3-to-node seam.",
    "evm": "Dev-chain extensions (explicit mining), as on Anvil/Hardhat.",
    "ipfs": "Content-addressed storage over `IpfsNode`/`Swarm` "
            "(hex payloads; optional `node` selects a daemon by name).",
    "oflw3": "The buyer backend's REST routes (deploy task, retrieve models, "
             "aggregate, pay).",
    "storage": "The durable storage engine (`repro.storage`): WAL, snapshot "
               "and LRU-cache statistics.",
    "obs": "The unified observability layer (`repro.obs`): Prometheus "
           "metrics, span traces, per-phase cost tables and structured "
           "events (mounted only when a run enables observability).",
}


def build_reference_gateway() -> Any:
    """A gateway with every namespace mounted (the documented surface).

    Mirrors what ``build_environment`` wires at runtime: a chain node, an
    IPFS swarm with one registered daemon, a buyer backend, a storage
    engine and an analytics replica over the engine's WAL.
    """
    from repro.analytics import attach_analytics
    from repro.chain.keys import KeyPair
    from repro.chain.node import EthereumNode
    from repro.contracts.registry import default_registry
    from repro.data.synthetic_mnist import SyntheticMnistConfig, generate_synthetic_mnist
    from repro.ipfs.node import IpfsNode
    from repro.ipfs.swarm import Swarm
    from repro.obs import Observability
    from repro.rpc.gateway import JsonRpcGateway
    from repro.storage.engine import StorageEngine
    from repro.web.backend import BuyerBackend
    from repro.web.wallet import MetaMaskWallet

    engine = StorageEngine()
    node = EthereumNode(backend=default_registry(), storage=engine)
    swarm = Swarm()
    ipfs = IpfsNode("docs", swarm)
    gateway = JsonRpcGateway(node=node, swarm=swarm, ipfs=ipfs)
    wallet = MetaMaskWallet(KeyPair.from_label("docs-buyer"), node)
    dataset = generate_synthetic_mnist(SyntheticMnistConfig(num_samples=40, seed=1))
    gateway.serve_backend(BuyerBackend(wallet=wallet, ipfs=ipfs, test_dataset=dataset))
    gateway.attach_storage(engine)
    gateway.attach_obs(Observability(clock=node.chain.clock))
    gateway.attach_analytics(attach_analytics(node.chain))
    return gateway


def _signature_markdown(handler: Any) -> str:
    """Render a handler's parameters as ``name, opt=default`` markdown code."""
    try:
        signature = inspect.signature(handler)
    except (TypeError, ValueError):  # pragma: no cover - builtins only
        return ""
    parts: List[str] = []
    for parameter in signature.parameters.values():
        if parameter.name in ("self",):
            continue
        if parameter.default is inspect.Parameter.empty:
            parts.append(parameter.name)
        else:
            parts.append(f"{parameter.name}={parameter.default!r}")
    return ", ".join(parts)


def _summary(handler: Any) -> str:
    """First docstring line of a handler (one sentence, no trailing dot run)."""
    doc = inspect.getdoc(handler) or ""
    first = doc.splitlines()[0].strip() if doc else ""
    return first


def rpc_reference_markdown(gateway: Optional[Any] = None) -> str:
    """The full method reference as markdown (the contents of docs/rpc.md)."""
    gateway = gateway or build_reference_gateway()
    by_namespace: Dict[str, List[str]] = {}
    for name in gateway.methods():
        namespace = name.split("_", 1)[0]
        by_namespace.setdefault(namespace, []).append(name)

    lines = [HEADER]
    for namespace in sorted(by_namespace):
        lines.append(f"## `{namespace}_*`")
        lines.append("")
        blurb = _NAMESPACE_BLURBS.get(namespace)
        if blurb:
            lines.append(blurb)
            lines.append("")
        lines.append("| Method | Params | Description |")
        lines.append("|--------|--------|-------------|")
        for name in by_namespace[namespace]:
            handler = gateway._methods[name]
            params = _signature_markdown(handler)
            params_cell = f"`{params}`" if params else "--"
            lines.append(f"| `{name}` | {params_cell} | {_summary(handler)} |")
        lines.append("")
    lines.append(f"_{sum(len(v) for v in by_namespace.values())} methods served._")
    lines.append("")
    return "\n".join(lines)
