"""The JSON-RPC 2.0 gateway: one metered door to the whole stack.

:class:`JsonRpcGateway` dispatches validated requests to namespaced method
registries (``eth_*``, ``ipfs_*``, ``oflw3_*``), supports batches and
notifications, and runs every request through a middleware chain (metrics
first, then whatever the caller installed: rate limiters, allowlists...).

The gateway is transport-agnostic: :meth:`handle` consumes/produces plain
dicts (what an in-process client uses), :meth:`handle_raw` consumes/produces
JSON text (what a socket transport would use).  Both speak identical
envelopes, so everything above the gateway is already wire-shaped.
"""

from __future__ import annotations

import inspect
import json
from typing import Any, Callable, Dict, Iterable, List, Optional, Union

from repro.errors import ReproError
from repro.chain.node import EthereumNode
from repro.ipfs.node import IpfsNode
from repro.ipfs.swarm import Swarm
from repro.rpc.middleware import RequestMetrics
from repro.rpc.namespaces import (
    AnalyticsNamespace,
    EthNamespace,
    IpfsNamespace,
    ObsNamespace,
    Oflw3Namespace,
    ParallelNamespace,
)
from repro.rpc.protocol import (
    INTERNAL_ERROR,
    INVALID_PARAMS,
    INVALID_REQUEST,
    JsonRpcError,
    METHOD_NOT_FOUND,
    PARSE_ERROR,
    RpcRequest,
    SERVER_ERROR,
    error_response,
    parse_request,
    success_response,
)

Middleware = Callable[[RpcRequest, Callable[[RpcRequest], Any]], Any]


def _describe_storage(engine: Any) -> Callable[[], Dict[str, Any]]:
    def storage_stats() -> Dict[str, Any]:
        """Inspect the attached storage engine: backend, WAL, snapshot, cache."""
        return engine.describe()

    return storage_stats


def _cache_stats(engine: Any) -> Callable[[], Dict[str, Any]]:
    def storage_cache_stats() -> Dict[str, Any]:
        """Hit/miss/eviction counters of the storage cache (deprecated alias of obs_cacheStats)."""
        return engine.cache.stats()

    return storage_cache_stats


class JsonRpcGateway:
    """Versioned JSON-RPC 2.0 gateway over the chain/IPFS/backend stack."""

    def __init__(
        self,
        node: Optional[EthereumNode] = None,
        swarm: Optional[Swarm] = None,
        ipfs: Optional[IpfsNode] = None,
        middleware: Optional[Iterable[Middleware]] = None,
        metrics: bool = True,
    ) -> None:
        self._methods: Dict[str, Callable[..., Any]] = {}
        self._signatures: Dict[str, inspect.Signature] = {}
        self.metrics: Optional[RequestMetrics] = RequestMetrics() if metrics else None
        self._middleware: List[Middleware] = (
            [self.metrics] if self.metrics is not None else []
        ) + list(middleware or [])
        #: Lazily composed middleware pipeline (rebuilt from _middleware once).
        self._pipeline: Optional[Callable[[RpcRequest], Any]] = None

        self.eth: Optional[EthNamespace] = None
        self.ipfs = IpfsNamespace(swarm=swarm)
        self.oflw3 = Oflw3Namespace()
        self.storage: Optional[Any] = None
        #: Optional observability facade (``repro.obs``); mounted lazily via
        #: :meth:`attach_obs`, ``None`` by default.
        self.obs: Optional[Any] = None
        #: Optional analytics replica feeder (``repro.analytics``); mounted
        #: lazily via :meth:`attach_analytics`, ``None`` by default.
        self.analytics: Optional[Any] = None
        if node is not None:
            self.serve_node(node)
        if swarm is not None:
            self.register_namespace(self.ipfs.methods())
        if ipfs is not None:
            self.serve_ipfs_node(ipfs)

    # -- wiring ----------------------------------------------------------------

    def register(self, name: str, handler: Callable[..., Any], replace: bool = True) -> None:
        """Register one method; later registrations win unless ``replace=False``."""
        if not replace and name in self._methods:
            raise ValueError(f"method {name} already registered")
        self._methods[name] = handler
        self._signatures[name] = inspect.signature(handler)

    def register_namespace(self, methods: Dict[str, Callable[..., Any]]) -> None:
        """Register a whole method table."""
        for name, handler in methods.items():
            self.register(name, handler)

    def serve_node(self, node: EthereumNode) -> "JsonRpcGateway":
        """Attach the chain node; exposes ``eth_*`` and ``parallel_*``."""
        self.eth = EthNamespace(node)
        self.register_namespace(self.eth.methods())
        self.register_namespace(ParallelNamespace(node).methods())
        return self

    def serve_ipfs_node(self, node: IpfsNode) -> "JsonRpcGateway":
        """Expose an IPFS node through the ``ipfs_*`` namespace (idempotent)."""
        self.ipfs.register_node(node)
        self.register_namespace(self.ipfs.methods())
        return self

    def serve_backend(self, backend: Any) -> str:
        """Mount a buyer backend under ``oflw3_*``; returns its routing key."""
        key = self.oflw3.register_backend(backend)
        self.register_namespace(self.oflw3.methods())
        return key

    def attach_storage(self, engine: Any) -> "JsonRpcGateway":
        """Expose a ``repro.storage`` engine through the gateway.

        Installs the engine's LRU read-cache statistics as a gauge on the
        :class:`RequestMetrics` middleware (so scenario reports show cache
        hits/misses next to request counts) and serves two ``storage_*``
        methods: ``storage_stats`` (full engine inspection) and
        ``storage_cacheStats`` (just the cache counters).
        """
        self.storage = engine
        if self.metrics is not None:
            self.metrics.attach_gauge("storage_cache", engine.cache.snapshot)
        if self.obs is not None:
            self.obs.instrument_storage(engine)
        self.register("storage_stats", _describe_storage(engine))
        self.register("storage_cacheStats", _cache_stats(engine))
        return self

    def attach_obs(self, obs: Any) -> "JsonRpcGateway":
        """Mount a ``repro.obs`` facade: ``obs_*`` methods + metric adapters.

        Adapts the gateway's :class:`RequestMetrics` into the unified
        registry and, when a storage engine is (or later gets) attached,
        registers its cache under the unified ``repro_cache_*`` series.
        ``storage_cacheStats`` keeps working as a deprecated alias of
        ``obs_cacheStats``'s ``storage`` entry.
        """
        self.obs = obs
        obs.instrument_gateway(self)
        if self.storage is not None:
            obs.instrument_storage(self.storage)
        self.register_namespace(ObsNamespace(obs).methods())
        return self

    def attach_analytics(self, feeder: Any) -> "JsonRpcGateway":
        """Mount an analytics replica feeder under ``analytics_*``.

        The feeder keeps serving the transparently routed reads
        (``eth_getLogs`` through the chain); this additionally exposes the
        replica's own surface -- freshness status, explicit columnar
        queries and the pre-aggregated rollups/leaderboards.
        """
        self.analytics = feeder
        self.register_namespace(AnalyticsNamespace(feeder).methods())
        return self

    def methods(self) -> List[str]:
        """Sorted names of every registered method."""
        return sorted(self._methods)

    # -- dispatch ---------------------------------------------------------------

    def _invoke(self, request: RpcRequest) -> Any:
        """Innermost stage: bind params, run the handler, normalize errors."""
        handler = self._methods.get(request.method)
        if handler is None:
            raise JsonRpcError(METHOD_NOT_FOUND, f"method {request.method!r} not found")
        args = request.positional()
        kwargs = request.named()
        try:
            self._signatures[request.method].bind(*args, **kwargs)
        except TypeError as exc:
            raise JsonRpcError(
                INVALID_PARAMS, f"invalid params for {request.method}: {exc}"
            ) from None
        try:
            return handler(*args, **kwargs)
        except JsonRpcError:
            raise
        except ReproError as exc:
            raise JsonRpcError(
                SERVER_ERROR, str(exc), data={"error_class": type(exc).__name__}
            ) from exc
        except Exception as exc:  # noqa: BLE001 - a buggy handler must not kill the gateway
            raise JsonRpcError(INTERNAL_ERROR, f"internal error: {exc}") from exc

    def _run(self, request: RpcRequest) -> Any:
        """Run the middleware chain around :meth:`_invoke`."""
        if self._pipeline is None:
            def bind(mw, nxt) -> Callable[[RpcRequest], Any]:
                def step(req: RpcRequest) -> Any:
                    return mw(req, nxt)
                return step

            call_next: Callable[[RpcRequest], Any] = self._invoke
            for layer in reversed(self._middleware):
                call_next = bind(layer, call_next)
            self._pipeline = call_next
        return self._pipeline(request)

    def _handle_one(self, payload: Any) -> Optional[Dict[str, Any]]:
        """Process one envelope; returns None for notifications."""
        try:
            request = parse_request(payload)
        except JsonRpcError as exc:
            request_id = payload.get("id") if isinstance(payload, dict) else None
            return error_response(request_id, exc.code, exc.message, exc.data)
        try:
            result = self._run(request)
        except JsonRpcError as exc:
            if request.is_notification:
                return None
            return error_response(request.request_id, exc.code, exc.message, exc.data)
        if request.is_notification:
            return None
        return success_response(request.request_id, result)

    def handle(self, payload: Any) -> Union[Dict[str, Any], List[Dict[str, Any]], None]:
        """Process a single request or a batch (a list of requests).

        Batch semantics follow JSON-RPC 2.0: responses come back in request
        order (minus notifications), an empty batch is an invalid request,
        and a batch of only notifications yields ``None``.
        """
        if isinstance(payload, list):
            if not payload:
                return error_response(None, INVALID_REQUEST, "batch must not be empty")
            responses = [self._handle_one(entry) for entry in payload]
            responses = [response for response in responses if response is not None]
            return responses or None
        return self._handle_one(payload)

    def handle_raw(self, text: str) -> str:
        """Text transport: JSON string in, JSON string out ("" for no reply)."""
        try:
            payload = json.loads(text)
        except (TypeError, ValueError) as exc:
            return json.dumps(error_response(None, PARSE_ERROR, f"parse error: {exc}"))
        response = self.handle(payload)
        if response is None:
            return ""
        return json.dumps(response, default=str)

    # -- convenience -------------------------------------------------------------

    def call(self, method: str, /, *params: Any, **named: Any) -> Any:
        """In-process convenience: dispatch one call, returning the raw result.

        Raises :class:`JsonRpcError` on failure -- used by the gateway's own
        tests; SDK users go through :class:`repro.rpc.client.MarketplaceClient`,
        which rehydrates library exceptions.
        """
        if params and named:
            raise ValueError("pass positional or named params, not both")
        request = RpcRequest(
            method=method,
            params=(dict(named) if named else list(params)),
            request_id=0,
        )
        return self._run(request)
