"""JSON-RPC 2.0 envelopes: requests, responses and standard error codes.

This module is transport-agnostic and knows nothing about the marketplace:
it only validates/builds the wire shapes defined by the JSON-RPC 2.0
specification (single requests, batches, notifications) and defines the
error-code vocabulary the gateway speaks.

Error codes
-----------
========= ==================================================================
-32700    parse error (invalid JSON reached ``handle_raw``)
-32600    invalid request (envelope is not a well-formed request object)
-32601    method not found
-32602    invalid params (arity/name mismatch against the handler)
-32603    internal error (handler raised something unexpected)
-32000    server error (the repro library rejected the operation; the
          ``data.error_class`` member names the :class:`ReproError` subclass)
-32001    filter not found (unknown/uninstalled subscription filter id)
-32004    method not allowed (rejected by an allowlist middleware)
-32005    rate limited (rejected by a token-bucket middleware)
========= ==================================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Union

JSONRPC_VERSION = "2.0"

PARSE_ERROR = -32700
INVALID_REQUEST = -32600
METHOD_NOT_FOUND = -32601
INVALID_PARAMS = -32602
INTERNAL_ERROR = -32603
SERVER_ERROR = -32000
FILTER_NOT_FOUND = -32001
METHOD_NOT_ALLOWED = -32004
RATE_LIMITED = -32005

#: Default human-readable messages per code (the spec's recommended texts).
ERROR_MESSAGES: Dict[int, str] = {
    PARSE_ERROR: "Parse error",
    INVALID_REQUEST: "Invalid Request",
    METHOD_NOT_FOUND: "Method not found",
    INVALID_PARAMS: "Invalid params",
    INTERNAL_ERROR: "Internal error",
    SERVER_ERROR: "Server error",
    FILTER_NOT_FOUND: "Filter not found",
    METHOD_NOT_ALLOWED: "Method not allowed",
    RATE_LIMITED: "Rate limit exceeded",
}


class JsonRpcError(Exception):
    """Internal control-flow exception the gateway turns into an error envelope.

    Handlers and middleware raise it; :meth:`JsonRpcGateway.handle` catches it
    at the top of the dispatch pipeline and renders the error response.  It is
    deliberately *not* a :class:`~repro.errors.ReproError`: it never escapes
    the gateway.
    """

    def __init__(self, code: int, message: Optional[str] = None, data: Any = None) -> None:
        self.code = code
        self.message = message or ERROR_MESSAGES.get(code, "Server error")
        self.data = data
        super().__init__(f"[{self.code}] {self.message}")

    def to_error_object(self) -> Dict[str, Any]:
        """The ``error`` member of a JSON-RPC error response."""
        error: Dict[str, Any] = {"code": self.code, "message": self.message}
        if self.data is not None:
            error["data"] = self.data
        return error


@dataclass
class RpcRequest:
    """A validated JSON-RPC request (one entry of a batch, or a single call)."""

    method: str
    params: Union[List[Any], Dict[str, Any], None] = None
    request_id: Any = None
    is_notification: bool = False

    def positional(self) -> List[Any]:
        """Params as a positional list (empty for omitted params)."""
        if self.params is None:
            return []
        if isinstance(self.params, list):
            return list(self.params)
        return []

    def named(self) -> Dict[str, Any]:
        """Params as a by-name mapping (empty unless params is an object)."""
        if isinstance(self.params, dict):
            return dict(self.params)
        return {}

    def to_dict(self) -> Dict[str, Any]:
        """Render back into a request envelope."""
        envelope: Dict[str, Any] = {"jsonrpc": JSONRPC_VERSION, "method": self.method}
        if self.params is not None:
            envelope["params"] = self.params
        if not self.is_notification:
            envelope["id"] = self.request_id
        return envelope


def make_request(method: str, params: Union[List[Any], Dict[str, Any], None] = None,
                 request_id: Any = 1) -> Dict[str, Any]:
    """Build a request envelope (what a client puts on the wire)."""
    envelope: Dict[str, Any] = {"jsonrpc": JSONRPC_VERSION, "method": method, "id": request_id}
    if params is not None:
        envelope["params"] = params
    return envelope


def parse_request(payload: Any) -> RpcRequest:
    """Validate one request envelope.

    Raises
    ------
    JsonRpcError
        With :data:`INVALID_REQUEST` when the envelope is malformed.
    """
    if not isinstance(payload, dict):
        raise JsonRpcError(INVALID_REQUEST, "request must be an object")
    if payload.get("jsonrpc") != JSONRPC_VERSION:
        raise JsonRpcError(INVALID_REQUEST, 'request must declare "jsonrpc": "2.0"')
    method = payload.get("method")
    if not isinstance(method, str) or not method:
        raise JsonRpcError(INVALID_REQUEST, "method must be a non-empty string")
    params = payload.get("params")
    if params is not None and not isinstance(params, (list, dict)):
        raise JsonRpcError(INVALID_REQUEST, "params must be an array or an object")
    request_id = payload.get("id")
    if request_id is not None and not isinstance(request_id, (str, int, float)):
        raise JsonRpcError(INVALID_REQUEST, "id must be a string or a number")
    return RpcRequest(
        method=method,
        params=params,
        request_id=request_id,
        is_notification="id" not in payload,
    )


def success_response(request_id: Any, result: Any) -> Dict[str, Any]:
    """Build a success envelope."""
    return {"jsonrpc": JSONRPC_VERSION, "id": request_id, "result": result}


def error_response(request_id: Any, code: int, message: Optional[str] = None,
                   data: Any = None) -> Dict[str, Any]:
    """Build an error envelope (``id`` is null for undecodable requests)."""
    return {
        "jsonrpc": JSONRPC_VERSION,
        "id": request_id,
        "error": JsonRpcError(code, message, data).to_error_object(),
    }


# -- quantity encoding (the eth_* hex-number convention) ----------------------


def to_quantity(value: int) -> str:
    """Encode an integer as an ``0x``-prefixed hex quantity."""
    return hex(int(value))


def from_quantity(value: Union[str, int]) -> int:
    """Decode an ``0x`` hex quantity (integers pass through for convenience)."""
    if isinstance(value, int):
        return value
    if not isinstance(value, str) or not value.startswith(("0x", "0X")):
        raise ValueError(f"not a hex quantity: {value!r}")
    return int(value, 16)
