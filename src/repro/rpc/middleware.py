"""Gateway middleware: request metrics, token-bucket rate limiting, allowlists.

A middleware is any callable ``(request, call_next) -> result`` where
``call_next(request)`` invokes the rest of the chain.  Middleware may raise
:class:`~repro.rpc.protocol.JsonRpcError` to reject a request; the gateway
renders it as an error envelope.  The chain runs outermost-first in the order
the gateway was configured with.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Dict, Iterable, List, Optional

from repro.rpc.protocol import (
    JsonRpcError,
    METHOD_NOT_ALLOWED,
    RATE_LIMITED,
    RpcRequest,
)

CallNext = Callable[[RpcRequest], Any]

#: Latency histogram bucket upper bounds in milliseconds (last bucket: +inf).
#: Bounds are ``le``-**inclusive**, matching the Prometheus convention: an
#: observation exactly on a bound lands in that bound's bucket (0.5 ms counts
#: toward the 0.5 bucket, not the 1.0 one).  Pinned by
#: ``tests/rpc/test_histogram_buckets.py``; ``repro.obs`` re-exposes these
#: buckets in seconds with the counts carried over verbatim, which is only
#: correct because both sides share this inclusive semantics.
LATENCY_BUCKETS_MS = (0.1, 0.5, 1.0, 5.0, 10.0, 50.0, 100.0, 500.0, 1000.0)


class RequestMetrics:
    """Counts requests per method and error code, and histograms latency.

    Latency is wall-clock handler time (``time.perf_counter``), not simulated
    time -- it measures the gateway's own cost, which is what the RPC
    benchmarks track.

    Counters mutate on whatever thread dispatches requests, while
    ``GET /metrics`` renders snapshots from the registry's collector --
    potentially another thread.  Every mutation and every read of the
    per-method/per-code dicts therefore holds :attr:`lock`; without it a
    dict resize mid-iteration blows up the render (and counts tear).
    """

    def __init__(self) -> None:
        #: Guards every counter against concurrent snapshot/render reads.
        self.lock = threading.Lock()
        self.requests_total = 0
        self.errors_total = 0
        self.by_method: Dict[str, int] = {}
        self.errors_by_code: Dict[int, int] = {}
        self.latency_bucket_counts: List[int] = [0] * (len(LATENCY_BUCKETS_MS) + 1)
        self.latency_total_ms = 0.0
        #: Named gauge callbacks sampled into every :meth:`snapshot` -- e.g.
        #: the storage engine's cache hit/miss counters.  Each callback
        #: returns a JSON-safe dict.
        self._gauges: Dict[str, Callable[[], Dict[str, Any]]] = {}

    def attach_gauge(self, name: str, sample: Callable[[], Dict[str, Any]]) -> None:
        """Register a gauge; its sample appears under ``name`` in snapshots."""
        self._gauges[name] = sample

    def __call__(self, request: RpcRequest, call_next: CallNext) -> Any:
        with self.lock:
            self.requests_total += 1
            self.by_method[request.method] = self.by_method.get(request.method, 0) + 1
        started = time.perf_counter()
        try:
            return call_next(request)
        except JsonRpcError as exc:
            with self.lock:
                self.errors_total += 1
                self.errors_by_code[exc.code] = self.errors_by_code.get(exc.code, 0) + 1
            raise
        finally:
            self._observe((time.perf_counter() - started) * 1000.0)

    def _observe(self, elapsed_ms: float) -> None:
        """Record one request duration in its ``le``-inclusive bucket."""
        with self.lock:
            self.latency_total_ms += elapsed_ms
            for index, bound in enumerate(LATENCY_BUCKETS_MS):
                if elapsed_ms <= bound:
                    self.latency_bucket_counts[index] += 1
                    return
            self.latency_bucket_counts[-1] += 1

    @property
    def mean_latency_ms(self) -> float:
        """Average handler latency in milliseconds."""
        with self.lock:
            if self.requests_total == 0:
                return 0.0
            return self.latency_total_ms / self.requests_total

    def top_methods(self, count: int = 5) -> List[Any]:
        """The ``count`` most-called methods as (method, calls) pairs."""
        with self.lock:
            ranked = sorted(self.by_method.items(),
                            key=lambda item: (-item[1], item[0]))
        return ranked[:count]

    def snapshot(self, include_latency: bool = True) -> Dict[str, Any]:
        """JSON-friendly metrics dump.

        Scenario reports pass ``include_latency=False``: request counts are
        deterministic across runs, wall-clock latencies are not.
        """
        with self.lock:
            counters: Dict[str, Any] = {
                "requests_total": self.requests_total,
                "errors_total": self.errors_total,
                "by_method": dict(sorted(self.by_method.items())),
                "errors_by_code": {str(code): n for code, n in sorted(self.errors_by_code.items())},
            }
            if include_latency:
                # Inline mean: the property re-takes the (non-reentrant) lock.
                mean = (self.latency_total_ms / self.requests_total
                        if self.requests_total else 0.0)
                counters["mean_latency_ms"] = round(mean, 4)
                counters["latency_histogram_ms"] = {
                    **{str(bound): count
                       for bound, count in zip(LATENCY_BUCKETS_MS, self.latency_bucket_counts)},
                    "+inf": self.latency_bucket_counts[-1],
                }
        for name, sample in sorted(self._gauges.items()):
            counters[name] = sample()
        return counters


class TokenBucketRateLimiter:
    """Classic token bucket: ``rate`` tokens/second refill up to ``capacity``.

    The time source defaults to ``time.monotonic``; pass the simulated
    clock's ``now`` (e.g. ``lambda: clock.now``) to rate-limit in simulated
    time, which keeps scenario runs deterministic.
    """

    def __init__(
        self,
        rate: float,
        capacity: Optional[float] = None,
        time_fn: Optional[Callable[[], float]] = None,
    ) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        self.rate = float(rate)
        # Sub-1 rates are legal slow-refill limiters; the bucket still needs
        # room for one whole token or no request could ever pass.
        self.capacity = float(capacity) if capacity is not None else max(float(rate), 1.0)
        if self.capacity < 1.0:
            raise ValueError(f"capacity must allow at least one request, got {self.capacity}")
        self._time_fn = time_fn or time.monotonic
        self._tokens = self.capacity
        self._last_refill = self._time_fn()
        self.rejected_total = 0

    def _refill(self) -> None:
        now = self._time_fn()
        elapsed = max(0.0, now - self._last_refill)
        self._last_refill = now
        self._tokens = min(self.capacity, self._tokens + elapsed * self.rate)

    def __call__(self, request: RpcRequest, call_next: CallNext) -> Any:
        self._refill()
        if self._tokens < 1.0:
            self.rejected_total += 1
            raise JsonRpcError(
                RATE_LIMITED,
                f"rate limit exceeded ({self.rate:g} requests/second)",
                data={"method": request.method},
            )
        self._tokens -= 1.0
        return call_next(request)


class MethodAllowlist:
    """Rejects any method not matching the allowlist.

    Entries are exact method names (``"eth_getBalance"``) or namespace
    wildcards (``"eth_*"``).
    """

    def __init__(self, allowed: Iterable[str]) -> None:
        self._exact = {entry for entry in allowed if not entry.endswith("*")}
        self._prefixes = tuple(entry[:-1] for entry in allowed if entry.endswith("*"))
        self.rejected_total = 0

    def permits(self, method: str) -> bool:
        """Whether ``method`` passes the allowlist."""
        if method in self._exact:
            return True
        return bool(self._prefixes) and method.startswith(self._prefixes)

    def __call__(self, request: RpcRequest, call_next: CallNext) -> Any:
        if not self.permits(request.method):
            self.rejected_total += 1
            raise JsonRpcError(
                METHOD_NOT_ALLOWED,
                f"method {request.method} is not allowed on this endpoint",
            )
        return call_next(request)
