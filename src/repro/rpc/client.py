"""The unified ``MarketplaceClient`` SDK over the JSON-RPC gateway.

One client object fronts the whole stack through typed sub-clients::

    client = MarketplaceClient.for_stack(node=node, swarm=swarm, backend=backend)
    client.eth.get_balance(address)          # -> int
    client.ipfs.add(payload_bytes)           # -> {"cid", "size", "num_blocks"}
    client.oflw3.deploy_task(spec, budget)   # -> backend route response

Every call is a real JSON-RPC envelope through the gateway (so middleware,
metrics and allowlists all apply); error envelopes are rehydrated back into
the :class:`~repro.errors.ReproError` subclass named by ``data.error_class``,
which keeps exception-level compatibility with the direct-call era.  Batches
amortize dispatch overhead::

    with client.batch() as batch:
        balance = batch.add("eth_getBalance", address)
        height = batch.add("eth_blockNumber")
    balance.result(), height.result()
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Union

import repro.errors as repro_errors
from repro.errors import ReproError, RpcError, RateLimitError, UnknownTransactionError
from repro.chain.events import EventLog, LogFilter, LogPage
from repro.chain.node import EthereumNode
from repro.chain.receipts import TransactionReceipt
from repro.chain.transaction import Transaction, encode_call
from repro.ipfs.node import IpfsNode
from repro.ipfs.swarm import Swarm
from repro.rpc.gateway import JsonRpcGateway
from repro.rpc.protocol import RATE_LIMITED, from_quantity, make_request
from repro.utils.encoding import from_hex, to_hex


def _rehydrate_error(error: Dict[str, Any]) -> ReproError:
    """Turn an error envelope back into the richest exception available."""
    code = int(error.get("code", -32000))
    message = str(error.get("message", "RPC error"))
    data = error.get("data")
    error_class = data.get("error_class") if isinstance(data, dict) else None
    if error_class:
        candidate = getattr(repro_errors, error_class, None)
        if isinstance(candidate, type) and issubclass(candidate, ReproError):
            try:
                return candidate(message)
            except TypeError:
                pass  # unusual constructor; fall through to the generic error
    if code == RATE_LIMITED:
        return RateLimitError(message, code=code, data=data)
    return RpcError(message, code=code, data=data)


class BatchCall:
    """Handle for one call inside a batch; resolves after ``execute()``."""

    def __init__(self, method: str) -> None:
        self.method = method
        self._resolved = False
        self._result: Any = None
        self._error: Optional[ReproError] = None

    def _resolve(self, result: Any = None, error: Optional[ReproError] = None) -> None:
        self._resolved = True
        self._result = result
        self._error = error

    @property
    def error(self) -> Optional[ReproError]:
        """The call's rehydrated error, if it failed."""
        return self._error

    def result(self) -> Any:
        """The call's result; raises its rehydrated error if it failed."""
        if not self._resolved:
            raise RpcError(f"batch containing {self.method} has not been executed")
        if self._error is not None:
            raise self._error
        return self._result


class RpcBatch:
    """Collects calls and sends them as one JSON-RPC batch envelope."""

    def __init__(self, client: "MarketplaceClient") -> None:
        self._client = client
        self._calls: List[BatchCall] = []
        self._envelopes: List[Dict[str, Any]] = []

    def __len__(self) -> int:
        return len(self._calls)

    def add(self, method: str, /, *params: Any, **named: Any) -> BatchCall:
        """Queue one call; returns its handle."""
        if params and named:
            raise ValueError("pass positional or named params, not both")
        call = BatchCall(method)
        self._calls.append(call)
        self._envelopes.append(
            make_request(method, dict(named) if named else list(params),
                         request_id=len(self._calls) - 1)
        )
        return call

    def execute(self) -> List[BatchCall]:
        """Send the batch; resolve every handle (errors stay lazy)."""
        if not self._calls:
            return []
        responses = self._client.gateway.handle(list(self._envelopes))
        by_id: Dict[Any, Dict[str, Any]] = {
            response.get("id"): response for response in (responses or [])
        }
        for index, call in enumerate(self._calls):
            response = by_id.get(index)
            if response is None:
                call._resolve(error=RpcError(f"no response for batch entry {index}"))
            elif "error" in response:
                call._resolve(error=_rehydrate_error(response["error"]))
            else:
                call._resolve(result=response.get("result"))
        return list(self._calls)

    def __enter__(self) -> "RpcBatch":
        return self

    def __exit__(self, exc_type, _exc, _tb) -> bool:
        if exc_type is None:
            self.execute()
        return False


class EthClient:
    """Typed ``eth_*`` sub-client (decodes hex quantities, rebuilds objects)."""

    def __init__(self, client: "MarketplaceClient") -> None:
        self._client = client

    # -- metadata / accounts -------------------------------------------------

    @property
    def chain_id(self) -> int:
        return from_quantity(self._client.call("eth_chainId"))

    @property
    def block_number(self) -> int:
        return from_quantity(self._client.call("eth_blockNumber"))

    def get_balance(self, address: str, block: Union[str, int] = "latest") -> int:
        return from_quantity(self._client.call("eth_getBalance", address, block))

    def get_transaction_count(self, address: str, block: Union[str, int] = "latest") -> int:
        return from_quantity(self._client.call("eth_getTransactionCount", address, block))

    def is_contract(self, address: str) -> bool:
        return bool(self._client.call("eth_getCode", address))

    # -- transactions ---------------------------------------------------------

    def send_raw_transaction(self, raw: str) -> str:
        return self._client.call("eth_sendRawTransaction", raw)

    def send_transaction(self, tx: Transaction) -> str:
        """Serialize a signed transaction and broadcast it."""
        return self.send_raw_transaction(tx.serialize_raw())

    def get_transaction(self, tx_hash: str) -> Transaction:
        return Transaction.from_dict(self._client.call("eth_getTransactionByHash", tx_hash))

    def get_receipt(self, tx_hash: str) -> Optional[TransactionReceipt]:
        """The transaction's receipt, or ``None`` while it is unmined."""
        payload = self._client.call("eth_getTransactionReceipt", tx_hash)
        if payload is None:
            return None
        return TransactionReceipt.from_dict(payload)

    def wait_for_receipt(self, tx_hash: str, max_blocks: int = 25) -> TransactionReceipt:
        """Poll for the receipt, mining a block per empty poll.

        Mirrors :meth:`EthereumNode.wait_for_receipt` call for call (check,
        then mine), so the submit-then-wait rhythm -- and with it the Fig. 7
        latency attribution -- is identical through the gateway.
        """
        for _ in range(max_blocks):
            receipt = self.get_receipt(tx_hash)
            if receipt is not None:
                return receipt
            self.mine(1)
        receipt = self.get_receipt(tx_hash)
        if receipt is not None:
            return receipt
        raise UnknownTransactionError(
            f"transaction {tx_hash} not included after {max_blocks} blocks"
        )

    def mine(self, blocks: int = 1) -> List[str]:
        """Explicitly mine blocks (the ``evm_mine`` dev extension)."""
        return self._client.call("evm_mine", blocks)

    # -- calls / estimation ----------------------------------------------------

    def call(self, contract_address: str, method: str,
             args: Optional[List[Any]] = None, caller: Optional[str] = None) -> Any:
        """Read-only contract call (``eth_call``); free of gas fees."""
        call_object: Dict[str, Any] = {
            "to": str(contract_address),
            "data": to_hex(encode_call(method, args or [])),
        }
        if caller is not None:
            call_object["from"] = str(caller)
        return self._client.call("eth_call", call_object)

    def estimate_gas(self, tx: Transaction) -> int:
        return from_quantity(self._client.call("eth_estimateGas", tx.to_dict()))

    # -- blocks / logs -----------------------------------------------------------

    def get_block(self, block: Union[str, int] = "latest",
                  full_transactions: bool = False) -> Dict[str, Any]:
        return self._client.call("eth_getBlockByNumber", block, full_transactions)

    def get_logs(self, log_filter: Optional[LogFilter] = None,
                 limit: Optional[int] = None,
                 cursor: Optional[str] = None) -> Union[List[EventLog], LogPage]:
        """Query logs; with ``limit``/``cursor`` returns a :class:`LogPage`."""
        criteria = _criteria_from_filter(log_filter)
        if limit is None and cursor is None:
            payload = self._client.call("eth_getLogs", criteria)
            return [EventLog.from_dict(entry) for entry in payload]
        if limit is not None:
            criteria["limit"] = limit
        if cursor is not None:
            criteria["cursor"] = cursor
        payload = self._client.call("eth_getLogs", criteria)
        return LogPage(
            logs=[EventLog.from_dict(entry) for entry in payload["logs"]],
            next_cursor=payload.get("next_cursor"),
        )

    # -- filters -------------------------------------------------------------------

    def new_block_filter(self) -> str:
        return self._client.call("eth_newBlockFilter")

    def new_pending_transaction_filter(self) -> str:
        return self._client.call("eth_newPendingTransactionFilter")

    def new_log_filter(self, log_filter: Optional[LogFilter] = None) -> str:
        return self._client.call("eth_newFilter", _criteria_from_filter(log_filter))

    def get_filter_changes(self, filter_id: str) -> List[Any]:
        return self._client.call("eth_getFilterChanges", filter_id)

    def get_filter_logs(self, filter_id: str) -> List[EventLog]:
        payload = self._client.call("eth_getFilterLogs", filter_id)
        return [EventLog.from_dict(entry) for entry in payload]

    def uninstall_filter(self, filter_id: str) -> bool:
        return self._client.call("eth_uninstallFilter", filter_id)


def _criteria_from_filter(log_filter: Optional[LogFilter]) -> Dict[str, Any]:
    """Render a :class:`LogFilter` into ``eth_getLogs`` criteria."""
    if log_filter is None:
        return {}
    criteria: Dict[str, Any] = {}
    if log_filter.address is not None:
        criteria["address"] = str(log_filter.address)
    if log_filter.event_name is not None:
        criteria["event"] = log_filter.event_name
    if log_filter.from_block:
        criteria["from_block"] = log_filter.from_block
    if log_filter.to_block is not None:
        criteria["to_block"] = log_filter.to_block
    if log_filter.arg_filters:
        criteria["arg_filters"] = dict(log_filter.arg_filters)
    return criteria


class IpfsClient:
    """Typed ``ipfs_*`` sub-client bound to a default node."""

    def __init__(self, client: "MarketplaceClient", default_node: Optional[str] = None) -> None:
        self._client = client
        self.default_node = default_node

    def _node(self, node: Optional[str]) -> Optional[str]:
        return node if node is not None else self.default_node

    def add(self, payload: bytes, node: Optional[str] = None,
            pin: bool = True) -> Dict[str, Any]:
        """Add bytes; returns ``{"cid", "size", "num_blocks"}``."""
        return self._client.call(
            "ipfs_add", to_hex(bytes(payload)), self._node(node), pin
        )

    def cat(self, cid: str, node: Optional[str] = None) -> bytes:
        return from_hex(self._client.call("ipfs_cat", cid, self._node(node)))

    def pin(self, cid: str, node: Optional[str] = None) -> Dict[str, Any]:
        return self._client.call("ipfs_pin", cid, self._node(node))

    def stat(self, cid: str, node: Optional[str] = None) -> Dict[str, Any]:
        return self._client.call("ipfs_stat", cid, self._node(node))


class Oflw3Client:
    """Typed ``oflw3_*`` sub-client bound to a default buyer backend."""

    def __init__(self, client: "MarketplaceClient",
                 default_backend: Optional[str] = None) -> None:
        self._client = client
        self.default_backend = default_backend

    def _call(self, rpc_method: str, /, **named: Any) -> Any:
        if self.default_backend is not None and "backend" not in named:
            named["backend"] = self.default_backend
        return self._client.call(rpc_method, **named)

    def health(self) -> Dict[str, Any]:
        return self._call("oflw3_health")

    def deploy_task(self, spec: Dict[str, Any], budget_wei: int) -> Dict[str, Any]:
        return self._call("oflw3_deployTask", spec=spec, budget_wei=budget_wei)

    def task(self, address: str) -> Dict[str, Any]:
        return self._call("oflw3_task", address=address)

    def task_cids(self, address: str) -> Dict[str, Any]:
        return self._call("oflw3_taskCids", address=address)

    def retrieve_models(self, address: str,
                        num_samples: Optional[Dict[str, int]] = None) -> Dict[str, Any]:
        return self._call("oflw3_retrieveModels", address=address,
                          num_samples=num_samples or {})

    def aggregate(self, address: str, algorithm: Optional[str] = None) -> Dict[str, Any]:
        return self._call("oflw3_aggregate", address=address, algorithm=algorithm)

    def compute_incentives(self, address: str, method: str = "leave_one_out",
                           **options: Any) -> Dict[str, Any]:
        return self._call("oflw3_computeIncentives", address=address,
                          method=method, options=options)

    def pay_owners(self, address: str, reserve_fraction: float = 0.0,
                   min_payment_wei: int = 0) -> Dict[str, Any]:
        return self._call("oflw3_payOwners", address=address,
                          reserve_fraction=reserve_fraction,
                          min_payment_wei=min_payment_wei)

    def report(self, address: str) -> Dict[str, Any]:
        return self._call("oflw3_report", address=address)


class MarketplaceClient:
    """The one SDK object every marketplace actor holds."""

    def __init__(
        self,
        gateway: JsonRpcGateway,
        default_ipfs_node: Optional[str] = None,
        default_backend: Optional[str] = None,
    ) -> None:
        self.gateway = gateway
        self.eth = EthClient(self)
        self.ipfs = IpfsClient(self, default_node=default_ipfs_node)
        self.oflw3 = Oflw3Client(self, default_backend=default_backend)
        self._next_id = 0

    # -- construction -----------------------------------------------------------

    @classmethod
    def for_node(cls, node: EthereumNode, **gateway_kwargs: Any) -> "MarketplaceClient":
        """A client over a fresh gateway serving just the chain node."""
        return cls(JsonRpcGateway(node=node, **gateway_kwargs))

    @classmethod
    def for_stack(
        cls,
        node: Optional[EthereumNode] = None,
        swarm: Optional[Swarm] = None,
        ipfs: Optional[IpfsNode] = None,
        backend: Optional[Any] = None,
        **gateway_kwargs: Any,
    ) -> "MarketplaceClient":
        """A client over a fresh gateway serving any subset of the stack."""
        gateway = JsonRpcGateway(node=node, swarm=swarm, ipfs=ipfs, **gateway_kwargs)
        default_backend = gateway.serve_backend(backend) if backend is not None else None
        return cls(
            gateway,
            default_ipfs_node=ipfs.name if ipfs is not None else None,
            default_backend=default_backend,
        )

    def bound_to_ipfs(self, node: IpfsNode) -> "MarketplaceClient":
        """Share this gateway, defaulting IPFS calls to ``node``."""
        self.gateway.serve_ipfs_node(node)
        return MarketplaceClient(
            self.gateway,
            default_ipfs_node=node.name,
            default_backend=self.oflw3.default_backend,
        )

    def bound_to_backend(self, backend: Any) -> "MarketplaceClient":
        """Share this gateway, defaulting ``oflw3_*`` calls to ``backend``."""
        key = self.gateway.serve_backend(backend)
        return MarketplaceClient(
            self.gateway,
            default_ipfs_node=self.ipfs.default_node,
            default_backend=key,
        )

    # -- transport ---------------------------------------------------------------

    def call(self, method: str, /, *params: Any, **named: Any) -> Any:
        """Send one JSON-RPC request; return the result or raise."""
        if params and named:
            raise ValueError("pass positional or named params, not both")
        self._next_id += 1
        envelope = make_request(
            method, dict(named) if named else list(params), request_id=self._next_id
        )
        response = self.gateway.handle(envelope)
        if response is None:  # pragma: no cover - requests always carry ids
            raise RpcError(f"no response for {method}")
        if "error" in response:
            raise _rehydrate_error(response["error"])
        return response.get("result")

    def batch(self) -> RpcBatch:
        """Start a batch; use as a context manager or call ``execute()``."""
        return RpcBatch(self)

    def methods(self) -> List[str]:
        """Every method the gateway serves (for discovery/CLI)."""
        return self.gateway.methods()
