"""The versioned JSON-RPC boundary of the reproduction (``repro.rpc``).

The paper's real deployment talks to Ethereum through a JSON-RPC endpoint
(MetaMask/web3 -> node) and to the buyer's Flask service through REST.  This
package makes that boundary explicit and singular: a transport-agnostic
JSON-RPC 2.0 gateway with namespaced method registries (``eth_*``,
``ipfs_*``, ``oflw3_*``), batch requests, polling subscription filters and a
middleware chain (metrics, rate limiting, allowlists) -- plus the
:class:`MarketplaceClient` SDK that every higher layer (wallet, DApp
facades, backend, CLI, simnet) routes its stack access through.

Having one metered door is the architectural seam that future sharding,
caching and async work plugs into.
"""

from repro.rpc.client import BatchCall, EthClient, IpfsClient, MarketplaceClient, Oflw3Client, RpcBatch
from repro.rpc.filters import FilterManager
from repro.rpc.gateway import JsonRpcGateway
from repro.rpc.middleware import MethodAllowlist, RequestMetrics, TokenBucketRateLimiter
from repro.rpc.protocol import (
    INTERNAL_ERROR,
    INVALID_PARAMS,
    INVALID_REQUEST,
    JsonRpcError,
    METHOD_NOT_ALLOWED,
    METHOD_NOT_FOUND,
    PARSE_ERROR,
    RATE_LIMITED,
    SERVER_ERROR,
    RpcRequest,
    from_quantity,
    make_request,
    to_quantity,
)

__all__ = [
    "BatchCall",
    "EthClient",
    "FilterManager",
    "IpfsClient",
    "JsonRpcError",
    "JsonRpcGateway",
    "MarketplaceClient",
    "MethodAllowlist",
    "Oflw3Client",
    "RequestMetrics",
    "RpcBatch",
    "RpcRequest",
    "TokenBucketRateLimiter",
    "from_quantity",
    "make_request",
    "to_quantity",
    "PARSE_ERROR",
    "INVALID_REQUEST",
    "METHOD_NOT_FOUND",
    "INVALID_PARAMS",
    "INTERNAL_ERROR",
    "SERVER_ERROR",
    "METHOD_NOT_ALLOWED",
    "RATE_LIMITED",
]
