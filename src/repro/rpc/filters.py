"""Polling-based subscription filters (``eth_newFilter`` and friends).

A real web3 client watches the chain by installing a filter and polling
``eth_getFilterChanges``.  The manager reproduces that surface over the
simulated node:

* **block filters** report the hashes of blocks mined since the last poll;
* **pending-transaction filters** report transaction hashes that entered the
  mempool since the last poll (via the mempool's append-only journal);
* **log filters** report new event logs matching a :class:`LogFilter`,
  riding the chain's append-only log cursor so polls never rescan history.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.chain.events import LogFilter
from repro.chain.node import EthereumNode
from repro.rpc.protocol import FILTER_NOT_FOUND, JsonRpcError


@dataclass
class _InstalledFilter:
    """One live filter: its kind, poll cursor and (for logs) criteria."""

    kind: str  # "block" | "pending" | "log"
    cursor: int
    criteria: Optional[LogFilter] = None


# -- shared poll cores --------------------------------------------------------
#
# Both the polling filters here and the push subscriptions in
# ``repro.net.subscriptions`` advance the SAME cursors through these three
# functions, so an ``eth_subscribe`` stream is byte-identical to what
# ``eth_getFilterChanges`` would have returned over the same window --
# including across fork-choice reorgs -- by construction, not by test luck.


def poll_new_blocks(node: EthereumNode, cursor: int) -> tuple:
    """Hashes of canonical blocks past ``cursor``; returns (hashes, tip)."""
    tip = node.block_number
    hashes = [node.get_block(number).hash for number in range(cursor + 1, tip + 1)]
    return hashes, tip


def poll_pending_transactions(node: EthereumNode, cursor: int) -> tuple:
    """Mempool-journal hashes past ``cursor``; returns (hashes, new_cursor)."""
    journal = node.chain.mempool.added_journal
    return list(journal[cursor:]), len(journal)


def poll_new_logs(node: EthereumNode, cursor: int,
                  criteria: Optional[LogFilter]) -> tuple:
    """Log dicts past the append-only log ``cursor``; returns (logs, cursor)."""
    page = node.get_logs_page(criteria, cursor=str(cursor))
    return [log.to_dict() for log in page.logs], node.chain.log_count


class FilterManager:
    """Installs, polls and uninstalls filters over one node."""

    def __init__(self, node: EthereumNode) -> None:
        self.node = node
        self._filters: Dict[str, _InstalledFilter] = {}
        self._next_id = 1

    def __len__(self) -> int:
        return len(self._filters)

    def _install(self, entry: _InstalledFilter) -> str:
        filter_id = hex(self._next_id)
        self._next_id += 1
        self._filters[filter_id] = entry
        return filter_id

    def _lookup(self, filter_id: str) -> _InstalledFilter:
        entry = self._filters.get(filter_id)
        if entry is None:
            raise JsonRpcError(FILTER_NOT_FOUND, f"filter {filter_id} not found")
        return entry

    # -- installation --------------------------------------------------------

    def new_block_filter(self) -> str:
        """Watch for newly mined blocks from the current tip."""
        return self._install(_InstalledFilter(kind="block", cursor=self.node.block_number))

    def new_pending_transaction_filter(self) -> str:
        """Watch for transactions entering the mempool from now on."""
        journal = self.node.chain.mempool.added_journal
        return self._install(_InstalledFilter(kind="pending", cursor=len(journal)))

    def new_log_filter(self, criteria: Optional[LogFilter] = None) -> str:
        """Watch for new event logs matching ``criteria`` from now on."""
        return self._install(
            _InstalledFilter(kind="log", cursor=self.node.chain.log_count, criteria=criteria)
        )

    # -- polling -------------------------------------------------------------

    def changes(self, filter_id: str) -> List[Any]:
        """Everything new since the last poll of ``filter_id``."""
        entry = self._lookup(filter_id)
        if entry.kind == "block":
            hashes, entry.cursor = poll_new_blocks(self.node, entry.cursor)
            return hashes
        if entry.kind == "pending":
            new_hashes, entry.cursor = poll_pending_transactions(
                self.node, entry.cursor)
            return new_hashes
        logs, entry.cursor = poll_new_logs(self.node, entry.cursor, entry.criteria)
        return logs

    def logs(self, filter_id: str) -> List[Dict[str, Any]]:
        """All logs matching a log filter's criteria (``eth_getFilterLogs``)."""
        entry = self._lookup(filter_id)
        if entry.kind != "log":
            raise JsonRpcError(
                FILTER_NOT_FOUND, f"filter {filter_id} is not a log filter"
            )
        return [log.to_dict() for log in self.node.get_logs(entry.criteria)]

    # -- teardown ------------------------------------------------------------

    def uninstall(self, filter_id: str) -> bool:
        """Remove a filter; returns whether it existed."""
        return self._filters.pop(filter_id, None) is not None
