"""Namespaced method registries the gateway serves.

Three namespaces mirror the three backends of the paper's deployment:

* ``eth_*`` (plus the dev-chain ``evm_mine``) over an
  :class:`~repro.chain.node.EthereumNode` -- the MetaMask/web3-to-node
  boundary.  Quantities are hex-encoded (``"0x..."``) as on real endpoints;
  call results and receipts stay JSON-native because the simulated chain's
  ABI is canonical JSON rather than packed bytes.
* ``ipfs_*`` over one or many :class:`~repro.ipfs.node.IpfsNode` instances
  (optionally resolved through a :class:`~repro.ipfs.swarm.Swarm`), the
  analogue of the IPFS HTTP API.  Payloads travel hex-encoded.
* ``oflw3_*`` wrapping the buyer backend's REST routes, so the DApp's
  application calls go through the same metered front door.

Every handler either returns a JSON-serializable value or raises; the
gateway translates :class:`~repro.errors.ReproError` subclasses into
``-32000`` responses whose ``data.error_class`` names the original type, so
in-process clients can rehydrate the exact exception.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Union

from repro.chain.account import Address
from repro.chain.events import LogFilter
from repro.chain.node import EthereumNode
from repro.chain.transaction import Transaction, decode_payload
from repro.ipfs.node import IpfsNode
from repro.ipfs.swarm import Swarm
from repro.rpc.filters import FilterManager
from repro.rpc.protocol import (
    INVALID_PARAMS,
    JsonRpcError,
    METHOD_NOT_ALLOWED,
    SERVER_ERROR,
    to_quantity,
)
from repro.utils.encoding import from_hex, to_hex

MethodTable = Dict[str, Callable[..., Any]]


# ---------------------------------------------------------------------------
# eth_* -- the chain namespace
# ---------------------------------------------------------------------------


def _parse_block_tag(node: EthereumNode, tag: Union[str, int, None]) -> int:
    """Resolve ``"latest"``/``"earliest"``/``"pending"``/number/hex to a height."""
    if tag is None or tag in ("latest", "pending", "safe", "finalized"):
        return node.block_number
    if tag == "earliest":
        return 0
    if isinstance(tag, int):
        return tag
    if isinstance(tag, str) and tag.startswith(("0x", "0X")):
        return int(tag, 16)
    raise JsonRpcError(INVALID_PARAMS, f"unknown block tag {tag!r}")


def _log_filter_from_params(criteria: Optional[Dict[str, Any]]) -> Optional[LogFilter]:
    """Build a :class:`LogFilter` from ``eth_getLogs``-style criteria."""
    if not criteria:
        return None
    if not isinstance(criteria, dict):
        raise JsonRpcError(INVALID_PARAMS, "log filter criteria must be an object")
    return LogFilter(
        address=Address(criteria["address"]) if criteria.get("address") else None,
        event_name=criteria.get("event"),
        from_block=int(criteria.get("from_block", 0)),
        to_block=(int(criteria["to_block"]) if criteria.get("to_block") is not None else None),
        arg_filters=dict(criteria.get("arg_filters", {})),
    )


class EthNamespace:
    """``eth_*`` handlers over one node, plus subscription filters."""

    def __init__(self, node: EthereumNode) -> None:
        self.node = node
        self.filters = FilterManager(node)

    # -- metadata / accounts -------------------------------------------------

    def chain_id(self) -> str:
        """Network chain id as a hex quantity (Sepolia: 0xaa36a7)."""
        return to_quantity(self.node.chain_id)

    def block_number(self) -> str:
        """Height of the latest block as a hex quantity."""
        return to_quantity(self.node.block_number)

    def get_balance(self, address: str, block: Union[str, int, None] = "latest") -> str:
        """Balance of ``address`` in wei, as a hex quantity."""
        _parse_block_tag(self.node, block)  # historical state is not kept
        return to_quantity(self.node.get_balance(address))

    def get_transaction_count(self, address: str,
                              block: Union[str, int, None] = "latest") -> str:
        """Nonce of ``address``; ``"pending"`` counts queued transactions."""
        if block == "pending":
            return to_quantity(self.node.pending_nonce(address))
        _parse_block_tag(self.node, block)
        return to_quantity(self.node.get_transaction_count(address))

    def get_code_presence(self, address: str) -> bool:
        """Whether a contract is deployed at ``address`` (``eth_getCode``-ish)."""
        return self.node.is_contract(address)

    # -- blocks / transactions -----------------------------------------------

    def get_block_by_number(self, block: Union[str, int, None] = "latest",
                            full_transactions: bool = False) -> Dict[str, Any]:
        """Block by number/tag; transactions as hashes or full objects."""
        resolved = self.node.get_block(_parse_block_tag(self.node, block))
        payload = resolved.to_dict()
        if not full_transactions:
            payload["transactions"] = [tx.hash_hex for tx in resolved.transactions]
        return payload

    def get_transaction_by_hash(self, tx_hash: str) -> Dict[str, Any]:
        """A pending or included transaction, as the node API renders it."""
        return self.node.get_transaction(tx_hash).to_dict()

    def get_transaction_receipt(self, tx_hash: str) -> Optional[Dict[str, Any]]:
        """Receipt of an included transaction (``None`` while pending)."""
        if not self.node.chain.has_receipt(tx_hash):
            return None
        return self.node.get_receipt(tx_hash).to_dict()

    def send_raw_transaction(self, raw: str) -> str:
        """Broadcast a hex-serialized signed transaction; returns its hash."""
        return self.node.send_transaction(Transaction.deserialize_raw(raw))

    # -- calls / estimation ---------------------------------------------------

    def call(self, call_object: Dict[str, Any],
             block: Union[str, int, None] = "latest") -> Any:
        """Gas-free read-only contract call (``{"to", "data", "from"}``)."""
        if not isinstance(call_object, dict) or not call_object.get("to"):
            raise JsonRpcError(INVALID_PARAMS, 'eth_call needs a call object with "to"')
        _parse_block_tag(self.node, block)
        payload = decode_payload(from_hex(call_object.get("data") or "0x"))
        method = payload.get("method")
        if not method:
            raise JsonRpcError(INVALID_PARAMS, "eth_call data does not encode a method call")
        return self.node.call(
            call_object["to"], method, payload.get("args", []),
            caller=call_object.get("from"),
        )

    def estimate_gas(self, transaction: Dict[str, Any]) -> str:
        """Estimated gas for a transaction object, as a hex quantity."""
        if not isinstance(transaction, dict):
            raise JsonRpcError(INVALID_PARAMS, "eth_estimateGas needs a transaction object")
        return to_quantity(self.node.estimate_gas(Transaction.from_dict(transaction)))

    # -- logs ------------------------------------------------------------------

    def get_logs(self, criteria: Optional[Dict[str, Any]] = None) -> Any:
        """Log query; with ``limit``/``cursor`` in the criteria it pages."""
        criteria = dict(criteria or {})
        limit = criteria.pop("limit", None)
        cursor = criteria.pop("cursor", None)
        log_filter = _log_filter_from_params(criteria)
        if limit is None and cursor is None:
            return [log.to_dict() for log in self.node.get_logs(log_filter)]
        try:
            page = self.node.get_logs_page(
                log_filter, limit=int(limit) if limit is not None else None,
                cursor=cursor,
            )
        except (TypeError, ValueError) as exc:
            # Bad limit/cursor values are the caller's mistake, not ours.
            raise JsonRpcError(INVALID_PARAMS, str(exc)) from None
        return page.to_dict()

    # -- filters ---------------------------------------------------------------

    def new_block_filter(self) -> str:
        """Install a filter that collects new block hashes; returns its id."""
        return self.filters.new_block_filter()

    def new_pending_transaction_filter(self) -> str:
        """Install a filter that collects pending transaction hashes."""
        return self.filters.new_pending_transaction_filter()

    def new_filter(self, criteria: Optional[Dict[str, Any]] = None) -> str:
        """Install a log filter over ``eth_getLogs``-style criteria."""
        return self.filters.new_log_filter(_log_filter_from_params(criteria))

    def get_filter_changes(self, filter_id: str) -> List[Any]:
        """Poll a filter: everything new since the previous poll."""
        return self.filters.changes(filter_id)

    def get_filter_logs(self, filter_id: str) -> List[Dict[str, Any]]:
        """All logs a log filter matches, from its installation block."""
        return self.filters.logs(filter_id)

    def uninstall_filter(self, filter_id: str) -> bool:
        """Remove a filter; returns whether it existed."""
        return self.filters.uninstall(filter_id)

    # -- push subscriptions ------------------------------------------------------
    #
    # Real subscriptions need a socket to push down; over plain HTTP these
    # two are documented stubs that point the caller at the ``/ws`` endpoint.
    # The WebSocket server intercepts both methods *before* gateway dispatch
    # and serves them from the connection's SubscriptionManager, so the
    # stubs only ever fire on a transport that cannot push.

    def subscribe(self, kind: str, criteria: Optional[Dict[str, Any]] = None) -> str:
        """Install a push subscription (``newHeads``, ``newPendingTransactions``
        or ``logs``).  WebSocket connections only -- see ``docs/networking.md``."""
        raise JsonRpcError(
            METHOD_NOT_ALLOWED,
            "eth_subscribe needs a connection to push notifications down; "
            "connect to the server's /ws WebSocket endpoint")

    def unsubscribe(self, subscription_id: str) -> bool:
        """Cancel a push subscription installed by ``eth_subscribe``.
        WebSocket connections only -- see ``docs/networking.md``."""
        raise JsonRpcError(
            METHOD_NOT_ALLOWED,
            "eth_unsubscribe needs the WebSocket connection that installed "
            "the subscription; connect to the server's /ws endpoint")

    # -- dev-chain extensions ---------------------------------------------------

    def evm_mine(self, blocks: int = 1) -> List[str]:
        """Explicitly mine ``blocks`` blocks (anvil/ganache-style helper)."""
        return [block.hash for block in self.node.mine(int(blocks))]

    def methods(self) -> MethodTable:
        """The method table this namespace contributes."""
        return {
            "eth_chainId": self.chain_id,
            "eth_blockNumber": self.block_number,
            "eth_getBalance": self.get_balance,
            "eth_getTransactionCount": self.get_transaction_count,
            "eth_getCode": self.get_code_presence,
            "eth_getBlockByNumber": self.get_block_by_number,
            "eth_getTransactionByHash": self.get_transaction_by_hash,
            "eth_getTransactionReceipt": self.get_transaction_receipt,
            "eth_sendRawTransaction": self.send_raw_transaction,
            "eth_call": self.call,
            "eth_estimateGas": self.estimate_gas,
            "eth_getLogs": self.get_logs,
            "eth_newBlockFilter": self.new_block_filter,
            "eth_newPendingTransactionFilter": self.new_pending_transaction_filter,
            "eth_newFilter": self.new_filter,
            "eth_getFilterChanges": self.get_filter_changes,
            "eth_getFilterLogs": self.get_filter_logs,
            "eth_uninstallFilter": self.uninstall_filter,
            "eth_subscribe": self.subscribe,
            "eth_unsubscribe": self.unsubscribe,
            "evm_mine": self.evm_mine,
        }


# ---------------------------------------------------------------------------
# ipfs_* -- the storage namespace
# ---------------------------------------------------------------------------


class IpfsNamespace:
    """``ipfs_*`` handlers over registered nodes and/or a swarm.

    Methods take an optional ``node`` parameter (node name or peer id); when
    omitted and exactly one node is known, that node serves the request --
    the single-daemon deployment of the paper's demo.
    """

    def __init__(self, swarm: Optional[Swarm] = None) -> None:
        self.swarm = swarm
        self._nodes: Dict[str, IpfsNode] = {}

    def register_node(self, node: IpfsNode) -> None:
        """Expose ``node`` through the namespace (idempotent, by name)."""
        self._nodes[node.name] = node

    def _resolve(self, node: Optional[str]) -> IpfsNode:
        if node is not None:
            if node in self._nodes:
                return self._nodes[node]
            if self.swarm is not None:
                for candidate in self.swarm.nodes():
                    if candidate.name == node or candidate.peer_id == node:
                        return candidate
            raise JsonRpcError(INVALID_PARAMS, f"unknown IPFS node {node!r}")
        candidates = list(self._nodes.values()) or (
            self.swarm.nodes() if self.swarm is not None else []
        )
        if len(candidates) == 1:
            return candidates[0]
        if not candidates:
            raise JsonRpcError(SERVER_ERROR, "no IPFS node attached to this gateway")
        raise JsonRpcError(
            INVALID_PARAMS,
            f'multiple IPFS nodes served; pass "node" (one of '
            f"{sorted(c.name for c in candidates)})",
        )

    # -- handlers --------------------------------------------------------------

    def add(self, data: str, node: Optional[str] = None, pin: bool = True) -> Dict[str, Any]:
        """Add hex-encoded ``data``; returns the CID plus size accounting."""
        result = self._resolve(node).add_bytes(from_hex(data), pin=bool(pin))
        return {
            "cid": result.cid_string,
            "size": result.size,
            "num_blocks": result.num_blocks,
        }

    def cat(self, cid: str, node: Optional[str] = None) -> str:
        """Return the hex-encoded payload behind ``cid``."""
        return to_hex(self._resolve(node).cat(cid))

    def pin(self, cid: str, node: Optional[str] = None) -> Dict[str, Any]:
        """Pin ``cid`` on the node (fetching it from peers if needed)."""
        self._resolve(node).pin(cid)
        return {"pinned": cid}

    def stat(self, cid: str, node: Optional[str] = None) -> Dict[str, Any]:
        """Size and block-count of a DAG, like ``ipfs object stat``."""
        return self._resolve(node).stat(cid)

    def methods(self) -> MethodTable:
        """The method table this namespace contributes."""
        return {
            "ipfs_add": self.add,
            "ipfs_cat": self.cat,
            "ipfs_pin": self.pin,
            "ipfs_stat": self.stat,
        }


# ---------------------------------------------------------------------------
# oflw3_* -- the marketplace application namespace
# ---------------------------------------------------------------------------


class Oflw3Namespace:
    """``oflw3_*`` handlers wrapping buyer-backend REST routes.

    Several backends (one per concurrent task's buyer) can mount on one
    gateway; the optional ``backend`` parameter selects one by its buyer
    wallet address.  Non-2xx REST responses become ``-32000`` errors whose
    ``data`` carries the HTTP status and ``error_class: "WebError"`` so SDK
    callers see the same exception the in-process REST client raised.
    """

    def __init__(self) -> None:
        self._backends: Dict[str, Any] = {}

    def register_backend(self, backend: Any) -> str:
        """Mount ``backend`` (keyed by its buyer address); returns the key."""
        key = backend.wallet.address
        self._backends[key] = backend
        return key

    def _resolve(self, backend: Optional[str]) -> Any:
        if backend is not None:
            if backend in self._backends:
                return self._backends[backend]
            raise JsonRpcError(INVALID_PARAMS, f"unknown backend {backend!r}")
        if len(self._backends) == 1:
            return next(iter(self._backends.values()))
        if not self._backends:
            raise JsonRpcError(SERVER_ERROR, "no buyer backend attached to this gateway")
        raise JsonRpcError(
            INVALID_PARAMS,
            f'multiple backends served; pass "backend" (one of '
            f"{sorted(self._backends)})",
        )

    def _rest(self, backend: Optional[str], method: str, path: str,
              json_body: Optional[Dict[str, Any]] = None) -> Any:
        from repro.web.client import RestClient

        response = RestClient(self._resolve(backend).router).request(
            method, path, json_body=json_body
        )
        if not response.ok:
            body = response.json()
            message = body.get("error") if isinstance(body, dict) else str(body)
            error_class = (body.get("error_class") if isinstance(body, dict) else None)
            raise JsonRpcError(
                SERVER_ERROR,
                message or f"{method} {path} failed ({response.status})",
                data={"http_status": response.status,
                      "error_class": error_class or "WebError"},
            )
        return response.json()

    # -- handlers --------------------------------------------------------------

    def health(self, backend: Optional[str] = None) -> Any:
        """The backend's liveness/info route (``GET /api/health``)."""
        return self._rest(backend, "GET", "/api/health")

    def deploy_task(self, spec: Dict[str, Any], budget_wei: int,
                    backend: Optional[str] = None) -> Any:
        """Deploy an FLTask contract with an escrowed budget (Step 1)."""
        return self._rest(backend, "POST", "/api/task",
                          {"spec": spec, "budget_wei": budget_wei})

    def task(self, address: str, backend: Optional[str] = None) -> Any:
        """On-chain task summary: spec, budget, owners, CID count."""
        return self._rest(backend, "GET", f"/api/task/{address}")

    def task_cids(self, address: str, backend: Optional[str] = None) -> Any:
        """The submitted model CIDs and their uploaders (Step 5)."""
        return self._rest(backend, "GET", f"/api/task/{address}/cids")

    def retrieve_models(self, address: str,
                        num_samples: Optional[Dict[str, int]] = None,
                        backend: Optional[str] = None) -> Any:
        """Fetch every submitted model from IPFS (Step 6)."""
        return self._rest(backend, "POST", f"/api/task/{address}/retrieve",
                          {"num_samples": num_samples or {}})

    def aggregate(self, address: str, algorithm: Optional[str] = None,
                  backend: Optional[str] = None) -> Any:
        """One-shot aggregate the retrieved models (Step 7a)."""
        body = {"algorithm": algorithm} if algorithm else {}
        return self._rest(backend, "POST", f"/api/task/{address}/aggregate", body)

    def compute_incentives(self, address: str, method: str = "leave_one_out",
                           options: Optional[Dict[str, Any]] = None,
                           backend: Optional[str] = None) -> Any:
        """Score contributions (leave-one-out / Shapley) (Step 7b)."""
        body = {"method": method}
        body.update(options or {})
        return self._rest(backend, "POST", f"/api/task/{address}/incentives", body)

    def pay_owners(self, address: str, reserve_fraction: float = 0.0,
                   min_payment_wei: int = 0, backend: Optional[str] = None) -> Any:
        """Distribute the escrowed budget by contribution (Step 7c)."""
        return self._rest(
            backend, "POST", f"/api/task/{address}/pay",
            {"reserve_fraction": reserve_fraction, "min_payment_wei": min_payment_wei},
        )

    def report(self, address: str, backend: Optional[str] = None) -> Any:
        """The consolidated task report (accuracy, payments, timing)."""
        return self._rest(backend, "GET", f"/api/task/{address}/report")

    def methods(self) -> MethodTable:
        """The method table this namespace contributes."""
        return {
            "oflw3_health": self.health,
            "oflw3_deployTask": self.deploy_task,
            "oflw3_task": self.task,
            "oflw3_taskCids": self.task_cids,
            "oflw3_retrieveModels": self.retrieve_models,
            "oflw3_aggregate": self.aggregate,
            "oflw3_computeIncentives": self.compute_incentives,
            "oflw3_payOwners": self.pay_owners,
            "oflw3_report": self.report,
        }


class AnalyticsNamespace:
    """``analytics_*`` methods over one :class:`repro.analytics.AnalyticsFeeder`.

    Mounted by :meth:`JsonRpcGateway.attach_analytics`; every handler
    answers from the columnar replica (draining the WAL first, so results
    are read-your-writes fresh) -- the HTAP read side of the stack.
    ``analytics_query`` takes the same criteria object as ``eth_getLogs``
    and is parity-identical to it at equal chain height.
    """

    def __init__(self, feeder: Any) -> None:
        self.feeder = feeder

    def status(self) -> Dict[str, Any]:
        """Replica freshness (``applied_seq``, lag) and per-table row counts."""
        self.feeder.drain()
        return self.feeder.status()

    def query(self, criteria: Optional[Dict[str, Any]] = None) -> Any:
        """Log query served from the replica columns (``eth_getLogs`` shape).

        With ``limit``/``cursor`` in the criteria it pages with the same
        cursor semantics as the scan path; otherwise it returns the full
        match list.
        """
        criteria = dict(criteria or {})
        limit = criteria.pop("limit", None)
        cursor = criteria.pop("cursor", None)
        log_filter = _log_filter_from_params(criteria)
        if limit is None and cursor is None:
            return [log.to_dict() for log in self.feeder.logs(log_filter)]
        try:
            page = self.feeder.logs_page(
                log_filter, limit=int(limit) if limit is not None else None,
                cursor=cursor,
            )
        except (TypeError, ValueError) as exc:
            raise JsonRpcError(INVALID_PARAMS, str(exc)) from None
        return page.to_dict()

    def leaderboard(self, name: str = "payments", limit: int = 10) -> Any:
        """A marketplace leaderboard (payments / submissions / fees)."""
        from repro.errors import AnalyticsError

        try:
            return self.feeder.leaderboard(name, int(limit))
        except (AnalyticsError, ValueError) as exc:
            raise JsonRpcError(INVALID_PARAMS, str(exc)) from None

    def fee_summary(self) -> Dict[str, Any]:
        """Fee/gas statistics by transaction kind, from the rollup."""
        return self.feeder.fee_summary_by_kind()

    def chain_statistics(self) -> Dict[str, Any]:
        """Whole-chain totals from the pre-aggregated columns."""
        return self.feeder.chain_statistics()

    def series(self, event: str) -> List[Dict[str, Any]]:
        """The (block, args) time series of one event name."""
        return self.feeder.series(event)

    def methods(self) -> MethodTable:
        """The method table this namespace contributes."""
        return {
            "analytics_status": self.status,
            "analytics_query": self.query,
            "analytics_leaderboard": self.leaderboard,
            "analytics_feeSummary": self.fee_summary,
            "analytics_chainStatistics": self.chain_statistics,
            "analytics_series": self.series,
        }


class ParallelNamespace:
    """``parallel_*`` methods over one node's chain (``repro.parallel``).

    Mounted unconditionally by :meth:`JsonRpcGateway.serve_node` -- like
    ``eth_*`` -- so operators can always ask whether wave-parallel block
    production is on; when it is off, ``parallel_status`` reports
    ``enabled: false`` with all-zero counters.
    """

    def __init__(self, node: Any) -> None:
        self.node = node

    def status(self) -> Dict[str, Any]:
        """Parallel-execution configuration and cumulative wave counters.

        Reports whether wave execution is enabled, the worker configuration,
        and the :class:`~repro.parallel.ParallelStats` counters: blocks
        executed in waves vs serial fallbacks, wave width distribution,
        conflict ratios and trim/verify totals.  Zeroes when disabled.
        """
        chain = self.node.chain
        parallel = getattr(chain, "parallel", None)
        payload: Dict[str, Any] = {"enabled": parallel is not None}
        if parallel is not None:
            payload["config"] = parallel.config.to_dict()
        payload["stats"] = chain.parallel_stats()
        batchverify = getattr(chain, "batchverify", None)
        payload["batch_verify"] = {
            "enabled": batchverify is not None,
            **(batchverify.stats if batchverify is not None else {}),
        }
        return payload

    def methods(self) -> MethodTable:
        """The method table this namespace contributes."""
        return {
            "parallel_status": self.status,
        }


class ObsNamespace:
    """``obs_*`` methods over one :class:`repro.obs.Observability` instance.

    Mounted by :meth:`JsonRpcGateway.attach_obs`; every handler reads the
    observability facade that instruments the serving node/cluster, so
    ``obs_metrics`` is this stack's ``/metrics`` endpoint and ``obs_trace``
    answers "where did this transaction's time go".
    """

    def __init__(self, obs: Any) -> None:
        self.obs = obs

    def metrics(self) -> str:
        """The unified metrics registry in Prometheus text exposition format."""
        return self.obs.registry.render_prometheus()

    def metrics_json(self) -> Dict[str, Any]:
        """Deterministic JSON snapshot of every registered metric family."""
        return self.obs.registry.snapshot()

    def traces(self, limit: int = 20) -> List[Dict[str, Any]]:
        """Recorded trace ids (oldest first) with their span counts."""
        if limit <= 0:
            raise JsonRpcError(INVALID_PARAMS,
                               f"limit must be positive, got {limit}")
        ids = self.obs.tracer.trace_ids()[:limit]
        return [
            {"spans": len(self.obs.tracer.spans_for(trace_id)),
             "trace_id": trace_id}
            for trace_id in ids
        ]

    def trace(self, trace_id: Optional[str] = None,
              include_wall: bool = False) -> List[Dict[str, Any]]:
        """The span tree of one trace (default: the sampled transaction trace)."""
        if trace_id is None:
            trace_id = self.obs.sample_trace_id()
        if trace_id is None:
            return []
        return self.obs.tracer.tree(trace_id, include_wall=include_wall)

    def top(self, count: int = 10) -> List[Dict[str, Any]]:
        """The top-``count`` per-phase cost table from the profiling hooks."""
        if count <= 0:
            raise JsonRpcError(INVALID_PARAMS,
                               f"count must be positive, got {count}")
        return self.obs.profiler.top(count)

    def events(self, kind: Optional[str] = None,
               limit: int = 100) -> List[Dict[str, Any]]:
        """Structured events (reorgs, partitions, crashes), newest last."""
        if limit <= 0:
            raise JsonRpcError(INVALID_PARAMS,
                               f"limit must be positive, got {limit}")
        return self.obs.event_log.events(kind=kind, limit=limit)

    def cache_stats(self) -> Dict[str, Any]:
        """Unified statistics for every registered cache (the one spelling)."""
        return self.obs.cache_stats()

    def methods(self) -> MethodTable:
        """The method table this namespace contributes."""
        return {
            "obs_metrics": self.metrics,
            "obs_metricsJson": self.metrics_json,
            "obs_traces": self.traces,
            "obs_trace": self.trace,
            "obs_top": self.top,
            "obs_events": self.events,
            "obs_cacheStats": self.cache_stats,
        }
