"""The Web 3.0 application layer: backend service, wallet and DApp facades.

The original demo is a React DApp in Chrome talking to MetaMask (for
transactions) and to a Flask backend on the buyer's workstation (for running
the one-shot FL algorithm).  This package reproduces that layer in-process:

* :mod:`repro.web.http` -- a tiny WSGI-like request/response/router stack;
* :mod:`repro.web.backend` -- the buyer's Flask-like backend application with
  REST routes for task management, model retrieval, aggregation and
  incentive computation;
* :mod:`repro.web.wallet` -- a MetaMask-like wallet: account management, gas
  preview, user confirmation and transaction signing;
* :mod:`repro.web.dapp` -- the owner-facing and buyer-facing DApp facades
  whose methods correspond to the buttons in Fig. 3 of the paper.
"""

from repro.web.backend import BuyerBackend
from repro.web.client import RestClient
from repro.web.dapp import BuyerDApp, OwnerDApp
from repro.web.http import HttpRequest, HttpResponse, Router
from repro.web.wallet import MetaMaskWallet, TransactionPreview

__all__ = [
    "BuyerBackend",
    "RestClient",
    "BuyerDApp",
    "OwnerDApp",
    "HttpRequest",
    "HttpResponse",
    "Router",
    "MetaMaskWallet",
    "TransactionPreview",
]
