"""A MetaMask-like wallet simulator.

The demo's owners and buyer interact with the blockchain exclusively through
MetaMask: the DApp proposes a transaction, MetaMask shows a confirmation
dialog with the estimated gas fee, the user approves, and the signed
transaction is broadcast.  :class:`MetaMaskWallet` reproduces that flow:

* it holds the account's key pair and talks to the chain exclusively through
  a :class:`~repro.rpc.client.MarketplaceClient` (the JSON-RPC boundary a
  real MetaMask crosses on every operation);
* :meth:`preview` estimates gas and renders the "confirmation screen" data
  (Fig. 5a of the paper);
* a configurable *confirmation policy* stands in for the human clicking
  "Confirm" or "Reject";
* approved transactions are signed, serialized and broadcast with
  ``eth_sendRawTransaction``, then awaited by polling
  ``eth_getTransactionReceipt``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, List, Optional, TYPE_CHECKING

from repro.errors import WalletError
from repro.chain.account import Address
from repro.chain.keys import KeyPair
from repro.chain.node import EthereumNode
from repro.chain.receipts import TransactionReceipt
from repro.chain.transaction import Transaction, encode_call, encode_create
from repro.utils.units import format_ether, gwei_to_wei

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.rpc.client import MarketplaceClient

ConfirmationPolicy = Callable[["TransactionPreview"], bool]


def approve_all(_preview: "TransactionPreview") -> bool:
    """Confirmation policy that always clicks "Confirm"."""
    return True


def reject_all(_preview: "TransactionPreview") -> bool:
    """Confirmation policy that always clicks "Reject"."""
    return False


@dataclass
class TransactionPreview:
    """What the MetaMask confirmation screen shows before signing."""

    description: str
    sender: str
    to: Optional[str]
    value_wei: int
    estimated_gas: int
    gas_price: int

    @property
    def max_fee_wei(self) -> int:
        """Maximum fee the transaction can cost."""
        return self.estimated_gas * self.gas_price

    @property
    def total_wei(self) -> int:
        """Value plus maximum fee (the number the user squints at)."""
        return self.value_wei + self.max_fee_wei

    def to_dict(self) -> dict:
        """JSON-friendly representation (used by the DApp UI layer)."""
        return {
            "description": self.description,
            "from": self.sender,
            "to": self.to,
            "value_eth": format_ether(self.value_wei),
            "estimated_gas": self.estimated_gas,
            "gas_price_wei": self.gas_price,
            "max_fee_eth": format_ether(self.max_fee_wei),
            "total_eth": format_ether(self.total_wei),
        }


@dataclass
class WalletActivity:
    """One signed-and-sent transaction, as listed in MetaMask's activity tab."""

    description: str
    transaction_hash: str
    receipt: Optional[TransactionReceipt] = None


class MetaMaskWallet:
    """Holds one account and mediates every on-chain interaction for it."""

    def __init__(
        self,
        keypair: KeyPair,
        node: EthereumNode,
        gas_price_wei: Optional[int] = None,
        confirmation_policy: ConfirmationPolicy = approve_all,
        rpc: Optional["MarketplaceClient"] = None,
    ) -> None:
        self.keypair = keypair
        #: Kept for infrastructure access (the simulated clock, tests); all
        #: chain *interaction* goes through :attr:`rpc`.
        self.node = node
        if rpc is None:
            # Imported lazily: repro.rpc imports the web package at module
            # load, so a module-level import here would cycle.
            from repro.rpc.client import MarketplaceClient

            rpc = MarketplaceClient.for_node(node)
        self.rpc = rpc
        self.gas_price_wei = gas_price_wei if gas_price_wei is not None else gwei_to_wei(1)
        self.confirmation_policy = confirmation_policy
        self.activity: List[WalletActivity] = []

    # -- account info -----------------------------------------------------------

    @property
    def address(self) -> str:
        """The wallet's checksummed address."""
        return self.keypair.address

    def balance_wei(self) -> int:
        """Current on-chain balance in wei (an ``eth_getBalance`` call)."""
        return self.rpc.eth.get_balance(self.address)

    def balance_eth(self) -> str:
        """Current balance formatted in ETH."""
        return format_ether(self.balance_wei())

    # -- transaction flow ----------------------------------------------------------

    def _build_transaction(self, to: Optional[str], value: int, data: bytes,
                           gas_limit: int) -> Transaction:
        """Assemble an unsigned transaction with the wallet's fee settings."""
        return Transaction(
            sender=Address(self.address),
            to=Address(to) if to is not None else None,
            value=value,
            data=data,
            nonce=self.rpc.eth.get_transaction_count(self.address, "pending"),
            gas_limit=gas_limit,
            gas_price=self.gas_price_wei,
        )

    def preview(self, description: str, to: Optional[str], value: int = 0,
                data: bytes = b"", gas_limit: int = 3_000_000) -> TransactionPreview:
        """Estimate gas and build the confirmation-screen preview."""
        tx = self._build_transaction(to, value, data, gas_limit)
        tx.sign(self.keypair)
        estimated = self.rpc.eth.estimate_gas(tx)
        return TransactionPreview(
            description=description,
            sender=self.address,
            to=to,
            value_wei=value,
            estimated_gas=estimated,
            gas_price=self.gas_price_wei,
        )

    def _confirm_and_send(self, description: str, to: Optional[str], value: int,
                          data: bytes) -> TransactionReceipt:
        """Run the preview -> confirm -> sign -> broadcast -> wait pipeline."""
        preview = self.preview(description, to, value, data)
        if not self.confirmation_policy(preview):
            raise WalletError(f"user rejected the transaction: {description}")
        gas_limit = max(int(preview.estimated_gas * 1.2), 21_000)
        tx = self._build_transaction(to, value, data, gas_limit)
        tx.sign(self.keypair)
        tx_hash = self.rpc.eth.send_transaction(tx)
        activity = WalletActivity(description=description, transaction_hash=tx_hash)
        self.activity.append(activity)
        receipt = self.rpc.eth.wait_for_receipt(tx_hash)
        activity.receipt = receipt
        return receipt

    # -- public operations (what DApp buttons call) -----------------------------------

    def send_ether(self, to: str, value_wei: int,
                   description: str = "Send ETH") -> TransactionReceipt:
        """Plain value transfer."""
        return self._confirm_and_send(description, to, value_wei, b"")

    def deploy_contract(self, contract_name: str, args: Optional[List[Any]] = None,
                        value_wei: int = 0,
                        description: Optional[str] = None) -> TransactionReceipt:
        """Contract deployment (Fig. 5b)."""
        data = encode_create(contract_name, args or [])
        return self._confirm_and_send(
            description or f"Deploy {contract_name}", None, value_wei, data
        )

    def call_contract(self, contract_address: str, method: str,
                      args: Optional[List[Any]] = None, value_wei: int = 0,
                      description: Optional[str] = None) -> TransactionReceipt:
        """State-changing contract interaction (Fig. 5c / 5d)."""
        data = encode_call(method, args or [])
        return self._confirm_and_send(
            description or f"Call {method}", contract_address, value_wei, data
        )

    def read_contract(self, contract_address: str, method: str,
                      args: Optional[List[Any]] = None) -> Any:
        """Gas-free read-only call (Step 5: downloading CIDs)."""
        return self.rpc.eth.call(contract_address, method, args or [], caller=self.address)

    # -- reporting ---------------------------------------------------------------------

    def total_fees_paid_wei(self) -> int:
        """Sum of fees across all confirmed transactions from this wallet."""
        return sum(a.receipt.fee_wei for a in self.activity if a.receipt is not None)

    def activity_summary(self) -> List[dict]:
        """MetaMask-style activity list."""
        return [
            {
                "description": a.description,
                "transaction_hash": a.transaction_hash,
                "status": (a.receipt.status if a.receipt else None),
                "fee_eth": (format_ether(a.receipt.fee_wei) if a.receipt else None),
            }
            for a in self.activity
        ]
