"""The buyer's backend service (the Flask application of the paper).

The model buyer runs this service on a workstation: it owns the connection to
the blockchain node and the IPFS node, caches retrieved models, runs the
one-shot FL aggregation and the incentive computation, and exposes the whole
thing as REST routes that the DApp front end calls.

Routes
------
``GET  /api/health``                      liveness probe
``POST /api/task``                        deploy the FLTask contract
``GET  /api/task/<address>``              task spec + on-chain status
``GET  /api/task/<address>/cids``         CIDs submitted so far (gas-free read)
``POST /api/task/<address>/retrieve``     fetch all models from IPFS
``POST /api/task/<address>/aggregate``    run the one-shot aggregation
``POST /api/task/<address>/incentives``   compute LOO / Shapley contributions
``POST /api/task/<address>/pay``          execute the on-chain payments
``GET  /api/task/<address>/report``       consolidated experiment report
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, TYPE_CHECKING

import numpy as np

from repro.errors import WebError
from repro.data.dataset import Dataset
from repro.fl.model_update import ModelUpdate
from repro.fl.oneshot import make_aggregator
from repro.fl.oneshot.base import AggregationResult
from repro.incentives import allocate_budget, leave_one_out, shapley_monte_carlo
from repro.incentives.contribution import ContributionReport
from repro.ipfs.node import IpfsNode
from repro.ml.trainer import evaluate_model
from repro.utils.units import format_ether
from repro.web.http import HttpRequest, HttpResponse, Router
from repro.web.wallet import MetaMaskWallet

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.rpc.client import MarketplaceClient


@dataclass
class TaskState:
    """Everything the backend caches about one deployed task."""

    contract_address: str
    spec: Dict[str, Any]
    updates: List[ModelUpdate] = field(default_factory=list)
    uploaders: List[str] = field(default_factory=list)
    aggregation: Optional[AggregationResult] = None
    contribution: Optional[ContributionReport] = None
    payments: Dict[str, int] = field(default_factory=dict)


class BuyerBackend:
    """The buyer's Flask-like application."""

    def __init__(
        self,
        wallet: MetaMaskWallet,
        ipfs: IpfsNode,
        test_dataset: Dataset,
        aggregator_name: str = "pfnm",
        aggregator_kwargs: Optional[Dict[str, Any]] = None,
        rpc: Optional["MarketplaceClient"] = None,
    ) -> None:
        self.wallet = wallet
        self.ipfs = ipfs
        #: The backend's own door to the stack: chain reads go out as
        #: ``eth_call`` and model retrieval as ``ipfs_cat``, through the same
        #: gateway the wallet transacts on.
        self.rpc = (rpc or wallet.rpc).bound_to_ipfs(ipfs)
        self.test_dataset = test_dataset
        self.aggregator_name = aggregator_name
        self.aggregator_kwargs = dict(aggregator_kwargs or {})
        self.tasks: Dict[str, TaskState] = {}
        self.router = Router()
        self._register_routes()

    def _read_contract(self, contract: str, method: str,
                       args: Optional[list] = None) -> Any:
        """Gas-free contract read (``eth_call``) on the buyer's behalf."""
        return self.rpc.eth.call(contract, method, args or [], caller=self.wallet.address)

    # -- route registration -------------------------------------------------------

    def _register_routes(self) -> None:
        """Wire every REST route to its handler."""
        self.router.add_route("GET", "/api/health", self._health)
        self.router.add_route("POST", "/api/task", self._create_task)
        self.router.add_route("GET", "/api/task/<address>", self._task_info)
        self.router.add_route("GET", "/api/task/<address>/cids", self._task_cids)
        self.router.add_route("POST", "/api/task/<address>/retrieve", self._retrieve_models)
        self.router.add_route("POST", "/api/task/<address>/aggregate", self._aggregate)
        self.router.add_route("POST", "/api/task/<address>/incentives", self._incentives)
        self.router.add_route("POST", "/api/task/<address>/pay", self._pay)
        self.router.add_route("GET", "/api/task/<address>/report", self._report)

    def _get_task(self, request: HttpRequest) -> TaskState:
        """Resolve the task addressed by the request or raise a 400."""
        address = request.param("address")
        if address not in self.tasks:
            raise WebError(f"unknown task contract {address}")
        return self.tasks[address]

    # -- handlers -----------------------------------------------------------------

    def _health(self, _request: HttpRequest) -> HttpResponse:
        """Liveness probe with a summary of the backend's connections."""
        return HttpResponse.json_ok(
            {
                "status": "ok",
                "buyer_address": self.wallet.address,
                "chain_id": self.rpc.eth.chain_id,
                "ipfs_peer": self.ipfs.peer_id,
                "tasks": len(self.tasks),
            }
        )

    def _create_task(self, request: HttpRequest) -> HttpResponse:
        """Step 1: deploy the FLTask contract with an escrowed budget."""
        body = request.json_body or {}
        spec = body.get("spec")
        budget_wei = int(body.get("budget_wei", 0))
        if not spec:
            raise WebError("task spec is required")
        receipt = self.wallet.deploy_contract(
            "FLTask", [spec], value_wei=budget_wei, description="Deploy FLTask contract"
        )
        if not receipt.status:
            raise WebError(f"deployment failed: {receipt.revert_reason}")
        address = str(receipt.contract_address)
        self.tasks[address] = TaskState(contract_address=address, spec=dict(spec))
        return HttpResponse.json_ok(
            {
                "contract_address": address,
                "transaction_hash": receipt.transaction_hash,
                "gas_used": receipt.gas_used,
                "fee_eth": format_ether(receipt.fee_wei),
                "budget_eth": format_ether(budget_wei),
            },
            status=201,
        )

    def _task_info(self, request: HttpRequest) -> HttpResponse:
        """Task spec plus live on-chain counters."""
        task = self._get_task(request)
        contract = task.contract_address
        return HttpResponse.json_ok(
            {
                "contract_address": contract,
                "spec": self._read_contract(contract, "spec"),
                "buyer": self._read_contract(contract, "buyer"),
                "budget_wei": self._read_contract(contract, "budget"),
                "cid_count": self._read_contract(contract, "cidCount"),
                "owners": self._read_contract(contract, "owners"),
                "finalized": self._read_contract(contract, "isFinalized"),
            }
        )

    def _task_cids(self, request: HttpRequest) -> HttpResponse:
        """Step 5: download the CIDs from the contract (gas-free)."""
        task = self._get_task(request)
        contract = task.contract_address
        cids = self._read_contract(contract, "getAllCids")
        uploaders = [
            self._read_contract(contract, "getUploader", [index])
            for index in range(len(cids))
        ]
        return HttpResponse.json_ok({"cids": cids, "uploaders": uploaders})

    def _retrieve_models(self, request: HttpRequest) -> HttpResponse:
        """Step 6: fetch every submitted model from IPFS and deserialize it."""
        task = self._get_task(request)
        contract = task.contract_address
        cids = self._read_contract(contract, "getAllCids")
        task.updates = []
        task.uploaders = []
        sizes = []
        for index, cid in enumerate(cids):
            uploader = self._read_contract(contract, "getUploader", [index])
            payload = self.rpc.ipfs.cat(cid)
            sizes.append(len(payload))
            # num_samples metadata is not on-chain; default to 1 (equal weight)
            # unless the caller supplies a mapping in the request body.
            weights = (request.json_body or {}).get("num_samples", {})
            num_samples = int(weights.get(uploader, 1)) if isinstance(weights, dict) else 1
            task.updates.append(
                ModelUpdate.from_payload(payload, num_samples=num_samples, client_id=uploader)
            )
            task.uploaders.append(uploader)
        return HttpResponse.json_ok(
            {
                "retrieved": len(task.updates),
                "total_bytes": int(np.sum(sizes)) if sizes else 0,
                "uploaders": task.uploaders,
            }
        )

    def _make_aggregator(self, name: Optional[str] = None):
        """Instantiate the configured aggregator (or an override)."""
        return make_aggregator(name or self.aggregator_name, **self.aggregator_kwargs)

    def _aggregate(self, request: HttpRequest) -> HttpResponse:
        """Step 7 (first half): run the one-shot FL aggregation."""
        task = self._get_task(request)
        if not task.updates:
            raise WebError("no models retrieved yet; POST .../retrieve first")
        name = (request.json_body or {}).get("algorithm")
        aggregator = self._make_aggregator(name)
        task.aggregation = aggregator.aggregate(task.updates)
        test_accuracy = task.aggregation.evaluate(self.test_dataset)
        local_accuracies = {
            update.client_id: evaluate_model(
                update.to_model(), self.test_dataset.features, self.test_dataset.labels
            ).accuracy
            for update in task.updates
        }
        return HttpResponse.json_ok(
            {
                "algorithm": task.aggregation.algorithm,
                "num_updates": task.aggregation.num_updates,
                "aggregate_accuracy": test_accuracy,
                "local_accuracies": local_accuracies,
            }
        )

    def _incentives(self, request: HttpRequest) -> HttpResponse:
        """Step 7 (second half): compute per-owner contributions."""
        task = self._get_task(request)
        if not task.updates:
            raise WebError("no models retrieved yet; POST .../retrieve first")
        body = request.json_body or {}
        method = body.get("method", "leave_one_out")
        aggregator = self._make_aggregator(body.get("algorithm"))

        def value_fn(subset):
            if not subset:
                return 0.0
            result = aggregator.aggregate([task.updates[i] for i in subset])
            return result.evaluate(self.test_dataset)

        if method == "leave_one_out":
            task.contribution = leave_one_out(len(task.updates), value_fn)
        elif method == "shapley_monte_carlo":
            task.contribution = shapley_monte_carlo(
                len(task.updates), value_fn,
                num_permutations=int(body.get("num_permutations", 50)),
                rng=body.get("seed", 0),
            )
        else:
            raise WebError(f"unknown incentive method {method!r}")
        return HttpResponse.json_ok(task.contribution.to_dict())

    def _pay(self, request: HttpRequest) -> HttpResponse:
        """Execute the payments on-chain, proportional to contribution."""
        task = self._get_task(request)
        if task.contribution is None:
            raise WebError("no contribution report yet; POST .../incentives first")
        contract = task.contract_address
        budget_wei = int(self._read_contract(contract, "budget"))
        body = request.json_body or {}
        plan = allocate_budget(
            task.contribution,
            owner_ids=[update.client_id for update in task.updates],
            budget_wei=budget_wei,
            reserve_fraction=float(body.get("reserve_fraction", 0.0)),
            min_payment_wei=int(body.get("min_payment_wei", 0)),
        )
        results = []
        for owner, amount in plan.amounts_wei.items():
            if amount <= 0:
                continue
            receipt = self.wallet.call_contract(
                contract, "payOwner", [owner, amount],
                description=f"Pay {owner}",
            )
            task.payments[owner] = amount
            results.append(
                {
                    "owner": owner,
                    "amount_eth": format_ether(amount),
                    "transaction_hash": receipt.transaction_hash,
                    "status": receipt.status,
                }
            )
        return HttpResponse.json_ok({"payments": results, "total_eth": format_ether(plan.total_wei)})

    def _report(self, request: HttpRequest) -> HttpResponse:
        """Consolidated view of a task (used by the DApp's results screen)."""
        task = self._get_task(request)
        aggregate_accuracy = (
            task.aggregation.evaluate(self.test_dataset) if task.aggregation else None
        )
        return HttpResponse.json_ok(
            {
                "contract_address": task.contract_address,
                "spec": task.spec,
                "num_models": len(task.updates),
                "aggregate_accuracy": aggregate_accuracy,
                "contribution": task.contribution.to_dict() if task.contribution else None,
                "payments_eth": {
                    owner: format_ether(amount) for owner, amount in task.payments.items()
                },
            }
        )
