"""DApp facades: the button-level interfaces of Fig. 3.

The original front end is a React app in Chrome; each button triggers either
a MetaMask transaction or a backend REST call.  These facades reproduce that
surface programmatically:

* :class:`OwnerDApp` -- what a model owner sees (Fig. 3a): connect a wallet,
  look up a task contract, register, train a local model, upload it to IPFS,
  and submit the CID on-chain.
* :class:`BuyerDApp` -- what the model buyer sees (Fig. 3b): deploy a task,
  watch submissions, retrieve and aggregate models, compute incentives and
  pay the owners -- all through the buyer's backend service.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, TYPE_CHECKING

from repro.errors import WorkflowError
from repro.data.dataset import Dataset
from repro.fl.client import FLClient
from repro.ipfs.node import IpfsNode
from repro.ml.trainer import TrainingConfig
from repro.utils.units import format_ether
from repro.web.backend import BuyerBackend
from repro.web.client import RestClient
from repro.web.wallet import MetaMaskWallet

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.rpc.client import MarketplaceClient


@dataclass
class OwnerSession:
    """State the owner DApp keeps between button clicks."""

    task_address: Optional[str] = None
    local_result: Optional[Any] = None
    cid: Optional[str] = None
    cid_index: Optional[int] = None


class OwnerDApp:
    """The model-owner interface (Fig. 3a).

    All stack access -- chain transactions via the wallet, model uploads via
    ``ipfs_add`` -- goes through the wallet's :class:`MarketplaceClient`, so
    the JSON-RPC gateway is the one door for every button.
    """

    def __init__(self, wallet: MetaMaskWallet, ipfs: IpfsNode,
                 rpc: Optional["MarketplaceClient"] = None) -> None:
        self.wallet = wallet
        self.ipfs = ipfs
        self.rpc = (rpc or wallet.rpc).bound_to_ipfs(ipfs)
        self.session = OwnerSession()

    # -- buttons -------------------------------------------------------------------

    def connect_wallet(self) -> Dict[str, Any]:
        """"Connect wallet" button: returns the connected account summary."""
        return {"address": self.wallet.address, "balance_eth": self.wallet.balance_eth()}

    def find_task(self, contract_address: str) -> Dict[str, Any]:
        """Look up a task contract by address and show its specification."""
        spec = self.wallet.read_contract(contract_address, "spec")
        budget = self.wallet.read_contract(contract_address, "budget")
        self.session.task_address = contract_address
        return {"contract_address": contract_address, "spec": spec,
                "budget_eth": format_ether(budget)}

    def register(self) -> Dict[str, Any]:
        """"Participate" button: register as an owner on the task contract."""
        self._require_task()
        receipt = self.wallet.call_contract(
            self.session.task_address, "registerOwner", [],
            description="Register as model owner",
        )
        return {"status": receipt.status, "transaction_hash": receipt.transaction_hash,
                "fee_eth": format_ether(receipt.fee_wei)}

    def train_local_model(self, dataset: Dataset, config: Optional[TrainingConfig] = None,
                          layer_sizes=None, seed: Optional[int] = None) -> Dict[str, Any]:
        """"Train model" button: run local training on the owner's private data."""
        self._require_task()
        spec = self.wallet.read_contract(self.session.task_address, "spec")
        sizes = tuple(layer_sizes or spec.get("model", (784, 100, 10)))
        client = FLClient(self.wallet.address, dataset, layer_sizes=sizes,
                          config=config, seed=seed)
        self.session.local_result = client.train_local()
        return {
            "num_samples": len(dataset),
            "train_accuracy": self.session.local_result.train_accuracy,
            "final_loss": self.session.local_result.history.final_loss,
        }

    def upload_model(self) -> Dict[str, Any]:
        """Step 2+3: upload the trained model to IPFS and receive its CID."""
        if self.session.local_result is None:
            raise WorkflowError("train a local model before uploading")
        payload = self.session.local_result.update.to_payload()
        added = self.rpc.ipfs.add(payload)
        self.session.cid = added["cid"]
        return {"cid": added["cid"], "payload_bytes": added["size"],
                "ipfs_blocks": added["num_blocks"]}

    def submit_cid(self) -> Dict[str, Any]:
        """Step 4: publish the CID on the task contract (a paid transaction)."""
        self._require_task()
        if self.session.cid is None:
            raise WorkflowError("upload the model to IPFS before submitting its CID")
        receipt = self.wallet.call_contract(
            self.session.task_address, "uploadCid", [self.session.cid],
            description="Submit model CID",
        )
        self.session.cid_index = receipt.return_value
        return {
            "status": receipt.status,
            "cid": self.session.cid,
            "cid_index": receipt.return_value,
            "transaction_hash": receipt.transaction_hash,
            "fee_eth": format_ether(receipt.fee_wei),
        }

    def check_payment(self) -> Dict[str, Any]:
        """Show the payment this owner has received so far."""
        self._require_task()
        payments = self.wallet.read_contract(self.session.task_address, "payments")
        amount = payments.get(self.wallet.address, 0)
        return {"payment_eth": format_ether(amount), "balance_eth": self.wallet.balance_eth()}

    def _require_task(self) -> None:
        """Guard used by buttons that need a selected task."""
        if self.session.task_address is None:
            raise WorkflowError("no task selected; call find_task first")


class BuyerDApp:
    """The model-buyer interface (Fig. 3b), backed by the Flask-like service.

    Buttons speak ``oflw3_*`` JSON-RPC (the gateway wraps the backend's REST
    routes), so the buyer's application calls cross the same metered boundary
    as every chain and IPFS interaction.  ``self.client`` keeps the direct
    REST client around for callers that poke routes by path.
    """

    def __init__(self, backend: BuyerBackend,
                 rpc: Optional["MarketplaceClient"] = None) -> None:
        self.backend = backend
        self.client = RestClient(backend.router)
        self.rpc = (rpc or backend.wallet.rpc).bound_to_backend(backend)
        self.task_address: Optional[str] = None

    # -- buttons -------------------------------------------------------------------

    def deploy_task(self, spec: Dict[str, Any], budget_wei: int) -> Dict[str, Any]:
        """Step 1: design and deploy the task contract with its escrow."""
        result = self.rpc.oflw3.deploy_task(spec, budget_wei)
        self.task_address = result["contract_address"]
        return result

    def task_status(self) -> Dict[str, Any]:
        """Live view of the task contract (owners registered, CIDs submitted)."""
        self._require_task()
        return self.rpc.oflw3.task(self.task_address)

    def download_cids(self) -> Dict[str, Any]:
        """Step 5: list the CIDs recorded on-chain (gas-free)."""
        self._require_task()
        return self.rpc.oflw3.task_cids(self.task_address)

    def retrieve_models(self, num_samples: Optional[Dict[str, int]] = None) -> Dict[str, Any]:
        """Step 6: pull every model from IPFS onto the backend workstation."""
        self._require_task()
        return self.rpc.oflw3.retrieve_models(self.task_address, num_samples)

    def aggregate(self, algorithm: Optional[str] = None) -> Dict[str, Any]:
        """Step 7a: run the one-shot FL aggregation on the backend."""
        self._require_task()
        return self.rpc.oflw3.aggregate(self.task_address, algorithm)

    def compute_incentives(self, method: str = "leave_one_out", **kwargs) -> Dict[str, Any]:
        """Step 7b: measure each owner's contribution."""
        self._require_task()
        return self.rpc.oflw3.compute_incentives(self.task_address, method, **kwargs)

    def pay_owners(self, reserve_fraction: float = 0.0, min_payment_wei: int = 0) -> Dict[str, Any]:
        """Step 7c: execute the on-chain payments."""
        self._require_task()
        return self.rpc.oflw3.pay_owners(self.task_address, reserve_fraction, min_payment_wei)

    def results(self) -> Dict[str, Any]:
        """Consolidated report for the results screen."""
        self._require_task()
        return self.rpc.oflw3.report(self.task_address)

    def _require_task(self) -> None:
        """Guard used by buttons that need a deployed task."""
        if self.task_address is None:
            raise WorkflowError("no task deployed; call deploy_task first")
