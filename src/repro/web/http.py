"""A minimal in-process HTTP abstraction (request, response, router).

Just enough of Flask's surface to express the buyer backend's REST API:
method + path routing with ``<placeholder>`` path parameters, JSON bodies,
query parameters and status codes.  Everything runs in-process -- no sockets
-- which keeps experiments deterministic and fast while exercising the same
call structure as the real DApp-to-Flask interaction.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import RouteNotFoundError, WebError

Handler = Callable[["HttpRequest"], "HttpResponse"]


@dataclass
class HttpRequest:
    """An HTTP-like request."""

    method: str
    path: str
    json_body: Optional[Dict[str, Any]] = None
    query: Dict[str, str] = field(default_factory=dict)
    path_params: Dict[str, str] = field(default_factory=dict)
    headers: Dict[str, str] = field(default_factory=dict)

    def param(self, name: str, default: Any = None) -> Any:
        """Look up ``name`` in path params, then query, then the JSON body."""
        if name in self.path_params:
            return self.path_params[name]
        if name in self.query:
            return self.query[name]
        if self.json_body and name in self.json_body:
            return self.json_body[name]
        return default


@dataclass
class HttpResponse:
    """An HTTP-like response carrying a JSON-serializable body."""

    status: int
    body: Any = None
    headers: Dict[str, str] = field(default_factory=lambda: {"Content-Type": "application/json"})

    @property
    def ok(self) -> bool:
        """Whether the status code indicates success (2xx)."""
        return 200 <= self.status < 300

    def json(self) -> Any:
        """The response body (already deserialized)."""
        return self.body

    def text(self) -> str:
        """The body rendered as a JSON string."""
        return json.dumps(self.body, sort_keys=True, default=str)

    @classmethod
    def json_ok(cls, body: Any, status: int = 200) -> "HttpResponse":
        """Build a successful JSON response."""
        return cls(status=status, body=body)

    @classmethod
    def error(cls, message: str, status: int = 400) -> "HttpResponse":
        """Build an error response with a standard shape."""
        return cls(status=status, body={"error": message})


class Router:
    """Registers handlers for (method, path-pattern) pairs and dispatches."""

    def __init__(self) -> None:
        self._routes: List[Tuple[str, List[str], Handler]] = []

    def add_route(self, method: str, pattern: str, handler: Handler) -> None:
        """Register ``handler`` for ``method`` and a ``/seg/<param>`` pattern."""
        segments = [seg for seg in pattern.strip("/").split("/") if seg]
        self._routes.append((method.upper(), segments, handler))

    def route(self, method: str, pattern: str) -> Callable[[Handler], Handler]:
        """Decorator form of :meth:`add_route`."""

        def decorator(handler: Handler) -> Handler:
            self.add_route(method, pattern, handler)
            return handler

        return decorator

    @staticmethod
    def _match(pattern_segments: List[str], path_segments: List[str]) -> Optional[Dict[str, str]]:
        """Return extracted path params if the pattern matches, else None."""
        if len(pattern_segments) != len(path_segments):
            return None
        params: Dict[str, str] = {}
        for pattern_seg, path_seg in zip(pattern_segments, path_segments):
            if pattern_seg.startswith("<") and pattern_seg.endswith(">"):
                params[pattern_seg[1:-1]] = path_seg
            elif pattern_seg != path_seg:
                return None
        return params

    def dispatch(self, request: HttpRequest) -> HttpResponse:
        """Find the matching handler and invoke it.

        Handler exceptions of type :class:`WebError` become 400 responses;
        unexpected exceptions become 500 responses so that a buggy handler
        cannot crash the whole simulation.
        """
        path_segments = [seg for seg in request.path.split("?")[0].strip("/").split("/") if seg]
        for method, pattern_segments, handler in self._routes:
            if method != request.method.upper():
                continue
            params = self._match(pattern_segments, path_segments)
            if params is None:
                continue
            request.path_params = params
            try:
                return handler(request)
            except WebError as exc:
                response = HttpResponse.error(str(exc), status=400)
                # Carry the concrete class so RPC/SDK layers on top can
                # rehydrate the original exception (e.g. WalletError).
                response.body["error_class"] = type(exc).__name__
                return response
            except Exception as exc:  # noqa: BLE001 - surface as a 500 response
                return HttpResponse.error(f"internal error: {exc}", status=500)
        raise RouteNotFoundError(f"no route for {request.method} {request.path}")
