"""A small REST client used by the DApp facades to call the buyer backend."""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.errors import RouteNotFoundError, WebError
from repro.web.http import HttpRequest, HttpResponse, Router


class RestClient:
    """Issues requests against an in-process :class:`Router`."""

    def __init__(self, router: Router) -> None:
        self.router = router

    def request(
        self,
        method: str,
        path: str,
        json_body: Optional[Dict[str, Any]] = None,
        query: Optional[Dict[str, str]] = None,
    ) -> HttpResponse:
        """Send one request and return the response."""
        request = HttpRequest(
            method=method,
            path=path,
            json_body=json_body,
            query=dict(query or {}),
        )
        try:
            return self.router.dispatch(request)
        except RouteNotFoundError as exc:
            return HttpResponse.error(str(exc), status=404)
        except WebError as exc:
            # A handler (or route middleware) let a WebError escape the
            # router's own translation; keep it inside the HTTP abstraction
            # instead of leaking a raw exception to the caller.
            response = HttpResponse.error(str(exc), status=400)
            response.body["error_class"] = type(exc).__name__
            return response

    def get(self, path: str, query: Optional[Dict[str, str]] = None) -> HttpResponse:
        """HTTP GET."""
        return self.request("GET", path, query=query)

    def post(self, path: str, json_body: Optional[Dict[str, Any]] = None) -> HttpResponse:
        """HTTP POST with a JSON body."""
        return self.request("POST", path, json_body=json_body)

    def get_json(self, path: str, query: Optional[Dict[str, str]] = None) -> Any:
        """GET and return the JSON body, raising on non-2xx responses."""
        response = self.get(path, query=query)
        if not response.ok:
            raise WebError(f"GET {path} failed ({response.status}): {response.body}")
        return response.json()

    def post_json(self, path: str, json_body: Optional[Dict[str, Any]] = None) -> Any:
        """POST and return the JSON body, raising on non-2xx responses."""
        response = self.post(path, json_body=json_body)
        if not response.ok:
            raise WebError(f"POST {path} failed ({response.status}): {response.body}")
        return response.json()
