"""The latency model behind the execution-time breakdown (Fig. 7).

The paper measures wall-clock time of every workflow phase on a campus LAN
against Sepolia and finds that blockchain interaction dominates both the
owners' and the buyer's total time.  The reproduction attributes simulated
durations to each phase:

* **on-chain operations** -- dominated by waiting for block inclusion; the
  chain's simulated clock advances one 12-second slot per produced block, and
  a MetaMask confirmation delay is added per transaction;
* **off-chain operations** -- local training throughput, IPFS/LAN transfer
  bandwidth and aggregation/incentive compute are modeled with simple rate
  parameters calibrated to the magnitudes a workstation with two RTX A5000
  GPUs and a campus LAN would see.

The absolute numbers are configurable; the Fig. 7 claim being reproduced is
the *shape* of the breakdown (blockchain wait >> everything else).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple


@dataclass(frozen=True)
class LatencyModel:
    """Rates used to convert work into simulated seconds."""

    training_sample_passes_per_second: float = 2_000.0
    """Local training speed: (samples x epochs) processed per second."""

    lan_bandwidth_bytes_per_second: float = 12_500_000.0
    """Campus-LAN transfer rate (100 Mbit/s) used for IPFS transfers."""

    ipfs_overhead_seconds: float = 0.35
    """Fixed per-object IPFS overhead (hashing, DHT announce)."""

    metamask_confirmation_seconds: float = 3.0
    """Time for the user to review and approve a MetaMask popup."""

    aggregation_seconds_per_update: float = 1.5
    """One-shot aggregation compute cost per collected model."""

    incentive_seconds_per_evaluation: float = 1.5
    """Cost of one value-function evaluation (re-aggregation + test pass)."""

    payment_calculation_seconds: float = 0.5
    """Turning contribution scores into a payment plan."""

    def training_time(self, num_samples: int, epochs: int) -> float:
        """Simulated seconds of local training."""
        if num_samples < 0 or epochs < 0:
            raise ValueError("num_samples and epochs must be non-negative")
        return (num_samples * epochs) / self.training_sample_passes_per_second

    def transfer_time(self, num_bytes: int) -> float:
        """Simulated seconds to move ``num_bytes`` over the LAN (plus overhead)."""
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        return self.ipfs_overhead_seconds + num_bytes / self.lan_bandwidth_bytes_per_second

    def aggregation_time(self, num_updates: int) -> float:
        """Simulated seconds to run the one-shot aggregation."""
        return max(0, num_updates) * self.aggregation_seconds_per_update

    def incentive_time(self, num_evaluations: int) -> float:
        """Simulated seconds to compute the contribution report."""
        return max(0, num_evaluations) * self.incentive_seconds_per_evaluation


@dataclass
class TimeBreakdown:
    """Accumulated simulated durations per phase for one participant."""

    role: str
    phases: Dict[str, float] = field(default_factory=dict)

    def add(self, phase: str, seconds: float) -> None:
        """Attribute ``seconds`` to ``phase``."""
        if seconds < 0:
            raise ValueError(f"cannot add negative time: {seconds}")
        self.phases[phase] = self.phases.get(phase, 0.0) + float(seconds)

    @property
    def total(self) -> float:
        """Total simulated seconds across phases."""
        return sum(self.phases.values())

    def fractions(self) -> Dict[str, float]:
        """Share of the total attributable to each phase."""
        total = self.total
        if total == 0:
            return {phase: 0.0 for phase in self.phases}
        return {phase: seconds / total for phase, seconds in self.phases.items()}

    def blockchain_fraction(self, blockchain_phases: Tuple[str, ...]) -> float:
        """Fraction of total time spent in the given blockchain phases."""
        total = self.total
        if total == 0:
            return 0.0
        return sum(self.phases.get(phase, 0.0) for phase in blockchain_phases) / total

    def to_dict(self) -> dict:
        """JSON-friendly representation."""
        return {"role": self.role, "phases": dict(self.phases), "total": self.total}


def merge_breakdowns(breakdowns: List[TimeBreakdown], role: str) -> TimeBreakdown:
    """Average several participants' breakdowns into one representative one.

    Fig. 7 shows a single distribution per role; owners are averaged since
    their workflows are symmetric.
    """
    merged = TimeBreakdown(role=role)
    if not breakdowns:
        return merged
    for breakdown in breakdowns:
        for phase, seconds in breakdown.phases.items():
            merged.add(phase, seconds / len(breakdowns))
    return merged
