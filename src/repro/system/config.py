"""Experiment configuration.

:class:`OFLW3Config` gathers every knob of the end-to-end marketplace
experiment.  Two presets are provided:

* :func:`paper_config` -- the setting of the paper's Section 4: ten model
  owners, the (784, 100, 10) MLP, batch size 64, learning rate 0.001, ten
  local epochs, a 0.01 ETH budget and PFNM aggregation (on the synthetic
  MNIST stand-in, with PFNM's heterogeneous Dirichlet partition);
* :func:`quick_config` -- a scaled-down setting used by the test suite and
  the quickstart example so everything finishes in seconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, Optional, Tuple

from repro.errors import ConfigError
from repro.utils.units import ether_to_wei, gwei_to_wei


@dataclass(frozen=True)
class OFLW3Config:
    """Configuration of one end-to-end marketplace run."""

    # Marketplace shape
    num_owners: int = 10
    budget_eth: str = "0.01"
    gas_price_gwei: float = 1.0
    buyer_funding_eth: str = "1.0"
    owner_funding_eth: str = "0.05"

    # Dataset (synthetic MNIST stand-in)
    num_samples: int = 20_000
    test_fraction: float = 0.15
    class_similarity: float = 0.5
    noise_scale: float = 0.4
    variation_scale: float = 1.2
    variation_rank: int = 24
    label_noise: float = 0.0

    # Partitioning
    partition_scheme: str = "dirichlet"
    partition_alpha: float = 0.35
    classes_per_client: int = 2

    # Model and local training
    layer_sizes: Tuple[int, ...] = (784, 100, 10)
    batch_size: int = 64
    learning_rate: float = 0.001
    local_epochs: int = 10

    # Aggregation and incentives
    aggregator: str = "pfnm"
    aggregator_kwargs: Dict[str, Any] = field(default_factory=dict)
    incentive_method: str = "leave_one_out"
    reserve_fraction: float = 0.0
    participation_floor_fraction: float = 0.3
    """Fraction of the budget split equally among all owners as a base
    participation reward; the remainder is allocated proportionally to
    contribution.  Ensures every participating owner appears in the payment
    table with a non-zero payment, as in the paper's Table 1."""

    # Reproducibility
    seed: int = 7

    # Back-compat alias used by a few call sites / examples
    samples_per_owner: Optional[int] = None

    def __post_init__(self) -> None:
        if self.num_owners <= 0:
            raise ConfigError(f"num_owners must be positive, got {self.num_owners}")
        if self.local_epochs <= 0:
            raise ConfigError(f"local_epochs must be positive, got {self.local_epochs}")
        if self.batch_size <= 0:
            raise ConfigError(f"batch_size must be positive, got {self.batch_size}")
        if not 0.0 < self.test_fraction < 1.0:
            raise ConfigError(f"test_fraction must be in (0, 1), got {self.test_fraction}")
        if len(self.layer_sizes) < 2:
            raise ConfigError(f"layer_sizes needs at least two entries, got {self.layer_sizes}")
        if not 0.0 <= self.participation_floor_fraction < 1.0:
            raise ConfigError(
                "participation_floor_fraction must be in [0, 1), "
                f"got {self.participation_floor_fraction}"
            )
        if self.samples_per_owner is not None:
            # Convenience: interpret samples_per_owner as a total-sample override.
            total = int(self.samples_per_owner) * self.num_owners
            object.__setattr__(self, "num_samples", max(total, self.num_owners * 20))

    # -- derived quantities ---------------------------------------------------------

    @property
    def budget_wei(self) -> int:
        """The escrowed reward budget in wei."""
        return ether_to_wei(self.budget_eth)

    @property
    def gas_price_wei(self) -> int:
        """Gas price every wallet uses, in wei."""
        return gwei_to_wei(str(self.gas_price_gwei))

    @property
    def buyer_funding_wei(self) -> int:
        """Initial faucet funding of the buyer's wallet."""
        return ether_to_wei(self.buyer_funding_eth)

    @property
    def owner_funding_wei(self) -> int:
        """Initial faucet funding of each owner's wallet."""
        return ether_to_wei(self.owner_funding_eth)

    @property
    def min_payment_wei(self) -> int:
        """Per-owner participation floor derived from the budget."""
        distributable = self.budget_wei - min(
            self.budget_wei, int(self.budget_wei * self.reserve_fraction)
        )
        return int(distributable * self.participation_floor_fraction) // self.num_owners

    def with_overrides(self, **kwargs) -> "OFLW3Config":
        """A copy of this config with the given fields replaced."""
        return replace(self, **kwargs)


def paper_config(**overrides) -> OFLW3Config:
    """The configuration reproducing the paper's Section 4 experiments."""
    return OFLW3Config().with_overrides(**overrides)


def quick_config(**overrides) -> OFLW3Config:
    """A fast configuration for tests, examples and CI runs."""
    base = OFLW3Config(
        num_owners=4,
        num_samples=1_600,
        local_epochs=2,
        partition_alpha=0.5,
        class_similarity=0.3,
        noise_scale=0.25,
        variation_scale=0.6,
        variation_rank=8,
    )
    return base.with_overrides(**overrides)
