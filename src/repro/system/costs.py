"""Gas cost analysis (Fig. 5 of the paper).

The paper shows MetaMask screenshots of three transaction types -- contract
deployment, contract interaction (CID submission) and payment -- and observes
that deployment carries the heaviest fee (~0.002 ETH) while CID submission
and payment are comparable and much cheaper.  :func:`build_gas_cost_report`
tabulates exactly those categories from the simulated chain's explorer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.chain.chain import Blockchain
from repro.chain.explorer import Explorer
from repro.utils.units import format_ether


@dataclass
class GasCostRow:
    """One transaction category's gas/fee statistics."""

    category: str
    count: int
    mean_gas: float
    mean_fee_wei: float
    max_fee_wei: int
    total_fee_wei: int

    @property
    def mean_fee_eth(self) -> str:
        """Mean fee formatted in ETH (what the MetaMask screenshots show)."""
        return format_ether(int(self.mean_fee_wei))

    def to_dict(self) -> dict:
        """JSON-friendly representation."""
        return {
            "category": self.category,
            "count": self.count,
            "mean_gas": self.mean_gas,
            "mean_fee_eth": self.mean_fee_eth,
            "max_fee_eth": format_ether(self.max_fee_wei),
            "total_fee_eth": format_ether(self.total_fee_wei),
        }


@dataclass
class GasCostReport:
    """Per-category rows plus the raw per-transaction records."""

    rows: Dict[str, GasCostRow] = field(default_factory=dict)
    transactions: List[dict] = field(default_factory=list)

    def category(self, name: str) -> Optional[GasCostRow]:
        """Look up one category row (``deployment``, ``cid_submission`` ...)."""
        return self.rows.get(name)

    def ordering_holds(self) -> bool:
        """Check the paper's qualitative claim.

        Deployment must be the most expensive category, and CID submission
        and payment must be within an order of magnitude of each other.
        """
        deployment = self.rows.get("deployment")
        cid = self.rows.get("cid_submission")
        payment = self.rows.get("payment")
        if deployment is None or cid is None or payment is None:
            return False
        heavier_than_others = (
            deployment.mean_fee_wei > cid.mean_fee_wei
            and deployment.mean_fee_wei > payment.mean_fee_wei
        )
        lower, higher = sorted([cid.mean_fee_wei, payment.mean_fee_wei])
        comparable = higher <= 10 * max(lower, 1)
        return heavier_than_others and comparable

    def to_dict(self) -> dict:
        """JSON-friendly representation."""
        return {name: row.to_dict() for name, row in self.rows.items()}


def _categorize(record) -> str:
    """Map an explorer record onto the paper's three categories."""
    if record.transaction.is_create:
        return "deployment"
    payload = record.transaction.decoded_payload()
    method = payload.get("method", "")
    if method == "uploadCid":
        return "cid_submission"
    if method == "payOwner":
        return "payment"
    if method == "registerOwner":
        return "registration"
    if method:
        return "other_contract_interaction"
    return "transfer"


def build_gas_cost_report(chain: Blockchain) -> GasCostReport:
    """Aggregate every on-chain transaction into Fig. 5's categories."""
    explorer = Explorer(chain)
    groups: Dict[str, List] = {}
    transactions: List[dict] = []
    for record in explorer.all_records():
        category = _categorize(record)
        groups.setdefault(category, []).append(record)
        row = record.to_row()
        row["category"] = category
        transactions.append(row)

    rows: Dict[str, GasCostRow] = {}
    for category, records in groups.items():
        fees = [rec.fee_wei for rec in records]
        gas = [rec.receipt.gas_used for rec in records]
        rows[category] = GasCostRow(
            category=category,
            count=len(records),
            mean_gas=sum(gas) / len(gas),
            mean_fee_wei=sum(fees) / len(fees),
            max_fee_wei=max(fees),
            total_fee_wei=sum(fees),
        )
    return GasCostReport(rows=rows, transactions=transactions)


def estimate_onchain_model_storage_gas(chain: Blockchain, model_bytes: int) -> dict:
    """Estimate the gas to store a whole model on-chain vs storing its CID.

    Supports the paper's Step 4 argument: a 32-byte CID occupies one storage
    slot, while a ~317 KB model would need ~10,000 slots plus calldata,
    which is impractical on Ethereum.
    """
    schedule = chain.config.schedule
    slots = (model_bytes + 31) // 32
    model_gas = (
        schedule.tx_base
        + slots * schedule.sstore_set
        + model_bytes * schedule.calldata_nonzero_byte
    )
    cid_gas = schedule.tx_base + schedule.sstore_set + 64 * schedule.calldata_nonzero_byte
    return {
        "model_bytes": model_bytes,
        "storage_slots": slots,
        "model_storage_gas": model_gas,
        "cid_storage_gas": cid_gas,
        "gas_ratio": model_gas / cid_gas,
    }
