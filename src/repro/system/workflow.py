"""The seven-step OFL-W3 workflow (Section 3.2 of the paper).

Step 1  Contract design and deployment (buyer)
Step 2  Local training and model upload to IPFS (owners)
Step 3  Owners receive CIDs from IPFS
Step 4  Owners send CIDs to the smart contract
Step 5  Buyer downloads the CIDs (gas-free read)
Step 6  Buyer retrieves the models from IPFS
Step 7  Buyer aggregates, computes incentives and pays the owners

:class:`OFLW3Workflow` drives :class:`~repro.system.roles.ModelBuyer` and a
list of :class:`~repro.system.roles.ModelOwner` through these steps in order,
enforcing the ordering constraints (e.g. payment before aggregation is a
:class:`~repro.errors.WorkflowError`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.errors import WorkflowError
from repro.system.roles import ModelBuyer, ModelOwner


@dataclass
class WorkflowResult:
    """Raw outputs of every workflow step."""

    task_address: str
    deployment: Dict[str, Any]
    owner_results: List[Dict[str, Any]] = field(default_factory=list)
    cid_listing: Dict[str, Any] = field(default_factory=dict)
    retrieval: Dict[str, Any] = field(default_factory=dict)
    aggregation: Dict[str, Any] = field(default_factory=dict)
    incentives: Dict[str, Any] = field(default_factory=dict)
    payments: Dict[str, Any] = field(default_factory=dict)


class OFLW3Workflow:
    """Coordinates one buyer and many owners through Steps 1-7."""

    def __init__(self, buyer: ModelBuyer, owners: Sequence[ModelOwner]) -> None:
        if not owners:
            raise WorkflowError("the workflow needs at least one model owner")
        self.buyer = buyer
        self.owners = list(owners)
        self._result: Optional[WorkflowResult] = None

    # -- individual steps ---------------------------------------------------------

    def step1_deploy(self, task_spec: Dict[str, Any], budget_wei: int) -> Dict[str, Any]:
        """Step 1: the buyer deploys the task contract with its escrow."""
        deployment = self.buyer.deploy_task(task_spec, budget_wei)
        self._result = WorkflowResult(
            task_address=deployment["contract_address"], deployment=deployment
        )
        return deployment

    def step2_to_4_owner_contributions(self) -> List[Dict[str, Any]]:
        """Steps 2-4: every owner trains, uploads to IPFS and submits its CID."""
        result = self._require_deployed()
        result.owner_results = []
        for owner in self.owners:
            self.record_owner_result(owner.run_full_flow(result.task_address))
        return result.owner_results

    def record_owner_result(self, owner_result: Dict[str, Any]) -> None:
        """Append one owner's flow result to the collected results.

        :meth:`step2_to_4_owner_contributions` runs owners back to back; the
        discrete-event runner (``repro.simnet``) instead drives each owner
        phase-by-phase through the scheduler and records results here as they
        complete.
        """
        self._require_deployed().owner_results.append(owner_result)

    def step5_download_cids(self) -> Dict[str, Any]:
        """Step 5: the buyer lists the CIDs recorded on-chain."""
        result = self._require_deployed()
        result.cid_listing = self.buyer.download_cids()
        return result.cid_listing

    def step6_retrieve_models(self) -> Dict[str, Any]:
        """Step 6: the buyer fetches the models from IPFS."""
        result = self._require_deployed()
        num_samples = {owner.address: len(owner.dataset) for owner in self.owners}
        result.retrieval = self.buyer.retrieve_models(num_samples)
        return result.retrieval

    def step7_aggregate_and_pay(
        self,
        incentive_method: str = "leave_one_out",
        reserve_fraction: float = 0.0,
        min_payment_wei: int = 0,
        **incentive_kwargs,
    ) -> Dict[str, Any]:
        """Step 7: aggregate, compute incentives, and pay the owners."""
        result = self._require_deployed()
        if not result.retrieval:
            raise WorkflowError("Step 6 (retrieve models) must run before Step 7")
        result.aggregation = self.buyer.aggregate()
        result.incentives = self.buyer.compute_incentives(incentive_method, **incentive_kwargs)
        result.payments = self.buyer.pay_owners(
            reserve_fraction=reserve_fraction, min_payment_wei=min_payment_wei
        )
        return result.payments

    # -- end to end -----------------------------------------------------------------

    def run(
        self,
        task_spec: Dict[str, Any],
        budget_wei: int,
        incentive_method: str = "leave_one_out",
        reserve_fraction: float = 0.0,
        min_payment_wei: int = 0,
    ) -> WorkflowResult:
        """Run all seven steps in order and return the collected results."""
        self.step1_deploy(task_spec, budget_wei)
        self.step2_to_4_owner_contributions()
        self.step5_download_cids()
        self.step6_retrieve_models()
        self.step7_aggregate_and_pay(
            incentive_method=incentive_method,
            reserve_fraction=reserve_fraction,
            min_payment_wei=min_payment_wei,
        )
        assert self._result is not None
        return self._result

    # -- helpers ----------------------------------------------------------------------

    def _require_deployed(self) -> WorkflowResult:
        """Guard: Step 1 must have run."""
        if self._result is None:
            raise WorkflowError("Step 1 (contract deployment) has not run yet")
        return self._result

    @property
    def result(self) -> Optional[WorkflowResult]:
        """The workflow's collected results so far (None before Step 1)."""
        return self._result
