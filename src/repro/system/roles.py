"""The two marketplace roles: model owners and the model buyer.

Each role wraps a wallet (on-chain identity), an IPFS node and the relevant
DApp facade, and attributes simulated time to the phases of Fig. 7 while it
executes its part of the workflow.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Dict, Optional

from repro.data.dataset import Dataset
from repro.utils.rng import make_rng
from repro.ipfs.node import IpfsNode
from repro.ml.trainer import TrainingConfig
from repro.system.timing import LatencyModel, TimeBreakdown
from repro.web.backend import BuyerBackend
from repro.web.dapp import BuyerDApp, OwnerDApp
from repro.web.wallet import MetaMaskWallet

OWNER_BLOCKCHAIN_PHASES = ("register_on_chain", "send_cid")
BUYER_BLOCKCHAIN_PHASES = ("contract_deployment", "payment_transactions")


class ModelOwner:
    """A data silo that trains locally and sells its model for tokens."""

    def __init__(
        self,
        name: str,
        wallet: MetaMaskWallet,
        ipfs: IpfsNode,
        dataset: Dataset,
        training_config: Optional[TrainingConfig] = None,
        latency: Optional[LatencyModel] = None,
        seed: Optional[int] = None,
        behavior: Optional[Any] = None,
    ) -> None:
        self.name = name
        self.wallet = wallet
        self.ipfs = ipfs
        self.dataset = dataset
        self.training_config = training_config or TrainingConfig()
        self.latency = latency or LatencyModel()
        self.seed = seed
        #: Optional ``repro.simnet.behaviors.OwnerBehavior``-shaped strategy.
        #: ``None`` (the seed default) is the honest happy path; kept untyped
        #: so the core system layer does not depend on the simulator package.
        self.behavior = behavior
        self._behavior_rng = make_rng(seed if seed is not None else 0,
                                      f"behavior-{name}")
        if behavior is not None:
            self.dataset = behavior.prepare_dataset(dataset, self._behavior_rng)
        self.dapp = OwnerDApp(wallet, ipfs)
        self.breakdown = TimeBreakdown(role=f"owner:{name}")

    # -- helpers ------------------------------------------------------------------

    @property
    def address(self) -> str:
        """The owner's wallet address (appears in the payment table)."""
        return self.wallet.address

    def _timed_chain_call(self, phase: str, fn, *args, **kwargs):
        """Run an on-chain operation, attributing clock movement + confirmation."""
        clock = self.wallet.node.clock
        before = clock.now
        result = fn(*args, **kwargs)
        elapsed = clock.now - before
        self.breakdown.add(phase, elapsed + self.latency.metamask_confirmation_seconds)
        return result

    # -- workflow steps -------------------------------------------------------------

    def join_task(self, contract_address: str) -> Dict[str, Any]:
        """Find the task contract and register as a participant."""
        info = self.dapp.find_task(contract_address)
        self._timed_chain_call("register_on_chain", self.dapp.register)
        return info

    def train(self) -> Dict[str, Any]:
        """Train the local model on private data (off-chain, GPU time)."""
        result = self.dapp.train_local_model(
            self.dataset, config=self.training_config, seed=self.seed
        )
        self.breakdown.add(
            "local_training",
            self.latency.training_time(len(self.dataset), self.training_config.epochs),
        )
        if self.behavior is not None:
            local = self.dapp.session.local_result
            tampered = self.behavior.transform_update(local.update, self._behavior_rng)
            if tampered is not local.update:
                self.dapp.session.local_result = replace(local, update=tampered)
        return result

    def upload_model(self) -> Dict[str, Any]:
        """Upload the model payload to IPFS (Steps 2-3)."""
        if self.behavior is not None:
            dawdle = self.behavior.extra_upload_delay(self._behavior_rng)
            if dawdle > 0:
                # The straggler sits on its trained model: simulated time
                # passes for everyone sharing the clock, and the wait shows
                # up in this owner's Fig. 7 breakdown.
                self.wallet.node.clock.advance(dawdle)
                self.breakdown.add("straggle_wait", dawdle)
        result = self.dapp.upload_model()
        self.breakdown.add("model_upload_ipfs", self.latency.transfer_time(result["payload_bytes"]))
        return result

    def submit_cid(self) -> Dict[str, Any]:
        """Publish the model's CID on the contract (Step 4, paid transaction)."""
        return self._timed_chain_call("send_cid", self.dapp.submit_cid)

    @property
    def archetype(self) -> str:
        """Behavior archetype name ("honest" when no behavior is attached)."""
        return self.behavior.archetype if self.behavior is not None else "honest"

    def drops_out_before(self, phase: str) -> bool:
        """Whether this owner's behavior churns out before ``phase``."""
        if self.behavior is None:
            return False
        return self.behavior.drop_phase == phase

    def dropped_result(self, phase: str, **partial: Any) -> Dict[str, Any]:
        """Result dict for an owner that churned out before ``phase``."""
        return {
            "owner": self.address,
            "archetype": self.archetype,
            "dropped_out": True,
            "dropped_before": phase,
            "total_time": self.breakdown.total,
            **partial,
        }

    def iter_flow(self, contract_address: str, submit=None):
        """The owner-side workflow as a generator, one phase per step.

        Yields ``0.0`` after each phase so a discrete-event scheduler
        (``repro.simnet``) can interleave many owners/tasks; returns
        ``(result_dict, submitted)`` where ``submitted`` says whether a CID
        landed on-chain.  ``submit`` optionally replaces the synchronous CID
        submission with another generator (e.g. the runner's fire-and-forget
        broadcast + receipt poll).  :meth:`run_full_flow` drives this same
        ladder to completion sequentially, so both paths stay identical.
        """
        self.join_task(contract_address)
        yield 0.0
        if self.drops_out_before("train"):
            return self.dropped_result("train"), False
        training = self.train()
        yield 0.0
        if self.drops_out_before("upload"):
            return self.dropped_result("upload", training=training), False
        upload = self.upload_model()
        yield 0.0
        if self.drops_out_before("submit"):
            return self.dropped_result("submit", training=training, upload=upload), False
        submission = self.submit_cid() if submit is None else (yield from submit())
        return {
            "owner": self.address,
            "archetype": self.archetype,
            "dropped_out": False,
            "training": training,
            "upload": upload,
            "submission": submission,
            "total_time": self.breakdown.total,
        }, True

    def run_full_flow(self, contract_address: str) -> Dict[str, Any]:
        """Execute the complete owner-side workflow for one task.

        An owner whose behavior churns out mid-flow returns a partial result
        with ``dropped_out=True`` instead of raising: from the marketplace's
        point of view, a churner is silence, not an error.
        """
        flow = self.iter_flow(contract_address)
        while True:
            try:
                next(flow)
            except StopIteration as stop:
                result, _submitted = stop.value
                return result

    # -- reporting ---------------------------------------------------------------------

    def blockchain_time_fraction(self) -> float:
        """Fraction of this owner's time spent on blockchain interaction."""
        return self.breakdown.blockchain_fraction(OWNER_BLOCKCHAIN_PHASES)

    def payment_received_wei(self) -> int:
        """Payment recorded for this owner on the task contract."""
        if self.dapp.session.task_address is None:
            return 0
        payments = self.wallet.read_contract(self.dapp.session.task_address, "payments")
        return int(payments.get(self.address, 0))


class ModelBuyer:
    """The party that funds the task, aggregates the models and pays owners."""

    def __init__(
        self,
        wallet: MetaMaskWallet,
        ipfs: IpfsNode,
        test_dataset: Dataset,
        aggregator_name: str = "pfnm",
        aggregator_kwargs: Optional[Dict[str, Any]] = None,
        latency: Optional[LatencyModel] = None,
    ) -> None:
        self.wallet = wallet
        self.ipfs = ipfs
        self.test_dataset = test_dataset
        self.latency = latency or LatencyModel()
        self.backend = BuyerBackend(
            wallet=wallet,
            ipfs=ipfs,
            test_dataset=test_dataset,
            aggregator_name=aggregator_name,
            aggregator_kwargs=aggregator_kwargs,
        )
        self.dapp = BuyerDApp(self.backend)
        self.breakdown = TimeBreakdown(role="buyer")
        self.last_aggregation: Optional[Dict[str, Any]] = None
        self.last_incentives: Optional[Dict[str, Any]] = None
        self.last_payments: Optional[Dict[str, Any]] = None

    # -- helpers ------------------------------------------------------------------

    @property
    def address(self) -> str:
        """The buyer's wallet address."""
        return self.wallet.address

    @property
    def task_address(self) -> Optional[str]:
        """Address of the deployed task contract (after Step 1)."""
        return self.dapp.task_address

    def _timed_chain(self, phase: str, fn, *args, **kwargs):
        """Attribute chain-clock movement plus a confirmation to ``phase``."""
        clock = self.wallet.node.clock
        before = clock.now
        result = fn(*args, **kwargs)
        elapsed = clock.now - before
        self.breakdown.add(phase, elapsed + self.latency.metamask_confirmation_seconds)
        return result

    # -- workflow steps -------------------------------------------------------------

    def deploy_task(self, spec: Dict[str, Any], budget_wei: int) -> Dict[str, Any]:
        """Step 1: design and deploy the task contract with the escrow."""
        return self._timed_chain("contract_deployment", self.dapp.deploy_task, spec, budget_wei)

    def download_cids(self) -> Dict[str, Any]:
        """Step 5: read the CIDs from the chain (gas-free, still a network read)."""
        result = self.dapp.download_cids()
        self.breakdown.add("download_cids", self.latency.ipfs_overhead_seconds)
        return result

    def retrieve_models(self, num_samples: Optional[Dict[str, int]] = None) -> Dict[str, Any]:
        """Step 6: fetch every model from IPFS onto the backend workstation."""
        result = self.dapp.retrieve_models(num_samples)
        self.breakdown.add("model_retrieval", self.latency.transfer_time(result["total_bytes"]))
        return result

    def aggregate(self, algorithm: Optional[str] = None) -> Dict[str, Any]:
        """Step 7a: run the one-shot aggregation."""
        result = self.dapp.aggregate(algorithm)
        self.breakdown.add("aggregation", self.latency.aggregation_time(result["num_updates"]))
        self.last_aggregation = result
        return result

    def compute_incentives(self, method: str = "leave_one_out", **kwargs) -> Dict[str, Any]:
        """Step 7b: measure contributions (payment calculation)."""
        result = self.dapp.compute_incentives(method, **kwargs)
        evaluations = int(result.get("num_evaluations", 0))
        self.breakdown.add(
            "payment_calculation",
            self.latency.incentive_time(evaluations) + self.latency.payment_calculation_seconds,
        )
        self.last_incentives = result
        return result

    def pay_owners(self, reserve_fraction: float = 0.0, min_payment_wei: int = 0) -> Dict[str, Any]:
        """Step 7c: execute the on-chain payments."""
        result = self._timed_chain(
            "payment_transactions", self.dapp.pay_owners, reserve_fraction, min_payment_wei
        )
        # One MetaMask confirmation per payment (the timed helper added one).
        extra_confirmations = max(0, len(result.get("payments", [])) - 1)
        self.breakdown.add(
            "payment_transactions",
            extra_confirmations * self.latency.metamask_confirmation_seconds,
        )
        self.last_payments = result
        return result

    # -- reporting ---------------------------------------------------------------------

    def blockchain_time_fraction(self) -> float:
        """Fraction of the buyer's time spent on blockchain interaction."""
        return self.breakdown.blockchain_fraction(BUYER_BLOCKCHAIN_PHASES)

    def results(self) -> Dict[str, Any]:
        """Consolidated results screen from the backend."""
        return self.dapp.results()
