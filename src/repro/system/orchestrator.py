"""End-to-end experiment driver.

:func:`run_marketplace` builds the entire simulated Web 3.0 environment --
blockchain node, contract registry, IPFS swarm, synthetic dataset, wallets,
one buyer and N owners -- runs the seven-step workflow and collects every
quantity the paper's evaluation section reports:

* Fig. 4 -- local model accuracies vs the aggregated model's accuracy;
* Fig. 5 -- gas fees per transaction category;
* Fig. 6 -- leave-one-out drop accuracies;
* Table 1 -- the per-wallet payment table;
* Fig. 7 -- the execution-time breakdown for owners and the buyer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.chain.chain import ChainConfig
from repro.chain.faucet import Faucet
from repro.chain.node import EthereumNode
from repro.contracts.registry import default_registry
from repro.data.dataset import Dataset, train_test_split
from repro.data.partition import partition_dataset
from repro.data.synthetic_mnist import SyntheticMnistConfig, generate_synthetic_mnist
from repro.ipfs.blockstore import BlockStore
from repro.ipfs.node import IpfsNode
from repro.ipfs.swarm import Swarm
from repro.ml.trainer import TrainingConfig
from repro.rpc.client import MarketplaceClient
from repro.rpc.gateway import JsonRpcGateway
from repro.storage.engine import StorageConfig, StorageEngine, ensure_engine
from repro.system.config import OFLW3Config
from repro.system.costs import GasCostReport, build_gas_cost_report
from repro.system.roles import ModelBuyer, ModelOwner
from repro.system.timing import LatencyModel, TimeBreakdown, merge_breakdowns
from repro.system.workflow import OFLW3Workflow, WorkflowResult
from repro.utils.clock import SimulatedClock
from repro.utils.rng import derive_seed
from repro.utils.units import format_ether
from repro.web.wallet import MetaMaskWallet
from repro.chain.keys import KeyPair


@dataclass
class MarketplaceEnvironment:
    """Every live object of one marketplace run (useful for inspection/tests)."""

    config: OFLW3Config
    node: EthereumNode
    faucet: Faucet
    swarm: Swarm
    buyer: ModelBuyer
    owners: List[ModelOwner]
    train_dataset: Dataset
    test_dataset: Dataset
    workflow: OFLW3Workflow
    gateway: Optional[JsonRpcGateway] = None
    storage: Optional[StorageEngine] = None
    #: The replication cluster behind ``node`` when the environment was built
    #: with ``cluster=N`` (``repro.cluster``); ``None`` for a single node.
    cluster: Optional[Any] = None


@dataclass
class MarketplaceReport:
    """Everything the paper's evaluation section reports, for one run."""

    config: OFLW3Config
    owner_addresses: List[str]
    local_accuracies_by_owner: Dict[str, float]
    aggregate_accuracy: float
    aggregate_algorithm: str
    loo_drop_accuracies: Dict[str, float]
    contributions: Dict[str, float]
    payments_wei: Dict[str, int]
    gas_report: GasCostReport
    owner_breakdowns: List[TimeBreakdown]
    buyer_breakdown: TimeBreakdown
    model_payload_bytes: int
    ipfs_bytes_transferred: int
    workflow_result: WorkflowResult
    model_payload_bytes_by_owner: Dict[str, int] = field(default_factory=dict)
    total_model_payload_bytes: int = 0

    # -- Fig. 4 ---------------------------------------------------------------------

    @property
    def local_accuracies(self) -> List[float]:
        """Local model accuracies in owner order (the bars of Fig. 4).

        Owners with no entry (churned out or lost their submission in a
        simnet scenario) have no bar; with full participation this is one
        accuracy per owner, in owner order.
        """
        return [
            self.local_accuracies_by_owner[a]
            for a in self.owner_addresses
            if a in self.local_accuracies_by_owner
        ]

    @property
    def accuracy_margin_over_worst(self) -> float:
        """Aggregate accuracy minus the worst local accuracy (the 58.87 pp claim)."""
        return self.aggregate_accuracy - min(self.local_accuracies)

    # -- Fig. 6 ---------------------------------------------------------------------

    @property
    def drop_accuracies(self) -> List[float]:
        """Leave-one-out accuracies in owner order (the bars of Fig. 6).

        As with :attr:`local_accuracies`, owners that never contributed a
        model have no entry.
        """
        return [
            self.loo_drop_accuracies[a]
            for a in self.owner_addresses
            if a in self.loo_drop_accuracies
        ]

    @property
    def least_useful_owner(self) -> str:
        """Address of the owner whose removal hurts the least (paper: model 7)."""
        return max(self.loo_drop_accuracies.items(), key=lambda item: item[1])[0]

    # -- Table 1 ---------------------------------------------------------------------

    def payment_rows(self) -> List[dict]:
        """Payment table rows (wallet address, payment in ETH)."""
        return [
            {"wallet_address": address, "payment_eth": format_ether(self.payments_wei.get(address, 0))}
            for address in self.owner_addresses
        ]

    @property
    def total_paid_wei(self) -> int:
        """Total wei paid out to owners."""
        return sum(self.payments_wei.values())

    # -- Fig. 7 ---------------------------------------------------------------------

    def owner_time_breakdown(self) -> TimeBreakdown:
        """Average owner-side time breakdown."""
        return merge_breakdowns(self.owner_breakdowns, role="owner")

    def to_dict(self) -> dict:
        """JSON-friendly summary (used by the examples to print reports)."""
        return {
            "aggregate_accuracy": self.aggregate_accuracy,
            "aggregate_algorithm": self.aggregate_algorithm,
            "local_accuracies": self.local_accuracies,
            "accuracy_margin_over_worst": self.accuracy_margin_over_worst,
            "drop_accuracies": self.drop_accuracies,
            "payments": {a: format_ether(w) for a, w in self.payments_wei.items()},
            "gas": self.gas_report.to_dict(),
            "owner_time": self.owner_time_breakdown().to_dict(),
            "buyer_time": self.buyer_breakdown.to_dict(),
            "model_payload_bytes": self.model_payload_bytes,
            "model_payload_bytes_by_owner": dict(self.model_payload_bytes_by_owner),
            "total_model_payload_bytes": self.total_model_payload_bytes,
        }


def build_environment(
    config: Optional[OFLW3Config] = None,
    *,
    node: Optional[EthereumNode] = None,
    faucet: Optional[Faucet] = None,
    swarm: Optional[Swarm] = None,
    gateway: Optional[JsonRpcGateway] = None,
    label_prefix: str = "",
    behaviors: Optional[List[Any]] = None,
    storage: Optional[Any] = None,
    cluster: Optional[int] = None,
    parallel: Optional[int] = None,
) -> MarketplaceEnvironment:
    """Construct (but do not run) the full marketplace environment.

    With no keyword arguments this builds the seed's single-task world: its
    own chain node, faucet and fully-meshed swarm.  The discrete-event
    scenario runner (``repro.simnet``) instead passes shared infrastructure
    (one node/faucet/swarm -- and one JSON-RPC ``gateway`` -- for many
    concurrent tasks), a ``label_prefix`` that keeps wallet key labels and
    IPFS node names collision-free across tasks, and per-owner ``behaviors``
    (archetypes from ``repro.simnet.behaviors``; ``None`` entries are honest
    owners).

    Every wallet and facade in the environment routes its chain/IPFS/backend
    access through the one gateway, so all marketplace traffic crosses a
    single meterable JSON-RPC boundary.

    ``storage`` is a :class:`~repro.storage.StorageConfig` or
    :class:`~repro.storage.StorageEngine`.  The default is an in-memory
    engine, which is bit-for-bit invisible to the experiment; pass a
    log-backed config (CLI: ``python -m repro run --store DIR``) to persist
    the chain WAL, periodic snapshots and every IPFS block under a
    directory that survives the process.

    ``cluster=N`` replaces the single chain node with an N-replica
    replication cluster (``repro.cluster``): the environment's ``node``
    becomes a :class:`~repro.cluster.ClusterNode` gateway that load-balances
    caught-up reads across replicas and routes every write to the current
    rotation leader, and ``env.cluster`` exposes the cluster control plane.

    ``parallel=W`` turns on wave-parallel block production with W worker
    threads (``repro.parallel``) -- on the single node, or on every replica
    of a ``cluster=N`` deployment (followers still re-verify serially).
    ``None`` keeps the seed's serial block loop.
    """
    config = config or OFLW3Config()
    if cluster is not None and node is not None:
        raise ValueError("pass either a pre-built node or cluster=N, not both")
    if parallel is not None and node is not None:
        raise ValueError(
            "pass either a pre-built node or parallel=W, not both; enable it "
            "on the node via EthereumNode(parallel_execution=W) instead")
    if storage is not None:
        engine = ensure_engine(storage)
    elif node is not None and getattr(node, "storage", None) is not None:
        engine = node.storage  # the caller's node already persists; share it
    else:
        engine = StorageEngine(StorageConfig())
    chain_cluster = None
    if cluster is not None:
        from repro.cluster import ChainCluster, ClusterConfig, ClusterNode

        chain_cluster = ChainCluster(
            ClusterConfig(replicas=cluster, seed=config.seed,
                          parallel_execution=parallel),
            clock=SimulatedClock(),
            registry=default_registry(),
            storage=engine,
        )
        node = ClusterNode(chain_cluster)
    if node is None:
        clock = SimulatedClock()
        node = EthereumNode(config=ChainConfig(), backend=default_registry(),
                            clock=clock, storage=engine,
                            parallel_execution=parallel)
    faucet = faucet or Faucet(node)
    latency = LatencyModel()
    if behaviors is not None and len(behaviors) != config.num_owners:
        raise ValueError(
            f"behaviors must have one entry per owner "
            f"({config.num_owners}), got {len(behaviors)}")

    # Dataset: synthetic MNIST stand-in, split, then partitioned across owners.
    dataset = generate_synthetic_mnist(
        SyntheticMnistConfig(
            num_samples=config.num_samples,
            class_similarity=config.class_similarity,
            noise_scale=config.noise_scale,
            variation_scale=config.variation_scale,
            variation_rank=config.variation_rank,
            label_noise=config.label_noise,
            seed=config.seed,
        )
    )
    train_dataset, test_dataset = train_test_split(
        dataset, config.test_fraction, rng=derive_seed(config.seed, "split")
    )
    partition_kwargs: Dict[str, Any] = {}
    if config.partition_scheme == "dirichlet":
        partition_kwargs["alpha"] = config.partition_alpha
    elif config.partition_scheme == "label_skew":
        partition_kwargs["classes_per_client"] = config.classes_per_client
    client_datasets = partition_dataset(
        train_dataset,
        config.num_owners,
        scheme=config.partition_scheme,
        rng=derive_seed(config.seed, "partition"),
        **partition_kwargs,
    )

    # IPFS swarm: one node for the buyer, one per owner, fully meshed (LAN).
    # Each node's block store sits on its own blob namespace of the storage
    # engine, fronted by the engine's shared LRU read cache.
    swarm = swarm if swarm is not None else Swarm()

    def _ipfs_node(name: str) -> IpfsNode:
        return IpfsNode(
            name, swarm,
            blockstore=BlockStore(space=engine.blob_space(f"ipfs/{name}")),
        )

    buyer_ipfs = _ipfs_node(f"{label_prefix}buyer")
    owner_ipfs_nodes = [
        _ipfs_node(f"{label_prefix}owner-{i}") for i in range(config.num_owners)
    ]
    swarm.connect_all()

    # The one JSON-RPC door to the stack; every wallet/facade gets a client
    # bound to it (the scenario runner passes one shared gateway instead).
    if gateway is None:
        gateway = JsonRpcGateway(node=node, swarm=swarm)
    if gateway.storage is None:
        gateway.attach_storage(engine)

    # Wallets, funded by the faucet.
    buyer_keys = KeyPair.from_label(f"{label_prefix}buyer-{config.seed}")
    buyer_wallet = MetaMaskWallet(
        buyer_keys, node, gas_price_wei=config.gas_price_wei,
        rpc=MarketplaceClient(gateway, default_ipfs_node=buyer_ipfs.name),
    )
    faucet.drip(buyer_keys.address, config.buyer_funding_wei)

    buyer = ModelBuyer(
        wallet=buyer_wallet,
        ipfs=buyer_ipfs,
        test_dataset=test_dataset,
        aggregator_name=config.aggregator,
        aggregator_kwargs=config.aggregator_kwargs,
        latency=latency,
    )

    training_config = TrainingConfig(
        batch_size=config.batch_size,
        learning_rate=config.learning_rate,
        epochs=config.local_epochs,
        seed=config.seed,
    )
    owners: List[ModelOwner] = []
    for index in range(config.num_owners):
        keys = KeyPair.from_label(f"{label_prefix}owner-{index}-{config.seed}")
        wallet = MetaMaskWallet(
            keys, node, gas_price_wei=config.gas_price_wei,
            rpc=MarketplaceClient(gateway, default_ipfs_node=owner_ipfs_nodes[index].name),
        )
        faucet.drip(keys.address, config.owner_funding_wei)
        owners.append(
            ModelOwner(
                name=f"{label_prefix}owner-{index}",
                wallet=wallet,
                ipfs=owner_ipfs_nodes[index],
                dataset=client_datasets[index],
                training_config=training_config,
                latency=latency,
                seed=derive_seed(config.seed, f"owner-model-{index}"),
                behavior=behaviors[index] if behaviors is not None else None,
            )
        )

    workflow = OFLW3Workflow(buyer=buyer, owners=owners)
    return MarketplaceEnvironment(
        config=config,
        node=node,
        faucet=faucet,
        swarm=swarm,
        buyer=buyer,
        owners=owners,
        train_dataset=train_dataset,
        test_dataset=test_dataset,
        workflow=workflow,
        gateway=gateway,
        storage=engine,
        cluster=chain_cluster,
    )


def default_task_spec(config: OFLW3Config) -> Dict[str, Any]:
    """The task specification the buyer publishes in Step 1."""
    return {
        "task": "digit-classification",
        "model": list(config.layer_sizes),
        "algorithm": config.aggregator,
        "dataset": "synthetic-mnist",
        "max_owners": config.num_owners,
        "batch_size": config.batch_size,
        "learning_rate": config.learning_rate,
        "local_epochs": config.local_epochs,
    }


def build_marketplace_report(
    env: MarketplaceEnvironment, workflow_result: WorkflowResult
) -> MarketplaceReport:
    """Assemble the evaluation report from a completed workflow run.

    Shared by :func:`run_marketplace` (one sequential task) and the
    discrete-event scenario runner (``repro.simnet``), which executes many
    workflows against one shared chain and reports each one separately.
    """
    config = env.config
    owner_addresses = [owner.address for owner in env.owners]
    aggregation = workflow_result.aggregation
    incentives = workflow_result.incentives

    # Contribution / drop accuracies come back keyed by the update index;
    # updates were retrieved in CID submission order, which matches owner order.
    uploaders = workflow_result.retrieval.get("uploaders", owner_addresses)
    index_to_address = {str(i): uploaders[i] for i in range(len(uploaders))}
    drop_accuracies = {
        index_to_address[idx]: value
        for idx, value in incentives.get("drop_values", {}).items()
    }
    contributions = {
        index_to_address[idx]: value for idx, value in incentives.get("scores", {}).items()
    }

    payments_wei = {
        address: int(amount)
        for address, amount in env.buyer.backend.tasks[workflow_result.task_address].payments.items()
    }

    # Per-owner payload sizes; owners that churned out before uploading simply
    # have no entry.  ``model_payload_bytes`` keeps its historical meaning of
    # "the size of one model payload" (the first uploaded one).
    payload_bytes_by_owner = {
        result["owner"]: int(result["upload"]["payload_bytes"])
        for result in workflow_result.owner_results
        if result.get("upload")
    }
    model_payload_bytes = next(iter(payload_bytes_by_owner.values()), 0)

    return MarketplaceReport(
        config=config,
        owner_addresses=owner_addresses,
        local_accuracies_by_owner=dict(aggregation.get("local_accuracies", {})),
        aggregate_accuracy=float(aggregation.get("aggregate_accuracy", 0.0)),
        aggregate_algorithm=str(aggregation.get("algorithm", config.aggregator)),
        loo_drop_accuracies=drop_accuracies,
        contributions=contributions,
        payments_wei=payments_wei,
        gas_report=build_gas_cost_report(env.node.chain),
        owner_breakdowns=[owner.breakdown for owner in env.owners],
        buyer_breakdown=env.buyer.breakdown,
        model_payload_bytes=model_payload_bytes,
        ipfs_bytes_transferred=env.swarm.total_bytes_transferred(),
        workflow_result=workflow_result,
        model_payload_bytes_by_owner=payload_bytes_by_owner,
        total_model_payload_bytes=sum(payload_bytes_by_owner.values()),
    )


def run_marketplace(
    config: Optional[OFLW3Config] = None,
    environment: Optional[MarketplaceEnvironment] = None,
) -> MarketplaceReport:
    """Run the full marketplace and collect the evaluation report."""
    env = environment or build_environment(config)
    config = env.config

    workflow_result = env.workflow.run(
        default_task_spec(config),
        budget_wei=config.budget_wei,
        incentive_method=config.incentive_method,
        reserve_fraction=config.reserve_fraction,
        min_payment_wei=config.min_payment_wei,
    )
    return build_marketplace_report(env, workflow_result)
