"""System-level orchestration of the OFL-W3 marketplace.

This package ties every substrate together into the workflow of the paper's
Section 3.2 (Steps 1-7) and drives the experiments of Section 4:

* :mod:`repro.system.config` -- experiment configuration (paper-scale and
  test-scale presets);
* :mod:`repro.system.timing` -- the latency model behind the execution-time
  breakdown (Fig. 7);
* :mod:`repro.system.roles` -- :class:`ModelBuyer` and :class:`ModelOwner`;
* :mod:`repro.system.workflow` -- the seven-step marketplace workflow;
* :mod:`repro.system.orchestrator` -- ``run_marketplace``: build everything,
  run the workflow, and return a consolidated experiment report;
* :mod:`repro.system.costs` -- gas/fee analysis (Fig. 5).
"""

from repro.system.config import OFLW3Config, paper_config, quick_config
from repro.system.costs import GasCostReport, build_gas_cost_report
from repro.system.orchestrator import (
    MarketplaceReport,
    build_environment,
    build_marketplace_report,
    default_task_spec,
    run_marketplace,
)
from repro.system.roles import ModelBuyer, ModelOwner
from repro.system.timing import LatencyModel, TimeBreakdown
from repro.system.workflow import OFLW3Workflow

__all__ = [
    "OFLW3Config",
    "paper_config",
    "quick_config",
    "GasCostReport",
    "build_gas_cost_report",
    "MarketplaceReport",
    "build_environment",
    "build_marketplace_report",
    "default_task_spec",
    "run_marketplace",
    "ModelBuyer",
    "ModelOwner",
    "LatencyModel",
    "TimeBreakdown",
    "OFLW3Workflow",
]
