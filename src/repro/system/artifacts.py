"""Saving and loading experiment artifacts.

Experiment reports are plain dataclasses full of NumPy-free scalars once
rendered through ``to_dict``; this module writes them to JSON files so that
benchmark runs, CLI invocations and notebooks can persist and reload results
(e.g. to diff two configurations without re-running the marketplace).
"""

from __future__ import annotations

import json
from dataclasses import asdict, is_dataclass
from pathlib import Path
from typing import Any, Dict, Union

from repro.system.config import OFLW3Config
from repro.system.orchestrator import MarketplaceReport

PathLike = Union[str, Path]


def _json_default(value: Any) -> Any:
    """Fallback encoder for dataclasses, NumPy scalars and bytes."""
    if is_dataclass(value) and not isinstance(value, type):
        return asdict(value)
    if isinstance(value, (bytes, bytearray)):
        return "0x" + bytes(value).hex()
    if hasattr(value, "item"):  # NumPy scalar
        return value.item()
    if hasattr(value, "tolist"):  # NumPy array
        return value.tolist()
    raise TypeError(f"cannot serialize {type(value).__name__} to JSON")


def report_to_dict(report: MarketplaceReport) -> Dict[str, Any]:
    """Flatten a :class:`MarketplaceReport` into a JSON-safe dictionary.

    The full workflow transcript is omitted (it contains live objects); the
    persisted artifact holds everything needed to re-render the paper's
    tables and figures.
    """
    return {
        "schema": "oflw3-marketplace-report/v1",
        "config": asdict(report.config),
        "owner_addresses": list(report.owner_addresses),
        "local_accuracies_by_owner": dict(report.local_accuracies_by_owner),
        "aggregate_accuracy": report.aggregate_accuracy,
        "aggregate_algorithm": report.aggregate_algorithm,
        "loo_drop_accuracies": dict(report.loo_drop_accuracies),
        "contributions": dict(report.contributions),
        "payments_wei": {k: int(v) for k, v in report.payments_wei.items()},
        "gas": report.gas_report.to_dict(),
        "owner_time": report.owner_time_breakdown().to_dict(),
        "buyer_time": report.buyer_breakdown.to_dict(),
        "model_payload_bytes": report.model_payload_bytes,
        "model_payload_bytes_by_owner": {
            k: int(v) for k, v in report.model_payload_bytes_by_owner.items()
        },
        "total_model_payload_bytes": report.total_model_payload_bytes,
        "ipfs_bytes_transferred": report.ipfs_bytes_transferred,
        "task_address": report.workflow_result.task_address,
    }


def save_json(payload: Dict[str, Any], path: PathLike) -> Path:
    """Write any report payload to ``path`` as *canonical* pretty JSON.

    Keys are sorted at every nesting level, so two runs that produce equal
    payloads produce byte-identical files -- saved reports diff cleanly no
    matter what insertion order the producing dictionaries had.  Every
    ``--save`` flag in the CLI funnels through here.
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(
        json.dumps(payload, indent=2, sort_keys=True, default=_json_default) + "\n"
    )
    return target


def save_report(report: MarketplaceReport, path: PathLike) -> Path:
    """Write a marketplace report to ``path`` as pretty-printed JSON."""
    return save_json(report_to_dict(report), path)


def load_report(path: PathLike) -> Dict[str, Any]:
    """Load a previously saved report as a plain dictionary.

    The loader validates the schema marker and reconstructs the
    :class:`OFLW3Config` under the ``"config"`` key so that downstream code
    can treat the artifact like a fresh run's summary.
    """
    payload = json.loads(Path(path).read_text())
    schema = payload.get("schema")
    if schema != "oflw3-marketplace-report/v1":
        raise ValueError(f"unrecognized report schema: {schema!r}")
    config_fields = payload.get("config", {})
    try:
        payload["config"] = OFLW3Config(**config_fields)
    except TypeError:
        # Forward compatibility: keep the raw dict if fields do not line up.
        payload["config"] = config_fields
    return payload


def summarize_report(payload: Dict[str, Any]) -> str:
    """One-paragraph human summary of a saved report (used by the CLI)."""
    locals_by_owner = payload["local_accuracies_by_owner"]
    local_values = list(locals_by_owner.values())
    lines = [
        f"task contract:        {payload.get('task_address')}",
        f"aggregation:          {payload['aggregate_algorithm']}",
        f"aggregate accuracy:   {payload['aggregate_accuracy']:.4f}",
        f"local accuracy range: {min(local_values):.4f} - {max(local_values):.4f}"
        f" ({len(local_values)} owners)",
        f"total paid:           {sum(payload['payments_wei'].values()) / 1e18:.8f} ETH",
        f"model payload:        {payload['model_payload_bytes'] / 1024:.1f} KB",
    ]
    total_payload = payload.get("total_model_payload_bytes")
    if total_payload:
        per_owner = payload.get("model_payload_bytes_by_owner", {})
        lines.append(
            f"payload total:        {total_payload / 1024:.1f} KB "
            f"across {len(per_owner)} uploads"
        )
    return "\n".join(lines)
