"""Gradient-descent optimizers."""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.ml.layers import DenseLayer


class Optimizer:
    """Base class: applies per-layer parameter updates from stored gradients."""

    def step(self, layers: List[DenseLayer]) -> None:
        """Update every layer's parameters in place from its gradients."""
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(self, learning_rate: float = 0.001, momentum: float = 0.0,
                 weight_decay: float = 0.0) -> None:
        if learning_rate <= 0:
            raise ValueError(f"learning rate must be positive, got {learning_rate}")
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.learning_rate = learning_rate
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: Dict[int, Dict[str, np.ndarray]] = {}

    def step(self, layers: List[DenseLayer]) -> None:
        """Apply one SGD update to every layer."""
        for index, layer in enumerate(layers):
            grads = layer.get_gradients()
            if self.weight_decay:
                grads = {
                    "weights": grads["weights"] + self.weight_decay * layer.weights,
                    "biases": grads["biases"],
                }
            if self.momentum:
                state = self._velocity.setdefault(
                    index,
                    {"weights": np.zeros_like(layer.weights), "biases": np.zeros_like(layer.biases)},
                )
                state["weights"] = self.momentum * state["weights"] - self.learning_rate * grads["weights"]
                state["biases"] = self.momentum * state["biases"] - self.learning_rate * grads["biases"]
                layer.weights += state["weights"]
                layer.biases += state["biases"]
            else:
                layer.weights -= self.learning_rate * grads["weights"]
                layer.biases -= self.learning_rate * grads["biases"]


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba, 2015).

    The paper trains local models with a learning rate of 0.001, the Adam
    default, so Adam is the trainer's default optimizer.
    """

    def __init__(self, learning_rate: float = 0.001, beta1: float = 0.9,
                 beta2: float = 0.999, epsilon: float = 1e-8) -> None:
        if learning_rate <= 0:
            raise ValueError(f"learning rate must be positive, got {learning_rate}")
        self.learning_rate = learning_rate
        self.beta1 = beta1
        self.beta2 = beta2
        self.epsilon = epsilon
        self._step_count = 0
        self._first_moment: Dict[int, Dict[str, np.ndarray]] = {}
        self._second_moment: Dict[int, Dict[str, np.ndarray]] = {}

    def step(self, layers: List[DenseLayer]) -> None:
        """Apply one Adam update to every layer."""
        self._step_count += 1
        for index, layer in enumerate(layers):
            grads = layer.get_gradients()
            m_state = self._first_moment.setdefault(
                index,
                {"weights": np.zeros_like(layer.weights), "biases": np.zeros_like(layer.biases)},
            )
            v_state = self._second_moment.setdefault(
                index,
                {"weights": np.zeros_like(layer.weights), "biases": np.zeros_like(layer.biases)},
            )
            for key, param in (("weights", layer.weights), ("biases", layer.biases)):
                grad = grads[key]
                m_state[key] = self.beta1 * m_state[key] + (1 - self.beta1) * grad
                v_state[key] = self.beta2 * v_state[key] + (1 - self.beta2) * grad**2
                m_hat = m_state[key] / (1 - self.beta1**self._step_count)
                v_hat = v_state[key] / (1 - self.beta2**self._step_count)
                param -= self.learning_rate * m_hat / (np.sqrt(v_hat) + self.epsilon)
