"""Model (de)serialization into the byte payloads stored on IPFS.

Models travel as a small JSON header (architecture, dtype, shapes) followed
by the raw little-endian float32 parameter buffer.  For the paper's
(784, 100, 10) MLP the payload is 79,510 float32 values ~= 318 KB -- matching
the "models in our experiments occupy 317Kb" figure in the paper's overhead
analysis.
"""

from __future__ import annotations

import json
from typing import List, Sequence

import numpy as np

from repro.errors import SerializationError
from repro.ml.mlp import MLP

_MAGIC = b"OFLW3MODEL1\n"
_DTYPE = "<f4"


def serialize_model(model: MLP) -> bytes:
    """Encode a model's architecture and parameters into bytes."""
    header = {
        "layer_sizes": list(model.layer_sizes),
        "dtype": _DTYPE,
        "format": "dense-layers-v1",
    }
    header_bytes = json.dumps(header, sort_keys=True).encode("utf-8")
    buffers: List[bytes] = []
    for params in model.get_parameters():
        buffers.append(np.ascontiguousarray(params["weights"], dtype=_DTYPE).tobytes())
        buffers.append(np.ascontiguousarray(params["biases"], dtype=_DTYPE).tobytes())
    return _MAGIC + len(header_bytes).to_bytes(4, "big") + header_bytes + b"".join(buffers)


def deserialize_model(payload: bytes) -> MLP:
    """Rebuild a model from :func:`serialize_model` output.

    Raises
    ------
    SerializationError
        If the payload is truncated, has the wrong magic or the parameter
        buffer does not match the declared architecture.
    """
    payload = bytes(payload)
    if not payload.startswith(_MAGIC):
        raise SerializationError("payload does not start with the model magic header")
    offset = len(_MAGIC)
    if len(payload) < offset + 4:
        raise SerializationError("payload truncated before header length")
    header_len = int.from_bytes(payload[offset:offset + 4], "big")
    offset += 4
    if len(payload) < offset + header_len:
        raise SerializationError("payload truncated inside the JSON header")
    try:
        header = json.loads(payload[offset:offset + header_len].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise SerializationError(f"corrupt model header: {exc}") from exc
    offset += header_len
    layer_sizes = header.get("layer_sizes")
    if not isinstance(layer_sizes, list) or len(layer_sizes) < 2:
        raise SerializationError(f"invalid layer sizes in header: {layer_sizes!r}")

    dtype = np.dtype(header.get("dtype", _DTYPE))
    body = payload[offset:]
    expected_values = sum(
        fan_in * fan_out + fan_out for fan_in, fan_out in zip(layer_sizes[:-1], layer_sizes[1:])
    )
    if len(body) != expected_values * dtype.itemsize:
        raise SerializationError(
            f"parameter buffer has {len(body)} bytes, expected {expected_values * dtype.itemsize}"
        )
    values = np.frombuffer(body, dtype=dtype).astype(np.float64)

    parameters = []
    cursor = 0
    for fan_in, fan_out in zip(layer_sizes[:-1], layer_sizes[1:]):
        weights = values[cursor:cursor + fan_in * fan_out].reshape(fan_in, fan_out)
        cursor += fan_in * fan_out
        biases = values[cursor:cursor + fan_out]
        cursor += fan_out
        parameters.append({"weights": weights, "biases": biases})
    model = MLP(layer_sizes)
    model.set_parameters(parameters)
    return model


def model_payload_size(layer_sizes: Sequence[int]) -> int:
    """Predicted serialized size in bytes for an architecture (header excluded)."""
    values = sum(
        fan_in * fan_out + fan_out for fan_in, fan_out in zip(layer_sizes[:-1], layer_sizes[1:])
    )
    return values * np.dtype(_DTYPE).itemsize
