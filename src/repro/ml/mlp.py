"""The multi-layer perceptron used throughout the evaluation.

The paper's model is a three-layer MLP with layer sizes (784, 100, 10):
a 784-dimensional input, one hidden layer of 100 ReLU units and a 10-way
softmax output.  :class:`MLP` generalizes to any layer-size list while
keeping that configuration as the default.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.errors import ShapeError
from repro.ml.activations import relu, relu_grad, softmax
from repro.ml.layers import DenseLayer
from repro.utils.rng import derive_seed, make_rng

DEFAULT_LAYER_SIZES = (784, 100, 10)


class MLP:
    """A feed-forward network of dense layers with ReLU hidden activations."""

    def __init__(self, layer_sizes: Sequence[int] = DEFAULT_LAYER_SIZES, seed: Optional[int] = None) -> None:
        sizes = [int(s) for s in layer_sizes]
        if len(sizes) < 2:
            raise ShapeError(f"an MLP needs at least two layer sizes, got {sizes}")
        if any(s <= 0 for s in sizes):
            raise ShapeError(f"layer sizes must be positive, got {sizes}")
        self.layer_sizes = tuple(sizes)
        self.seed = seed
        self.layers: List[DenseLayer] = []
        for index, (fan_in, fan_out) in enumerate(zip(sizes[:-1], sizes[1:])):
            layer_seed = None if seed is None else derive_seed(seed, f"layer-{index}")
            self.layers.append(DenseLayer(fan_in, fan_out, rng=make_rng(layer_seed)))
        self._hidden_pre_activations: List[np.ndarray] = []

    # -- forward -------------------------------------------------------------------

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        """Return output logits for a batch of inputs, caching activations."""
        activations = np.asarray(inputs, dtype=np.float64)
        if activations.ndim == 1:
            activations = activations.reshape(1, -1)
        self._hidden_pre_activations = []
        for index, layer in enumerate(self.layers):
            pre_activation = layer.forward(activations)
            if index < len(self.layers) - 1:
                self._hidden_pre_activations.append(pre_activation)
                activations = relu(pre_activation)
            else:
                activations = pre_activation
        return activations

    def predict_proba(self, inputs: np.ndarray) -> np.ndarray:
        """Softmax class probabilities for a batch of inputs."""
        return softmax(self.forward(inputs))

    def predict(self, inputs: np.ndarray) -> np.ndarray:
        """Predicted class indices for a batch of inputs."""
        return np.argmax(self.forward(inputs), axis=1)

    # -- backward ------------------------------------------------------------------

    def backward(self, grad_logits: np.ndarray) -> None:
        """Backpropagate a gradient with respect to the output logits."""
        if len(self._hidden_pre_activations) != len(self.layers) - 1:
            raise ShapeError("backward called before forward")
        grad = np.asarray(grad_logits, dtype=np.float64)
        for index in range(len(self.layers) - 1, -1, -1):
            grad = self.layers[index].backward(grad)
            if index > 0:
                grad = grad * relu_grad(self._hidden_pre_activations[index - 1])

    # -- parameters ----------------------------------------------------------------

    @property
    def num_parameters(self) -> int:
        """Total number of trainable scalars."""
        return sum(layer.num_parameters for layer in self.layers)

    def get_parameters(self) -> List[Dict[str, np.ndarray]]:
        """Copies of every layer's parameters, input to output order."""
        return [layer.get_parameters() for layer in self.layers]

    def set_parameters(self, parameters: List[Dict[str, np.ndarray]]) -> None:
        """Overwrite every layer's parameters."""
        if len(parameters) != len(self.layers):
            raise ShapeError(
                f"expected parameters for {len(self.layers)} layers, got {len(parameters)}"
            )
        for layer, params in zip(self.layers, parameters):
            layer.set_parameters(params)

    def copy(self) -> "MLP":
        """A deep copy with identical parameters."""
        clone = MLP(self.layer_sizes, seed=self.seed)
        clone.set_parameters(self.get_parameters())
        return clone

    @classmethod
    def from_parameters(cls, parameters: List[Dict[str, np.ndarray]]) -> "MLP":
        """Build an MLP whose architecture is inferred from a parameter list."""
        if not parameters:
            raise ShapeError("cannot build an MLP from an empty parameter list")
        sizes = [parameters[0]["weights"].shape[0]]
        for params in parameters:
            sizes.append(params["weights"].shape[1])
        model = cls(sizes)
        model.set_parameters(parameters)
        return model

    def __repr__(self) -> str:
        return f"MLP(layer_sizes={self.layer_sizes}, parameters={self.num_parameters})"
