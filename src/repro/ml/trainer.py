"""The local training loop model owners run before uploading their model."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.ml.dataloader import batch_iterator
from repro.ml.losses import cross_entropy_with_softmax
from repro.ml.metrics import accuracy
from repro.ml.mlp import MLP
from repro.ml.optimizers import Adam, Optimizer, SGD
from repro.utils.rng import make_rng


@dataclass
class TrainingConfig:
    """Hyperparameters of local training.

    Defaults match the paper's experimental setup: batch size 64, learning
    rate 0.001 and 10 local epochs.
    """

    batch_size: int = 64
    learning_rate: float = 0.001
    epochs: int = 10
    optimizer: str = "adam"
    momentum: float = 0.9
    weight_decay: float = 0.0
    shuffle: bool = True
    seed: Optional[int] = None

    def build_optimizer(self) -> Optimizer:
        """Instantiate the configured optimizer."""
        name = self.optimizer.lower()
        if name == "adam":
            return Adam(learning_rate=self.learning_rate)
        if name == "sgd":
            return SGD(
                learning_rate=self.learning_rate,
                momentum=self.momentum,
                weight_decay=self.weight_decay,
            )
        raise ValueError(f"unknown optimizer {self.optimizer!r} (expected 'adam' or 'sgd')")


@dataclass
class EpochRecord:
    """Loss/accuracy after one training epoch."""

    epoch: int
    loss: float
    train_accuracy: float


@dataclass
class TrainingHistory:
    """Per-epoch records of a training run."""

    epochs: List[EpochRecord] = field(default_factory=list)

    @property
    def final_loss(self) -> float:
        """Training loss after the last epoch."""
        return self.epochs[-1].loss if self.epochs else float("nan")

    @property
    def final_accuracy(self) -> float:
        """Training accuracy after the last epoch."""
        return self.epochs[-1].train_accuracy if self.epochs else float("nan")

    @property
    def losses(self) -> List[float]:
        """Loss values in epoch order."""
        return [record.loss for record in self.epochs]


@dataclass
class EvalResult:
    """Evaluation of a model on a dataset."""

    loss: float
    accuracy: float
    num_samples: int


class Trainer:
    """Trains an :class:`MLP` with minibatch gradient descent."""

    def __init__(self, model: MLP, config: Optional[TrainingConfig] = None) -> None:
        self.model = model
        self.config = config or TrainingConfig()
        self.optimizer = self.config.build_optimizer()

    def train(self, features: np.ndarray, labels: np.ndarray) -> TrainingHistory:
        """Run the configured number of epochs; returns the loss history."""
        history = TrainingHistory()
        rng = make_rng(self.config.seed, "trainer-shuffle")
        for epoch in range(self.config.epochs):
            epoch_losses: List[float] = []
            for batch_x, batch_y in batch_iterator(
                features, labels, self.config.batch_size, shuffle=self.config.shuffle, rng=rng
            ):
                logits = self.model.forward(batch_x)
                loss, grad = cross_entropy_with_softmax(logits, batch_y)
                self.model.backward(grad)
                self.optimizer.step(self.model.layers)
                epoch_losses.append(loss)
            train_accuracy = accuracy(self.model.predict(features), labels)
            history.epochs.append(
                EpochRecord(
                    epoch=epoch,
                    loss=float(np.mean(epoch_losses)) if epoch_losses else float("nan"),
                    train_accuracy=train_accuracy,
                )
            )
        return history

    def evaluate(self, features: np.ndarray, labels: np.ndarray) -> EvalResult:
        """Compute loss and accuracy on held-out data."""
        return evaluate_model(self.model, features, labels)


def evaluate_model(model: MLP, features: np.ndarray, labels: np.ndarray) -> EvalResult:
    """Evaluate any :class:`MLP` on ``(features, labels)``."""
    logits = model.forward(features)
    loss, _ = cross_entropy_with_softmax(logits, labels)
    predictions = np.argmax(logits, axis=1)
    return EvalResult(loss=loss, accuracy=accuracy(predictions, labels), num_samples=len(labels))
