"""Activation functions and their gradients."""

from __future__ import annotations

import numpy as np


def relu(x: np.ndarray) -> np.ndarray:
    """Rectified linear unit, elementwise ``max(0, x)``."""
    return np.maximum(x, 0.0)


def relu_grad(x: np.ndarray) -> np.ndarray:
    """Derivative of ReLU with respect to its input (1 where x > 0)."""
    return (x > 0.0).astype(x.dtype)


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically stable logistic sigmoid."""
    out = np.empty_like(x, dtype=np.float64)
    positive = x >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-x[positive]))
    exp_x = np.exp(x[~positive])
    out[~positive] = exp_x / (1.0 + exp_x)
    return out


def tanh(x: np.ndarray) -> np.ndarray:
    """Hyperbolic tangent."""
    return np.tanh(x)


def softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax along ``axis``."""
    shifted = logits - np.max(logits, axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / np.sum(exp, axis=axis, keepdims=True)
