"""Dense (fully connected) layers with manual backpropagation."""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.errors import ShapeError
from repro.utils.rng import make_rng


class DenseLayer:
    """A fully connected layer ``y = x @ W + b``.

    Weights are stored with shape ``(in_features, out_features)`` and
    initialized with He-uniform scaling (appropriate for the ReLU activations
    used between layers).
    """

    def __init__(self, in_features: int, out_features: int, rng=None) -> None:
        if in_features <= 0 or out_features <= 0:
            raise ShapeError(
                f"layer dimensions must be positive, got ({in_features}, {out_features})"
            )
        self.in_features = in_features
        self.out_features = out_features
        generator = make_rng(rng)
        limit = np.sqrt(6.0 / in_features)
        self.weights = generator.uniform(-limit, limit, size=(in_features, out_features)).astype(np.float64)
        self.biases = np.zeros(out_features, dtype=np.float64)
        self._last_input: Optional[np.ndarray] = None
        self.grad_weights = np.zeros_like(self.weights)
        self.grad_biases = np.zeros_like(self.biases)

    # -- forward / backward ------------------------------------------------------

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        """Compute the affine transform, caching inputs for the backward pass."""
        inputs = np.asarray(inputs, dtype=np.float64)
        if inputs.ndim != 2 or inputs.shape[1] != self.in_features:
            raise ShapeError(
                f"expected input of shape (batch, {self.in_features}), got {inputs.shape}"
            )
        self._last_input = inputs
        return inputs @ self.weights + self.biases

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Accumulate parameter gradients and return the input gradient."""
        if self._last_input is None:
            raise ShapeError("backward called before forward")
        grad_output = np.asarray(grad_output, dtype=np.float64)
        if grad_output.shape != (self._last_input.shape[0], self.out_features):
            raise ShapeError(
                f"expected grad of shape ({self._last_input.shape[0]}, {self.out_features}), "
                f"got {grad_output.shape}"
            )
        self.grad_weights = self._last_input.T @ grad_output
        self.grad_biases = grad_output.sum(axis=0)
        return grad_output @ self.weights.T

    # -- parameter access -----------------------------------------------------------

    @property
    def num_parameters(self) -> int:
        """Number of trainable scalars in this layer."""
        return self.weights.size + self.biases.size

    def get_parameters(self) -> Dict[str, np.ndarray]:
        """Copies of the layer parameters."""
        return {"weights": self.weights.copy(), "biases": self.biases.copy()}

    def set_parameters(self, parameters: Dict[str, np.ndarray]) -> None:
        """Overwrite parameters (shapes must match)."""
        weights = np.asarray(parameters["weights"], dtype=np.float64)
        biases = np.asarray(parameters["biases"], dtype=np.float64)
        if weights.shape != self.weights.shape or biases.shape != self.biases.shape:
            raise ShapeError(
                f"parameter shape mismatch: expected {self.weights.shape}/{self.biases.shape}, "
                f"got {weights.shape}/{biases.shape}"
            )
        self.weights = weights.copy()
        self.biases = biases.copy()

    def get_gradients(self) -> Dict[str, np.ndarray]:
        """The most recently computed gradients."""
        return {"weights": self.grad_weights, "biases": self.grad_biases}
