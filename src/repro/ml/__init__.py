"""A NumPy neural-network substrate.

Replaces the PyTorch dependency of the original demo with a small, fully
deterministic MLP stack: dense layers, ReLU/softmax activations, cross-entropy
loss, SGD/momentum/Adam optimizers, a minibatch trainer and model
(de)serialization.  The paper's model -- a three-layer MLP (784, 100, 10)
trained with batch size 64, learning rate 0.001 and 10 local epochs -- is
expressed directly with these pieces, and its serialized float32 payload is
~317 KB, matching the model size reported in the paper's overhead analysis.
"""

from repro.ml.activations import relu, relu_grad, sigmoid, softmax, tanh
from repro.ml.dataloader import batch_iterator
from repro.ml.layers import DenseLayer
from repro.ml.losses import cross_entropy_loss, cross_entropy_with_softmax, mse_loss
from repro.ml.metrics import accuracy, confusion_matrix, per_class_accuracy
from repro.ml.mlp import MLP
from repro.ml.optimizers import SGD, Adam, Optimizer
from repro.ml.serialization import deserialize_model, model_payload_size, serialize_model
from repro.ml.trainer import EvalResult, Trainer, TrainingConfig, TrainingHistory

__all__ = [
    "relu",
    "relu_grad",
    "sigmoid",
    "softmax",
    "tanh",
    "batch_iterator",
    "DenseLayer",
    "cross_entropy_loss",
    "cross_entropy_with_softmax",
    "mse_loss",
    "accuracy",
    "confusion_matrix",
    "per_class_accuracy",
    "MLP",
    "SGD",
    "Adam",
    "Optimizer",
    "deserialize_model",
    "model_payload_size",
    "serialize_model",
    "EvalResult",
    "Trainer",
    "TrainingConfig",
    "TrainingHistory",
]
