"""Minibatch iteration."""

from __future__ import annotations

from typing import Iterator, Tuple

import numpy as np

from repro.errors import ShapeError
from repro.utils.rng import make_rng


def batch_iterator(
    features: np.ndarray,
    labels: np.ndarray,
    batch_size: int,
    shuffle: bool = True,
    rng=None,
    drop_last: bool = False,
) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
    """Yield ``(features, labels)`` minibatches.

    Parameters mirror a typical deep-learning ``DataLoader``: optional
    shuffling with an explicit RNG for reproducibility, and an option to drop
    a trailing partial batch.
    """
    features = np.asarray(features)
    labels = np.asarray(labels)
    if features.shape[0] != labels.shape[0]:
        raise ShapeError(
            f"features and labels disagree on sample count: {features.shape[0]} vs {labels.shape[0]}"
        )
    if batch_size <= 0:
        raise ValueError(f"batch size must be positive, got {batch_size}")
    count = features.shape[0]
    indices = np.arange(count)
    if shuffle:
        make_rng(rng).shuffle(indices)
    for start in range(0, count, batch_size):
        batch = indices[start:start + batch_size]
        if drop_last and batch.shape[0] < batch_size:
            break
        yield features[batch], labels[batch]
