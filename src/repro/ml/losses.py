"""Loss functions."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import ShapeError
from repro.ml.activations import softmax

_EPS = 1e-12


def cross_entropy_loss(probabilities: np.ndarray, labels: np.ndarray) -> float:
    """Mean negative log-likelihood of integer ``labels`` under ``probabilities``."""
    probabilities = np.asarray(probabilities, dtype=np.float64)
    labels = np.asarray(labels, dtype=np.int64)
    if probabilities.ndim != 2:
        raise ShapeError(f"probabilities must be 2-D, got shape {probabilities.shape}")
    if labels.shape[0] != probabilities.shape[0]:
        raise ShapeError(
            f"batch mismatch: {probabilities.shape[0]} probabilities vs {labels.shape[0]} labels"
        )
    picked = probabilities[np.arange(labels.shape[0]), labels]
    return float(-np.mean(np.log(picked + _EPS)))


def cross_entropy_with_softmax(logits: np.ndarray, labels: np.ndarray) -> Tuple[float, np.ndarray]:
    """Softmax cross-entropy loss and its gradient with respect to the logits.

    Returns ``(loss, grad)`` where ``grad`` already includes the 1/batch
    normalization, so it can be fed straight into the network's backward pass.
    """
    logits = np.asarray(logits, dtype=np.float64)
    labels = np.asarray(labels, dtype=np.int64)
    probabilities = softmax(logits)
    loss = cross_entropy_loss(probabilities, labels)
    grad = probabilities.copy()
    grad[np.arange(labels.shape[0]), labels] -= 1.0
    grad /= labels.shape[0]
    return loss, grad


def mse_loss(predictions: np.ndarray, targets: np.ndarray) -> Tuple[float, np.ndarray]:
    """Mean squared error and its gradient with respect to ``predictions``."""
    predictions = np.asarray(predictions, dtype=np.float64)
    targets = np.asarray(targets, dtype=np.float64)
    if predictions.shape != targets.shape:
        raise ShapeError(f"shape mismatch: {predictions.shape} vs {targets.shape}")
    diff = predictions - targets
    loss = float(np.mean(diff**2))
    grad = 2.0 * diff / diff.size
    return loss, grad
