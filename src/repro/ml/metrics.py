"""Classification metrics used in the evaluation."""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.errors import ShapeError


def accuracy(predictions: np.ndarray, labels: np.ndarray) -> float:
    """Fraction of predictions equal to the integer labels."""
    predictions = np.asarray(predictions).ravel()
    labels = np.asarray(labels).ravel()
    if predictions.shape != labels.shape:
        raise ShapeError(f"shape mismatch: {predictions.shape} vs {labels.shape}")
    if predictions.size == 0:
        raise ShapeError("cannot compute accuracy of an empty batch")
    return float(np.mean(predictions == labels))


def confusion_matrix(predictions: np.ndarray, labels: np.ndarray, num_classes: int) -> np.ndarray:
    """``num_classes x num_classes`` matrix of counts (rows = truth, cols = prediction)."""
    predictions = np.asarray(predictions, dtype=np.int64).ravel()
    labels = np.asarray(labels, dtype=np.int64).ravel()
    if predictions.shape != labels.shape:
        raise ShapeError(f"shape mismatch: {predictions.shape} vs {labels.shape}")
    matrix = np.zeros((num_classes, num_classes), dtype=np.int64)
    for truth, predicted in zip(labels, predictions):
        matrix[truth, predicted] += 1
    return matrix


def per_class_accuracy(predictions: np.ndarray, labels: np.ndarray, num_classes: int) -> Dict[int, float]:
    """Accuracy computed separately for each true class (NaN-free: absent classes omitted)."""
    matrix = confusion_matrix(predictions, labels, num_classes)
    result: Dict[int, float] = {}
    for cls in range(num_classes):
        total = matrix[cls].sum()
        if total > 0:
            result[cls] = float(matrix[cls, cls] / total)
    return result
