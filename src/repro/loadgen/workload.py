"""Request mixes and the simulated client population.

A :class:`RequestMix` is a weighted choice over the operation kinds the
driver knows how to fire against the JSON-RPC gateway:

========== ==================================================================
transfer   sign a value transfer and broadcast it (``eth_sendRawTransaction``)
read       a chain read (``eth_getBalance`` / ``eth_blockNumber``)
ipfs       fetch a pre-seeded object (``ipfs_cat``), Zipf-skewed over CIDs
oflw3      a marketplace backend route (``oflw3_health`` / ``oflw3_task``);
           requires a backend on the gateway, otherwise re-drawn as a read
analytics  an analytical read against the columnar replica
           (``analytics_leaderboard`` / ``analytics_feeSummary`` /
           ``analytics_chainStatistics``); requires an attached replica
           (``repro.analytics``), otherwise re-drawn as a read
========== ==================================================================

The client population is a deterministic set of labeled key pairs, funded by
the faucet, whose activity is Zipf-skewed: a few hot senders produce most of
the traffic, as in any real marketplace.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.chain.account import Address
from repro.chain.keys import KeyPair
from repro.errors import SimulationError
from repro.utils.rng import SeedLike, make_rng

OP_KINDS = ("transfer", "read", "ipfs", "oflw3", "analytics")

DEFAULT_MIX: Dict[str, float] = {"transfer": 0.5, "read": 0.35, "ipfs": 0.15}


class RequestMix:
    """A normalized weighted choice over operation kinds."""

    def __init__(self, weights: Dict[str, float], seed: SeedLike = None) -> None:
        unknown = sorted(set(weights) - set(OP_KINDS))
        if unknown:
            raise SimulationError(
                f"unknown operation kinds {unknown}; choose from {sorted(OP_KINDS)}")
        positive = {kind: float(weight) for kind, weight in weights.items()
                    if weight > 0}
        if not positive:
            raise SimulationError("the request mix needs at least one positive weight")
        if any(weight < 0 for weight in weights.values()):
            raise SimulationError(f"mix weights must be non-negative: {weights}")
        total = sum(positive.values())
        self.weights = {kind: weight / total for kind, weight in sorted(positive.items())}
        self._kinds = list(self.weights)
        self._cdf = np.cumsum([self.weights[kind] for kind in self._kinds])
        self._rng = make_rng(seed, "request-mix")

    def weight(self, kind: str) -> float:
        """Normalized weight of ``kind`` (0.0 when absent)."""
        return self.weights.get(kind, 0.0)

    def sample(self) -> str:
        """Draw one operation kind."""
        index = int(np.searchsorted(self._cdf, self._rng.random(), side="right"))
        return self._kinds[min(index, len(self._kinds) - 1)]

    def to_dict(self) -> Dict[str, float]:
        return {kind: round(weight, 6) for kind, weight in self.weights.items()}

    @classmethod
    def parse(cls, spec: str, seed: SeedLike = None) -> "RequestMix":
        """Parse a CLI mix spec like ``transfer=0.5,read=0.3,ipfs=0.2``."""
        weights: Dict[str, float] = {}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            if "=" not in part:
                raise SimulationError(
                    f"mix entries look like kind=weight, got {part!r}")
            kind, _, raw = part.partition("=")
            try:
                weights[kind.strip()] = float(raw)
            except ValueError as exc:
                raise SimulationError(f"bad mix weight in {part!r}: {exc}") from exc
        return cls(weights, seed=seed)


class ClientPool:
    """A deterministic population of funded client key pairs.

    Keys derive from labels (``loadgen-client-<i>``) so the same seed and
    client count reproduce the same addresses -- and with them the same
    transaction hashes -- across runs.
    """

    def __init__(self, size: int, label_prefix: str = "loadgen") -> None:
        if size <= 0:
            raise SimulationError(f"the client pool needs at least one client, got {size}")
        self.size = int(size)
        self.keypairs: List[KeyPair] = [
            KeyPair.from_label(f"{label_prefix}-client-{index}")
            for index in range(self.size)
        ]
        self.addresses: List[Address] = [
            Address(keypair.address) for keypair in self.keypairs
        ]
        #: Client-side nonce counters (incremented only on accepted submits,
        #: so a rejected submission retries the same nonce and the per-sender
        #: nonce sequence never gaps).
        self.next_nonce: List[int] = [0] * self.size

    def fund(self, faucet, amount_wei: int) -> None:
        """Drip ``amount_wei`` to every client."""
        for keypair in self.keypairs:
            faucet.drip(keypair.address, amount_wei)
