"""Deterministic arrival processes and skewed selectors for the load driver.

Realistic load is neither uniform in time nor uniform over keys: request
inter-arrival times follow a Poisson process (with ramps and flash crowds on
top), and the popularity of senders/content follows a Zipfian distribution.
Every process here draws from a seeded NumPy generator, so two runs with the
same seed produce the identical arrival schedule -- which is what makes load
reports comparable run over run and CI perf gates stable.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.errors import SimulationError
from repro.utils.rng import SeedLike, make_rng


class ArrivalProcess:
    """Base class: yields the gap (simulated seconds) to the next arrival.

    ``next_gap(now)`` receives the current simulated time so time-varying
    processes (ramps, flash crowds) can modulate their instantaneous rate.
    """

    def next_gap(self, now: float) -> float:
        raise NotImplementedError

    def describe(self) -> dict:
        """JSON-friendly description for reports."""
        return {"kind": type(self).__name__}


class UniformArrivals(ArrivalProcess):
    """Fixed-gap arrivals at ``rate`` per simulated second."""

    def __init__(self, rate: float) -> None:
        if rate <= 0:
            raise SimulationError(f"arrival rate must be positive, got {rate}")
        self.rate = float(rate)

    def next_gap(self, now: float) -> float:
        return 1.0 / self.rate

    def describe(self) -> dict:
        return {"kind": "uniform", "rate": self.rate}


class PoissonArrivals(ArrivalProcess):
    """Memoryless arrivals: exponential gaps with mean ``1/rate``."""

    def __init__(self, rate: float, seed: SeedLike = None) -> None:
        if rate <= 0:
            raise SimulationError(f"arrival rate must be positive, got {rate}")
        self.rate = float(rate)
        self._rng = make_rng(seed, "poisson-arrivals")

    def next_gap(self, now: float) -> float:
        return float(self._rng.exponential(1.0 / self.rate))

    def describe(self) -> dict:
        return {"kind": "poisson", "rate": self.rate}


class RampArrivals(ArrivalProcess):
    """Poisson arrivals whose rate ramps linearly over ``duration`` seconds.

    The instantaneous rate at time ``t`` (measured from the first call)
    interpolates from ``start_rate`` to ``end_rate``; past the ramp the rate
    stays at ``end_rate``.
    """

    def __init__(self, start_rate: float, end_rate: float, duration: float,
                 seed: SeedLike = None) -> None:
        if start_rate <= 0 or end_rate <= 0:
            raise SimulationError(
                f"ramp rates must be positive, got {start_rate} -> {end_rate}")
        if duration <= 0:
            raise SimulationError(f"ramp duration must be positive, got {duration}")
        self.start_rate = float(start_rate)
        self.end_rate = float(end_rate)
        self.duration = float(duration)
        self._rng = make_rng(seed, "ramp-arrivals")
        self._origin: Optional[float] = None

    def rate_at(self, now: float) -> float:
        """Instantaneous arrival rate at simulated time ``now``."""
        if self._origin is None:
            return self.start_rate
        progress = min(1.0, max(0.0, (now - self._origin) / self.duration))
        return self.start_rate + (self.end_rate - self.start_rate) * progress

    def next_gap(self, now: float) -> float:
        if self._origin is None:
            self._origin = now
        return float(self._rng.exponential(1.0 / self.rate_at(now)))

    def describe(self) -> dict:
        return {"kind": "ramp", "start_rate": self.start_rate,
                "end_rate": self.end_rate, "duration": self.duration}


class FlashCrowdArrivals(ArrivalProcess):
    """Poisson arrivals with a rate spike (the flash crowd) in the middle.

    The rate is ``base_rate`` outside the window ``[spike_start,
    spike_start + spike_duration)`` (measured from the first call) and
    ``spike_rate`` inside it.
    """

    def __init__(self, base_rate: float, spike_rate: float, spike_start: float,
                 spike_duration: float, seed: SeedLike = None) -> None:
        if base_rate <= 0 or spike_rate <= 0:
            raise SimulationError(
                f"flash-crowd rates must be positive, got {base_rate}/{spike_rate}")
        if spike_start < 0 or spike_duration <= 0:
            raise SimulationError(
                f"spike window must be non-negative start with positive duration, "
                f"got start={spike_start}, duration={spike_duration}")
        self.base_rate = float(base_rate)
        self.spike_rate = float(spike_rate)
        self.spike_start = float(spike_start)
        self.spike_duration = float(spike_duration)
        self._rng = make_rng(seed, "flashcrowd-arrivals")
        self._origin: Optional[float] = None

    def rate_at(self, now: float) -> float:
        """Instantaneous arrival rate at simulated time ``now``."""
        if self._origin is None:
            return self.base_rate
        offset = now - self._origin
        if self.spike_start <= offset < self.spike_start + self.spike_duration:
            return self.spike_rate
        return self.base_rate

    def next_gap(self, now: float) -> float:
        if self._origin is None:
            self._origin = now
        return float(self._rng.exponential(1.0 / self.rate_at(now)))

    def describe(self) -> dict:
        return {"kind": "flashcrowd", "base_rate": self.base_rate,
                "spike_rate": self.spike_rate, "spike_start": self.spike_start,
                "spike_duration": self.spike_duration}


def make_arrivals(kind: str, rate: float, seed: SeedLike = None,
                  **kwargs) -> ArrivalProcess:
    """Build a named arrival process (the CLI's ``--arrival`` values)."""
    if kind == "uniform":
        return UniformArrivals(rate)
    if kind == "poisson":
        return PoissonArrivals(rate, seed=seed)
    if kind == "ramp":
        return RampArrivals(
            start_rate=kwargs.get("start_rate", rate / 4 if rate > 4 else rate),
            end_rate=kwargs.get("end_rate", rate),
            duration=kwargs["duration"],
            seed=seed,
        )
    if kind == "flashcrowd":
        return FlashCrowdArrivals(
            base_rate=rate,
            spike_rate=kwargs.get("spike_rate", rate * 10.0),
            spike_start=kwargs["spike_start"],
            spike_duration=kwargs["spike_duration"],
            seed=seed,
        )
    raise SimulationError(
        f"unknown arrival process {kind!r}; "
        "choose from uniform, poisson, ramp, flashcrowd")


class ZipfSelector:
    """Samples indices ``0..n-1`` with probability proportional to
    ``1 / (rank+1)^exponent`` -- the standard skewed-popularity model.

    Sampling is a binary search over the precomputed CDF, so a draw costs
    ``O(log n)`` even for thousands of keys, and is fully determined by the
    seed.
    """

    def __init__(self, n: int, exponent: float = 1.1, seed: SeedLike = None) -> None:
        if n <= 0:
            raise SimulationError(f"selector needs at least one item, got {n}")
        if exponent < 0:
            raise SimulationError(f"zipf exponent must be non-negative, got {exponent}")
        self.n = int(n)
        self.exponent = float(exponent)
        weights = (1.0 / np.arange(1, self.n + 1, dtype=np.float64) ** self.exponent)
        self._probabilities = weights / weights.sum()
        self._cdf = np.cumsum(self._probabilities)
        self._rng = make_rng(seed, "zipf-selector")

    @property
    def probabilities(self) -> List[float]:
        """The rank -> probability table (rank 0 is the most popular)."""
        return [float(p) for p in self._probabilities]

    def sample(self) -> int:
        """Draw one index.

        Clamped: float accumulation can leave ``cdf[-1]`` a few ulps below
        1.0, and a draw in that sliver would otherwise index one past the
        end.
        """
        index = int(np.searchsorted(self._cdf, self._rng.random(), side="right"))
        return min(index, self.n - 1)

    def sample_many(self, count: int) -> List[int]:
        """Draw ``count`` indices (clamped like :meth:`sample`)."""
        draws = self._rng.random(count)
        last = self.n - 1
        return [min(int(i), last)
                for i in np.searchsorted(self._cdf, draws, side="right")]
