"""Latency/throughput accounting for the load driver.

Percentiles use the nearest-rank definition -- ``p(q)`` is the smallest
recorded value such that at least ``q`` percent of the sample is <= it,
i.e. ``sorted_values[ceil(q/100 * n) - 1]`` -- because it is trivially
hand-computable, which keeps the percentile tests honest and the reported
numbers unambiguous.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

from repro.errors import SimulationError

PERCENTILES = (50.0, 95.0, 99.0)


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of ``values`` (``0 < q <= 100``)."""
    if not values:
        raise SimulationError("cannot take a percentile of an empty sample")
    if not 0 < q <= 100:
        raise SimulationError(f"percentile must be in (0, 100], got {q}")
    ordered = sorted(values)
    rank = math.ceil(q / 100.0 * len(ordered))
    return float(ordered[rank - 1])


class LatencyStats:
    """Accumulates one latency population and summarizes it."""

    def __init__(self, unit: str = "s") -> None:
        self.unit = unit
        self._values: List[float] = []
        self._total = 0.0
        self._max = 0.0

    def record(self, value: float) -> None:
        """Record one latency observation (must be non-negative)."""
        if value < 0:
            raise SimulationError(f"latency cannot be negative: {value}")
        self._values.append(float(value))
        self._total += value
        if value > self._max:
            self._max = value

    def __len__(self) -> int:
        return len(self._values)

    @property
    def count(self) -> int:
        return len(self._values)

    @property
    def mean(self) -> float:
        return self._total / len(self._values) if self._values else 0.0

    @property
    def max(self) -> float:
        return self._max

    def percentile(self, q: float) -> float:
        return percentile(self._values, q)

    def to_dict(self) -> Dict[str, float]:
        """Count, mean, max and the standard percentile triple."""
        if not self._values:
            return {"count": 0, "mean": 0.0, "max": 0.0,
                    "p50": 0.0, "p95": 0.0, "p99": 0.0}
        summary = {
            "count": self.count,
            "mean": round(self.mean, 6),
            "max": round(self._max, 6),
        }
        for q in PERCENTILES:
            summary[f"p{int(q)}"] = round(self.percentile(q), 6)
        return summary


class OpStats:
    """Per-operation accounting: attempts, errors by class, service latency."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.attempts = 0
        self.successes = 0
        self.errors_by_class: Dict[str, int] = {}
        #: Wall-clock service time of the in-process gateway call, in seconds.
        self.service = LatencyStats(unit="s")

    @property
    def errors(self) -> int:
        return sum(self.errors_by_class.values())

    @property
    def error_rate(self) -> float:
        return self.errors / self.attempts if self.attempts else 0.0

    def record_success(self, service_seconds: float) -> None:
        self.attempts += 1
        self.successes += 1
        self.service.record(service_seconds)

    def record_error(self, error: BaseException, service_seconds: Optional[float] = None) -> None:
        self.attempts += 1
        name = type(error).__name__
        self.errors_by_class[name] = self.errors_by_class.get(name, 0) + 1
        if service_seconds is not None:
            self.service.record(service_seconds)

    def to_dict(self) -> dict:
        return {
            "attempts": self.attempts,
            "successes": self.successes,
            "errors": self.errors,
            "error_rate": round(self.error_rate, 6),
            "errors_by_class": dict(sorted(self.errors_by_class.items())),
            "service_seconds": self.service.to_dict(),
        }
