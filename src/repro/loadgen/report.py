"""Load-run and saturation-sweep reports.

A :class:`LoadReport` separates *simulated* metrics (arrival counts, mined
transactions, confirmation latencies on the sim clock -- deterministic for a
given seed) from *wall-clock* metrics (how fast this process actually served
the requests -- the numbers the perf work moves).  A sweep runs the same
workload at increasing offered rates and reports the saturation knee: the
first rate the chain can no longer keep up with.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional


@dataclass
class LoadReport:
    """Everything one load-generator run reports."""

    config: Dict[str, Any]
    #: Simulated seconds from the first arrival to the end of the drain.
    makespan_seconds: float = 0.0
    #: Wall-clock seconds the run took to execute.
    wall_seconds: float = 0.0
    events_executed: int = 0
    offered_requests: int = 0
    ops: Dict[str, dict] = field(default_factory=dict)
    #: Transfer lifecycle on the simulated clock.
    tx_submitted: int = 0
    tx_mined: int = 0
    #: Transfers mined before the load window closed (saturation metric --
    #: excludes the post-window drain tail).
    tx_mined_in_window: int = 0
    #: Closed-loop transfers whose receipt never arrived in the poll budget
    #: (tracked apart from per-op errors: their submissions already counted).
    receipt_timeouts: int = 0
    tx_confirmation: Dict[str, float] = field(default_factory=dict)
    blocks_produced: int = 0
    mempool_max_depth: int = 0
    rpc_stats: Optional[Dict[str, Any]] = None
    arrival: Dict[str, Any] = field(default_factory=dict)
    #: ``repro.obs`` facade snapshot when the run had observability enabled;
    #: ``None`` (the default) keeps saved reports byte-identical to pre-obs
    #: runs -- same conditional-key contract as ``rpc_stats``.
    obs_stats: Optional[Dict[str, Any]] = None
    #: ``chain.parallel_stats()`` (plus the executor config) when the driven
    #: node ran wave-parallel block production; ``None`` keeps saved reports
    #: byte-identical to serial runs.  Lives outside ``sim_dict`` because
    #: ``wave_apply_seconds`` is wall-clock.
    parallel_stats: Optional[Dict[str, Any]] = None
    #: ``chain.batchverify_stats()`` when the driven node deferred signature
    #: checks to per-block batches; ``None`` keeps saved reports
    #: byte-identical to scalar-verify runs.
    batchverify_stats: Optional[Dict[str, Any]] = None

    # -- derived -----------------------------------------------------------------

    @property
    def requests_total(self) -> int:
        return sum(op["attempts"] for op in self.ops.values())

    @property
    def errors_total(self) -> int:
        return sum(op["errors"] for op in self.ops.values())

    @property
    def error_rate(self) -> float:
        total = self.requests_total
        return self.errors_total / total if total else 0.0

    @property
    def achieved_tx_tps(self) -> float:
        """Mined transactions per *simulated* second."""
        if self.makespan_seconds <= 0:
            return 0.0
        return self.tx_mined / self.makespan_seconds

    @property
    def in_window_mined_fraction(self) -> float:
        """Fraction of submitted transfers mined inside the load window.

        Close to 1.0 while the chain keeps up with the offered rate; drops
        as a mempool backlog builds.  This is the saturation signal -- it
        compares actual submissions to actual in-window inclusions, so drain
        tails and boundary effects cannot distort it.
        """
        if self.tx_submitted == 0:
            return 1.0
        return self.tx_mined_in_window / self.tx_submitted

    @property
    def wall_rps(self) -> float:
        """Requests served per *wall-clock* second (driver + stack cost)."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.requests_total / self.wall_seconds

    def sim_dict(self) -> dict:
        """The deterministic (simulated-clock) subset of the report.

        Two runs with the same config and seed produce the identical
        ``sim_dict`` -- the property the determinism tests pin down.
        """
        return {
            "config": dict(self.config),
            "arrival": dict(self.arrival),
            "makespan_seconds": round(self.makespan_seconds, 6),
            "events_executed": self.events_executed,
            "offered_requests": self.offered_requests,
            "requests_total": self.requests_total,
            "errors_total": self.errors_total,
            "error_rate": round(self.error_rate, 6),
            "ops": {
                name: {key: value for key, value in op.items()
                       if key != "service_seconds"}
                for name, op in sorted(self.ops.items())
            },
            "tx_submitted": self.tx_submitted,
            "tx_mined": self.tx_mined,
            "tx_mined_in_window": self.tx_mined_in_window,
            "receipt_timeouts": self.receipt_timeouts,
            "in_window_mined_fraction": round(self.in_window_mined_fraction, 6),
            "tx_confirmation_seconds": dict(self.tx_confirmation),
            "achieved_tx_tps": round(self.achieved_tx_tps, 6),
            "blocks_produced": self.blocks_produced,
            "mempool_max_depth": self.mempool_max_depth,
            "rpc_requests_total": (self.rpc_stats or {}).get("requests_total"),
        }

    def to_dict(self) -> dict:
        payload = {
            "schema": "oflw3-load-report/v1",
            **self.sim_dict(),
            "wall_seconds": round(self.wall_seconds, 3),
            "wall_rps": round(self.wall_rps, 3),
            "ops_service": {name: op["service_seconds"]
                            for name, op in sorted(self.ops.items())},
        }
        if self.rpc_stats is not None:
            payload["rpc_stats"] = dict(self.rpc_stats)
        if self.obs_stats is not None:
            payload["obs"] = self.obs_stats
        if self.parallel_stats is not None:
            payload["parallel"] = dict(self.parallel_stats)
        if self.batchverify_stats is not None:
            payload["batch_verify"] = dict(self.batchverify_stats)
        return payload

    def summary(self) -> str:
        """Human-readable multi-line summary for the CLI."""
        lines = [
            f"offered {self.offered_requests} requests over "
            f"{self.makespan_seconds:.0f} simulated seconds "
            f"({self.wall_seconds:.1f}s wall, {self.wall_rps:,.0f} req/s wall)",
            f"errors: {self.errors_total}/{self.requests_total} "
            f"({100 * self.error_rate:.2f}%)",
        ]
        for name, op in sorted(self.ops.items()):
            service = op["service_seconds"]
            lines.append(
                f"  {name:<10} {op['attempts']:>7} reqs  "
                f"err {100 * op['error_rate']:>6.2f}%  "
                f"service p50/p95/p99 "
                f"{service['p50'] * 1000:.2f}/{service['p95'] * 1000:.2f}/"
                f"{service['p99'] * 1000:.2f} ms"
            )
        if self.tx_submitted:
            conf = self.tx_confirmation
            lines.append(
                f"transfers: {self.tx_mined}/{self.tx_submitted} mined, "
                f"{self.achieved_tx_tps:.2f} tx/s (sim), confirmation "
                f"p50/p95/p99 {conf.get('p50', 0):.1f}/{conf.get('p95', 0):.1f}/"
                f"{conf.get('p99', 0):.1f} s, "
                f"mempool peak {self.mempool_max_depth}"
            )
        if self.obs_stats is not None:
            lines.append(
                f"obs: {self.obs_stats.get('spans_total', 0)} spans over "
                f"{self.obs_stats.get('traces_total', 0)} traces, "
                f"{self.obs_stats.get('events_total', 0)} structured events")
        if self.parallel_stats is not None:
            stats = self.parallel_stats.get("stats", {})
            workers = self.parallel_stats.get("config", {}).get("workers")
            lines.append(
                f"parallel: {workers} workers, "
                f"{stats.get('blocks_parallel', 0)} blocks in waves "
                f"({stats.get('blocks_serial_fallback', 0)} serial fallbacks), "
                f"conflict ratio avg {stats.get('conflict_ratio_avg', 0.0):.2f}")
        if self.batchverify_stats is not None:
            stats = self.batchverify_stats
            verifier = stats.get("verifier", {})
            workers = stats.get("config", {}).get("verify_workers")
            lines.append(
                f"batch verify: {workers} workers, "
                f"{verifier.get('signatures', 0)} signatures in "
                f"{verifier.get('batches', 0)} batches "
                f"({stats.get('deferred_rejections', 0)} evicted, "
                f"{stats.get('pipeline_kicks', 0)} pipeline kicks, "
                f"{stats.get('overlap_seconds', 0.0):.2f}s overlapped)")
        lines.append(f"blocks produced: {self.blocks_produced}")
        return "\n".join(lines)


@dataclass
class SweepPoint:
    """One offered-rate point of a saturation sweep."""

    offered_rate: float
    offered_tx_rate: float
    achieved_tx_tps: float
    tx_submitted: int
    tx_mined: int
    in_window_mined_fraction: float
    confirmation_p50: float
    confirmation_p99: float
    error_rate: float
    mempool_max_depth: int
    wall_rps: float

    @classmethod
    def from_report(cls, offered_rate: float, offered_tx_rate: float,
                    report: LoadReport) -> "SweepPoint":
        conf = report.tx_confirmation
        return cls(
            offered_rate=offered_rate,
            offered_tx_rate=offered_tx_rate,
            achieved_tx_tps=report.achieved_tx_tps,
            tx_submitted=report.tx_submitted,
            tx_mined=report.tx_mined,
            in_window_mined_fraction=report.in_window_mined_fraction,
            confirmation_p50=conf.get("p50", 0.0),
            confirmation_p99=conf.get("p99", 0.0),
            error_rate=report.error_rate,
            mempool_max_depth=report.mempool_max_depth,
            wall_rps=report.wall_rps,
        )

    @property
    def saturated(self) -> bool:
        """Whether the chain failed to keep up with the offered tx rate.

        Saturation means a durable backlog: fewer than 80% of the window's
        submissions were mined inside the window.
        """
        return self.in_window_mined_fraction < 0.8

    def to_dict(self) -> dict:
        return {
            "offered_rate": self.offered_rate,
            "offered_tx_rate": round(self.offered_tx_rate, 4),
            "achieved_tx_tps": round(self.achieved_tx_tps, 4),
            "tx_submitted": self.tx_submitted,
            "tx_mined": self.tx_mined,
            "in_window_mined_fraction": round(self.in_window_mined_fraction, 4),
            "confirmation_p50": round(self.confirmation_p50, 3),
            "confirmation_p99": round(self.confirmation_p99, 3),
            "error_rate": round(self.error_rate, 6),
            "mempool_max_depth": self.mempool_max_depth,
            "saturated": self.saturated,
            "wall_rps": round(self.wall_rps, 3),
        }


@dataclass
class SweepReport:
    """A saturation sweep plus the wall-clock ingest measurement."""

    points: List[SweepPoint] = field(default_factory=list)
    #: Wall-clock tx-ingest measurement: {"txs", "seconds", "tps"}.
    ingest: Dict[str, Any] = field(default_factory=dict)
    #: The recorded seed (pre-optimization) ingest TPS this build compares to.
    seed_ingest_tps: Optional[float] = None

    @property
    def saturation_rate(self) -> Optional[float]:
        """Offered rate of the first saturated point (None if none saturated)."""
        for point in self.points:
            if point.saturated:
                return point.offered_rate
        return None

    @property
    def ingest_speedup(self) -> Optional[float]:
        if not self.ingest or not self.seed_ingest_tps:
            return None
        return self.ingest["tps"] / self.seed_ingest_tps

    def to_dict(self) -> dict:
        return {
            "schema": "oflw3-load-sweep/v1",
            "points": [point.to_dict() for point in self.points],
            "saturation_rate": self.saturation_rate,
            "ingest": dict(self.ingest),
            "seed_ingest_tps": self.seed_ingest_tps,
            "ingest_speedup": (round(self.ingest_speedup, 3)
                               if self.ingest_speedup is not None else None),
        }

    def summary(self) -> str:
        header = (f"{'offered/s':>10} {'tx/s off':>9} {'tx/s got':>9} "
                  f"{'in-win %':>9} {'p50 conf':>9} {'p99 conf':>9} "
                  f"{'err %':>7} {'pool max':>9} {'sat':>4}")
        lines = ["saturation sweep (simulated clock):", header, "-" * len(header)]
        for point in self.points:
            lines.append(
                f"{point.offered_rate:>10.1f} {point.offered_tx_rate:>9.2f} "
                f"{point.achieved_tx_tps:>9.2f} "
                f"{100 * point.in_window_mined_fraction:>9.1f} "
                f"{point.confirmation_p50:>9.1f} "
                f"{point.confirmation_p99:>9.1f} {100 * point.error_rate:>7.2f} "
                f"{point.mempool_max_depth:>9} "
                f"{'yes' if point.saturated else 'no':>4}"
            )
        knee = self.saturation_rate
        lines.append(
            "saturation knee: "
            + (f"{knee:.1f} offered req/s" if knee is not None
               else "not reached in this sweep")
        )
        if self.ingest:
            speedup = self.ingest_speedup
            lines.append(
                f"wall-clock tx ingest: {self.ingest['tps']:,.1f} tx/s "
                f"({self.ingest['txs']} txs in {self.ingest['seconds']:.2f}s)"
                + (f" -- {speedup:.1f}x the recorded seed baseline "
                   f"of {self.seed_ingest_tps:.1f} tx/s"
                   if speedup is not None else "")
            )
        return "\n".join(lines)


@dataclass
class HttpLoadReport:
    """One multi-process HTTP load run against a live server.

    Unlike :class:`LoadReport` there is no simulated side here: every number
    is wall-clock, measured over real sockets -- requests serialized, sent,
    parsed, transactions actually mined by the server's producer.  This is
    the end-to-end wire throughput the in-process benchmarks cannot see.
    """

    config: Dict[str, Any]
    #: Wall-clock seconds the workers spent firing requests.
    wall_seconds: float = 0.0
    #: Wall-clock seconds the parent then waited for every transfer to mine.
    drain_seconds: float = 0.0
    requests_total: int = 0
    errors_total: int = 0
    #: Per-method wire latency (seconds): LatencyStats.to_dict() shapes.
    ops: Dict[str, dict] = field(default_factory=dict)
    workers: int = 0
    tx_submitted: int = 0
    tx_mined: int = 0
    blocks_produced: int = 0
    #: Sum of ``repro_rpc_requests_total`` scraped from the server's
    #: ``GET /metrics`` after the run; ``None`` when scraping failed.
    server_rpc_requests_total: Optional[int] = None
    #: In-process ingest comparison (``measure_tx_ingest``) when the run
    #: self-hosted its server; ``None`` keeps remote-run reports stable.
    inprocess_ingest: Optional[Dict[str, Any]] = None

    @property
    def wire_rps(self) -> float:
        """Requests per wall-clock second over the wire."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.requests_total / self.wall_seconds

    @property
    def wire_tx_tps(self) -> float:
        """Transfers mined per wall-clock second, submission through drain."""
        total = self.wall_seconds + self.drain_seconds
        if total <= 0:
            return 0.0
        return self.tx_mined / total

    @property
    def error_rate(self) -> float:
        if self.requests_total == 0:
            return 0.0
        return self.errors_total / self.requests_total

    def to_dict(self) -> dict:
        payload = {
            "schema": "oflw3-http-load/v1",
            "config": dict(self.config),
            "wall_seconds": round(self.wall_seconds, 3),
            "drain_seconds": round(self.drain_seconds, 3),
            "requests_total": self.requests_total,
            "errors_total": self.errors_total,
            "error_rate": round(self.error_rate, 6),
            "wire_rps": round(self.wire_rps, 3),
            "wire_tx_tps": round(self.wire_tx_tps, 3),
            "ops": {name: dict(op) for name, op in sorted(self.ops.items())},
            "workers": self.workers,
            "tx_submitted": self.tx_submitted,
            "tx_mined": self.tx_mined,
            "blocks_produced": self.blocks_produced,
            "server_rpc_requests_total": self.server_rpc_requests_total,
        }
        if self.inprocess_ingest is not None:
            payload["inprocess_ingest"] = dict(self.inprocess_ingest)
        return payload

    def summary(self) -> str:
        """Human-readable multi-line summary for the CLI (and the CI grep)."""
        lines = [
            f"wire throughput: {self.wire_rps:,.0f} req/s over "
            f"{self.workers} worker process(es) "
            f"({self.requests_total} requests in {self.wall_seconds:.2f}s wall)",
            f"errors: {self.errors_total}/{self.requests_total} "
            f"({100 * self.error_rate:.2f}%)",
        ]
        for name, op in sorted(self.ops.items()):
            lines.append(
                f"  {name:<24} {op['count']:>6} reqs  wire p50/p95/p99 "
                f"{op['p50'] * 1000:.2f}/{op['p95'] * 1000:.2f}/"
                f"{op['p99'] * 1000:.2f} ms")
        if self.tx_submitted:
            lines.append(
                f"transfers: {self.tx_mined}/{self.tx_submitted} mined in "
                f"{self.blocks_produced} blocks, {self.wire_tx_tps:.1f} tx/s "
                f"wire (drain {self.drain_seconds:.2f}s)")
        if self.server_rpc_requests_total is not None:
            lines.append(
                f"server metrics: repro_rpc_requests_total="
                f"{self.server_rpc_requests_total}")
        if self.inprocess_ingest is not None:
            wire = self.wire_tx_tps
            inproc = self.inprocess_ingest.get("tps", 0.0)
            ratio = (wire / inproc) if inproc else 0.0
            lines.append(
                f"in-process ingest comparison: {inproc:,.1f} tx/s without "
                f"the wire ({100 * ratio:.1f}% retained over HTTP)")
        return "\n".join(lines)
