"""The open-/closed-loop load generator.

Thousands of simulated clients fire skewed, bursty request mixes at the
JSON-RPC gateway on the simulated clock:

* **open loop** -- one arrival process (Poisson / uniform / ramp / flash
  crowd) schedules requests independent of completions, the way internet
  traffic actually arrives; confirmation latency is accounted by a reaper
  that matches mined receipts back to submission times;
* **closed loop** -- each client thinks, fires, waits for its transfer to be
  mined, and repeats: classic benchmark-harness behaviour, useful to bound
  concurrency.

The driver can build its own single-node stack (CLI, benchmarks) or attach
to an existing one (the simnet scenario runner injects background load into
a running marketplace scenario this way).  All request traffic crosses the
gateway through :class:`~repro.rpc.client.MarketplaceClient`, so middleware
metrics and rate limits apply exactly as they would to any other client.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, Generator, List, Optional

from repro.errors import ReproError, SimulationError
from repro.chain.account import Address
from repro.chain.chain import ChainConfig
from repro.chain.faucet import Faucet
from repro.chain.keys import KeyPair
from repro.chain.node import EthereumNode
from repro.chain.transaction import Transaction
from repro.contracts.registry import default_registry
from repro.ipfs.node import IpfsNode
from repro.ipfs.swarm import Swarm
from repro.loadgen.arrivals import ArrivalProcess, ZipfSelector, make_arrivals
from repro.loadgen.report import LoadReport, SweepPoint, SweepReport
from repro.loadgen.stats import LatencyStats, OpStats
from repro.loadgen.workload import DEFAULT_MIX, ClientPool, RequestMix
from repro.obs import ensure_observability
from repro.rpc.client import MarketplaceClient
from repro.rpc.gateway import JsonRpcGateway
from repro.rpc.middleware import TokenBucketRateLimiter
from repro.simnet.events import EventScheduler
from repro.utils.clock import SimulatedClock
from repro.utils.rng import derive_seed, make_rng
from repro.utils.units import ether_to_wei

#: How often pollers re-check for receipts (half a Sepolia slot).
RECEIPT_POLL_SECONDS = 6.0

#: The wall-clock tx-ingest throughput of the seed (pre-optimization) build,
#: measured with :func:`measure_tx_ingest` (500 transfers, 20 senders) on the
#: reference machine before the PR-4 hot-path work landed.  The sweep report
#: compares the current build against it; BENCH_PR4.json records the full
#: before/after experiment.
SEED_TX_INGEST_TPS = 34.4

#: Gas-price tiers (wei) sampled per transfer so fee-priority ordering in the
#: mempool is actually exercised under load.
GAS_PRICE_TIERS = (10**9, 2 * 10**9, 5 * 10**9)


@dataclass(frozen=True)
class LoadGenConfig:
    """Declarative description of one load-generation run."""

    clients: int = 100
    duration_seconds: float = 300.0
    rate: float = 20.0
    """Open-loop arrivals per simulated second (total, across all clients)."""

    mode: str = "open"  # open | closed
    arrival: str = "poisson"  # uniform | poisson | ramp | flashcrowd
    think_time_seconds: float = 10.0
    """Closed-loop mean think time between a client's requests."""

    mix: Dict[str, float] = field(default_factory=lambda: dict(DEFAULT_MIX))
    zipf_exponent: float = 1.1
    """Skew of sender and content popularity (0 = uniform)."""

    payload_bytes: int = 2048
    num_objects: int = 64
    """Pre-seeded IPFS objects served to ``ipfs`` ops."""

    seed: int = 7
    transfer_value_wei: int = 1_000
    fund_wei: int = ether_to_wei(5)
    rate_limit: Optional[float] = None
    """Gateway token-bucket rate (requests per simulated second)."""

    cluster: Optional[int] = None
    """Drive an N-replica replication cluster (``repro.cluster``) instead of
    one node: writes route to the rotation leader, reads load-balance across
    caught-up replicas, and sweeps measure *replicated* ingest.  ``None`` --
    the default -- keeps the single-node stack."""

    parallel: Optional[int] = None
    """Worker count for wave-parallel block production (``repro.parallel``);
    under a cluster the *leader* executes in waves and followers re-verify
    serially.  ``None`` -- the default -- keeps the serial block loop."""

    batch_verify: Optional[int] = None
    """Verify-worker count for deferred batch Schnorr verification with
    pipelined block production (``repro.batchverify``); ``0`` settles
    batches inline on the coordinator.  ``None`` -- the default -- verifies
    scalar-fashion at submission."""

    max_events: int = 2_000_000
    receipt_timeout_polls: int = 1_000

    def __post_init__(self) -> None:
        if self.clients <= 0:
            raise SimulationError(f"clients must be positive, got {self.clients}")
        if self.duration_seconds <= 0:
            raise SimulationError(
                f"duration_seconds must be positive, got {self.duration_seconds}")
        if self.rate <= 0:
            raise SimulationError(f"rate must be positive, got {self.rate}")
        if self.mode not in ("open", "closed"):
            raise SimulationError(f"mode must be open or closed, got {self.mode!r}")
        if self.mode == "closed" and self.think_time_seconds <= 0:
            # Think time is the only thing guaranteed to advance the sim
            # clock in a closed loop (reads and ipfs fetches are instant);
            # zero think time would spin at t=0 until the event budget blows.
            raise SimulationError(
                "closed-loop mode needs a positive think_time_seconds, "
                f"got {self.think_time_seconds}")
        if self.think_time_seconds < 0:
            raise SimulationError(
                f"think_time_seconds must be non-negative, got {self.think_time_seconds}")
        if self.num_objects <= 0:
            raise SimulationError(f"num_objects must be positive, got {self.num_objects}")
        if self.payload_bytes <= 0:
            raise SimulationError(f"payload_bytes must be positive, got {self.payload_bytes}")
        if self.cluster is not None and self.cluster < 2:
            raise SimulationError(
                f"cluster needs at least 2 replicas, got {self.cluster}")
        if self.parallel is not None and self.parallel < 1:
            raise SimulationError(
                f"parallel needs at least 1 worker, got {self.parallel}")
        if self.batch_verify is not None and self.batch_verify < 0:
            raise SimulationError(
                f"batch_verify needs >= 0 workers, got {self.batch_verify}")
        if self.batch_verify is not None and self.cluster is not None:
            raise SimulationError(
                "batch_verify is a single-node knob; replicas re-verify "
                "blocks on the scalar path, so combine it with cluster "
                "once replicated deferred admission lands")

    def with_overrides(self, **kwargs) -> "LoadGenConfig":
        return replace(self, **kwargs)

    def to_dict(self) -> dict:
        return {
            "clients": self.clients,
            "duration_seconds": self.duration_seconds,
            "rate": self.rate,
            "mode": self.mode,
            "arrival": self.arrival,
            "think_time_seconds": self.think_time_seconds,
            "mix": dict(self.mix),
            "zipf_exponent": self.zipf_exponent,
            "payload_bytes": self.payload_bytes,
            "num_objects": self.num_objects,
            "seed": self.seed,
            "rate_limit": self.rate_limit,
            "cluster": self.cluster,
            "parallel": self.parallel,
            "batch_verify": self.batch_verify,
        }


class LoadGenerator:
    """Drives one load-generation run against a marketplace stack.

    Standalone use builds a fresh single-node stack::

        report = LoadGenerator(LoadGenConfig(clients=1000, rate=50)).run()

    Attached use (the simnet runner) passes ``scheduler`` plus accessors for
    the shared infrastructure and calls :meth:`install` / :meth:`finalize`
    around the scenario's own event loop.
    """

    def __init__(
        self,
        config: LoadGenConfig,
        *,
        scheduler: Optional[EventScheduler] = None,
        node_fn: Optional[Callable[[], EthereumNode]] = None,
        rpc: Optional[MarketplaceClient] = None,
        faucet: Optional[Faucet] = None,
        swarm: Optional[Swarm] = None,
        manage_blocks: bool = True,
        label_prefix: str = "loadgen",
        oflw3_backend_key: Optional[str] = None,
        observability: Any = False,
    ) -> None:
        self.config = config
        self.label_prefix = label_prefix
        attached = scheduler is not None
        if attached and (node_fn is None or rpc is None or faucet is None
                         or swarm is None):
            raise SimulationError(
                "attached mode needs scheduler, node_fn, rpc, faucet and swarm")
        if attached and config.rate_limit is not None:
            raise SimulationError(
                "rate_limit is a standalone-stack knob; an attached load "
                "generator shares the scenario's gateway -- throttle it with "
                "ScenarioSpec.rpc_rate_limit instead")
        self.attached = attached

        if attached and config.cluster is not None:
            raise SimulationError(
                "cluster is a standalone-stack knob; an attached load "
                "generator drives the scenario's own node or cluster -- set "
                "ScenarioSpec.cluster instead")
        if attached and config.parallel is not None:
            raise SimulationError(
                "parallel is a standalone-stack knob; an attached load "
                "generator drives the scenario's own node -- enable it there "
                "via EthereumNode(parallel_execution=...) instead")
        if attached and config.batch_verify is not None:
            raise SimulationError(
                "batch_verify is a standalone-stack knob; an attached load "
                "generator drives the scenario's own node -- enable it there "
                "via EthereumNode(batch_verify=...) instead")
        self._cluster = None
        if not attached:
            clock = SimulatedClock()
            scheduler = EventScheduler(clock)
            if config.cluster is not None:
                from repro.cluster import ChainCluster, ClusterConfig, ClusterNode

                self._cluster = ChainCluster(
                    ClusterConfig(replicas=config.cluster,
                                  seed=derive_seed(config.seed, "cluster"),
                                  parallel_execution=config.parallel),
                    clock=clock, registry=default_registry())
                node = ClusterNode(self._cluster)
            else:
                node = EthereumNode(config=ChainConfig(),
                                    backend=default_registry(), clock=clock,
                                    parallel_execution=config.parallel,
                                    batch_verify=config.batch_verify)
            faucet = Faucet(node)
            swarm = Swarm(clock=clock)
            middleware = []
            self.rate_limiter: Optional[TokenBucketRateLimiter] = None
            if config.rate_limit is not None:
                self.rate_limiter = TokenBucketRateLimiter(
                    rate=config.rate_limit, time_fn=lambda: clock.now)
                middleware.append(self.rate_limiter)
            gateway = JsonRpcGateway(node=node, swarm=swarm, middleware=middleware)
            rpc = MarketplaceClient(gateway)
            node_fn = lambda: node  # noqa: E731 - the closure IS the accessor
        else:
            self.rate_limiter = None

        self.scheduler = scheduler
        self.clock = scheduler.clock
        self._node_fn = node_fn
        self.rpc = rpc
        self.faucet = faucet
        self.swarm = swarm
        self.manage_blocks = manage_blocks
        self.oflw3_backend_key = oflw3_backend_key

        #: Optional ``repro.obs`` facade; ``False``/``None`` (the default)
        #: keeps the run observation-free.  Standalone runs build and wire
        #: their own facade; attached runs receive the scenario's facade --
        #: already wired to the shared stack -- and only add this
        #: generator's saturation sampler.
        self.obs = ensure_observability(observability, clock=self.clock)
        if self.obs is not None:
            if not self.attached:
                if self._cluster is not None:
                    self.obs.instrument_cluster(self._cluster)
                else:
                    self.obs.instrument_node(self.node)
                self.rpc.gateway.attach_obs(self.obs)
            self.obs.instrument_loadgen(self._obs_sample)

        seed = config.seed
        self.mix = RequestMix(config.mix, seed=derive_seed(seed, "mix"))
        self.clients = ClientPool(config.clients, label_prefix=label_prefix)
        self.sender_selector = ZipfSelector(
            config.clients, config.zipf_exponent, seed=derive_seed(seed, "senders"))
        self.recipient_selector = ZipfSelector(
            config.clients, config.zipf_exponent, seed=derive_seed(seed, "recipients"))
        self.object_selector = ZipfSelector(
            config.num_objects, config.zipf_exponent, seed=derive_seed(seed, "objects"))
        self.arrivals: ArrivalProcess = make_arrivals(
            config.arrival, config.rate, seed=derive_seed(seed, "arrivals"),
            duration=config.duration_seconds,
            spike_start=config.duration_seconds / 3.0,
            spike_duration=config.duration_seconds / 6.0,
        )
        self._op_rng = make_rng(derive_seed(seed, "op-details"))

        self.ops: Dict[str, OpStats] = {}
        self.confirmation = LatencyStats(unit="s")
        self.offered = 0
        self.tx_mined = 0
        #: Transfers whose including block landed before the load window
        #: closed -- the saturation metric (excludes the drain tail).
        self.tx_mined_in_window = 0
        #: Closed-loop transfers whose receipt never arrived within the poll
        #: budget.  Counted separately: the submission itself already counted
        #: as a (successful) request, so folding the timeout into the per-op
        #: error stats would double-count the attempt.
        self.receipt_timeouts = 0
        self._outstanding: Dict[str, float] = {}
        self._load_done = False
        self._cids: List[str] = []
        self._ipfs_node_name: Optional[str] = None
        self._installed = False
        self._start_sim: float = 0.0
        self._start_height: int = 0
        self._mempool_peak = 0
        self._wall_started: float = 0.0

    # -- setup -------------------------------------------------------------------

    @property
    def node(self) -> EthereumNode:
        """The (possibly replaced-after-restart) chain node."""
        return self._node_fn()

    def _op(self, name: str) -> OpStats:
        stats = self.ops.get(name)
        if stats is None:
            stats = self.ops[name] = OpStats(name)
        return stats

    def _setup_population(self) -> None:
        self.clients.fund(self.faucet, self.config.fund_wei)
        ipfs = IpfsNode(f"{self.label_prefix}-ipfs", swarm=self.swarm)
        self.rpc.gateway.serve_ipfs_node(ipfs)
        self._ipfs_node_name = ipfs.name
        rng = make_rng(derive_seed(self.config.seed, "objects-content"))
        for index in range(self.config.num_objects):
            payload = bytes(rng.integers(0, 256, size=self.config.payload_bytes,
                                         dtype="uint8"))
            self._cids.append(str(ipfs.add_bytes(payload).cid))

    # -- operations ---------------------------------------------------------------

    def _fire(self, client_index: int) -> None:
        self._dispatch(self.mix.sample(), client_index)

    def _dispatch(self, kind: str, client_index: int) -> None:
        if kind == "oflw3" and self.oflw3_backend_key is None:
            kind = "read"
        if kind == "analytics" and getattr(self.rpc.gateway, "analytics", None) is None:
            kind = "read"
        handler = {
            "transfer": self._do_transfer,
            "read": self._do_read,
            "ipfs": self._do_ipfs,
            "oflw3": self._do_oflw3,
            "analytics": self._do_analytics,
        }[kind]
        handler(client_index)

    def _do_transfer(self, client_index: int) -> Optional[str]:
        stats = self._op("transfer")
        keypair = self.clients.keypairs[client_index]
        recipient_index = self.recipient_selector.sample()
        if recipient_index == client_index:
            recipient_index = (recipient_index + 1) % self.clients.size
        tx = Transaction(
            sender=self.clients.addresses[client_index],
            to=self.clients.addresses[recipient_index],
            value=self.config.transfer_value_wei,
            nonce=self.clients.next_nonce[client_index],
            gas_limit=21_000,
            gas_price=GAS_PRICE_TIERS[int(self._op_rng.integers(len(GAS_PRICE_TIERS)))],
        )
        tx.sign(keypair)
        started = time.perf_counter()
        try:
            tx_hash = self.rpc.eth.send_transaction(tx)
        except ReproError as error:
            stats.record_error(error, time.perf_counter() - started)
            return None
        stats.record_success(time.perf_counter() - started)
        # Only an accepted submission consumes the client-side nonce; a
        # rejected one retries the same nonce so the sequence never gaps.
        self.clients.next_nonce[client_index] += 1
        self._outstanding[tx_hash] = self.clock.now
        self._note_mempool_depth()
        return tx_hash

    def _do_read(self, client_index: int) -> None:
        stats = self._op("read")
        started = time.perf_counter()
        try:
            if self._op_rng.integers(2):
                self.rpc.eth.get_balance(
                    str(self.clients.addresses[self.recipient_selector.sample()]))
            else:
                _ = self.rpc.eth.block_number
        except ReproError as error:
            stats.record_error(error, time.perf_counter() - started)
            return
        stats.record_success(time.perf_counter() - started)

    def _do_ipfs(self, client_index: int) -> None:
        stats = self._op("ipfs")
        cid = self._cids[self.object_selector.sample() % len(self._cids)]
        started = time.perf_counter()
        try:
            self.rpc.ipfs.cat(cid, node=self._ipfs_node_name)
        except ReproError as error:
            stats.record_error(error, time.perf_counter() - started)
            return
        stats.record_success(time.perf_counter() - started)

    def _do_oflw3(self, client_index: int) -> None:
        stats = self._op("oflw3")
        started = time.perf_counter()
        try:
            self.rpc.call("oflw3_health", backend=self.oflw3_backend_key)
        except ReproError as error:
            stats.record_error(error, time.perf_counter() - started)
            return
        stats.record_success(time.perf_counter() - started)

    def _do_analytics(self, client_index: int) -> None:
        """One analytical read against the attached columnar replica."""
        stats = self._op("analytics")
        choice = int(self._op_rng.integers(3))
        started = time.perf_counter()
        try:
            if choice == 0:
                self.rpc.call("analytics_leaderboard", name="payments", limit=10)
            elif choice == 1:
                self.rpc.call("analytics_feeSummary")
            else:
                self.rpc.call("analytics_chainStatistics")
        except ReproError as error:
            stats.record_error(error, time.perf_counter() - started)
            return
        stats.record_success(time.perf_counter() - started)

    def _obs_sample(self) -> Dict[str, Any]:
        """Saturation counters sampled into the unified metrics registry."""
        transfer = self.ops.get("transfer")
        return {
            "offered": self.offered,
            "submitted": transfer.successes if transfer else 0,
            "mined": self.tx_mined,
            "timeouts": self.receipt_timeouts,
            "outstanding": len(self._outstanding),
        }

    def _note_mempool_depth(self) -> None:
        depth = len(self.node.chain.mempool)
        if depth > self._mempool_peak:
            self._mempool_peak = depth

    # -- processes ----------------------------------------------------------------

    def _arrival_loop(self) -> Generator:
        """Open loop: fire arrivals until the configured duration elapses."""
        end = self.clock.now + self.config.duration_seconds
        while True:
            gap = self.arrivals.next_gap(self.clock.now)
            if self.clock.now + gap >= end:
                break
            yield gap
            self.offered += 1
            self._fire(self.sender_selector.sample())
        self._load_done = True

    def _client_loop(self, client_index: int) -> Generator:
        """Closed loop: think, fire, await the transfer receipt, repeat."""
        rng = make_rng(derive_seed(self.config.seed, f"client-{client_index}"))
        end = self._start_sim + self.config.duration_seconds
        while self.clock.now < end:
            think = float(rng.exponential(self.config.think_time_seconds))
            if self.clock.now + think >= end:
                break
            yield think
            self.offered += 1
            kind = self.mix.sample()
            if kind == "transfer":
                tx_hash = self._do_transfer(client_index)
                if tx_hash is None:
                    continue
                submitted_at = self._outstanding.pop(tx_hash)
                polls = 0
                while not self.node.chain.has_receipt(tx_hash):
                    polls += 1
                    if polls > self.config.receipt_timeout_polls:
                        self.receipt_timeouts += 1
                        break
                    yield RECEIPT_POLL_SECONDS
                else:
                    self._account_mined(tx_hash, submitted_at)
            else:
                self._dispatch(kind, client_index)
        self._register_client_done()

    def _register_client_done(self) -> None:
        self._clients_active -= 1
        if self._clients_active <= 0:
            self._load_done = True

    def _reaper(self) -> Generator:
        """Open loop: match mined receipts back to their submission times."""
        while not self._load_done or self._outstanding:
            yield RECEIPT_POLL_SECONDS
            if not self._outstanding:
                continue
            chain = self.node.chain
            mined = [tx_hash for tx_hash in self._outstanding
                     if chain.has_receipt(tx_hash)]
            for tx_hash in mined:
                self._account_mined(tx_hash, self._outstanding.pop(tx_hash))

    def _account_mined(self, tx_hash: str, submitted_at: float) -> None:
        """Confirmation latency from submission to the including block."""
        chain = self.node.chain
        receipt = chain.get_receipt(tx_hash)
        block_timestamp = chain.get_block(receipt.block_number).timestamp
        self.confirmation.record(max(0.0, block_timestamp - submitted_at))
        self.tx_mined += 1
        if block_timestamp <= self._start_sim + self.config.duration_seconds:
            self.tx_mined_in_window += 1

    def _producer(self) -> Generator:
        """Mine on the slot cadence while load or outstanding transfers remain.

        Unlike the legacy blocking flow, production here never *advances* the
        shared clock: the process sleeps to the next slot boundary through
        the scheduler and mines at the current time, so arrival events keep
        firing on their own schedule and the offered rate stays honest.
        """
        slot = self.node.chain.config.slot_seconds
        while not self._load_done or self._outstanding:
            gap = slot - (self.clock.now % slot)
            if gap <= 1e-9:
                gap = slot
            yield gap
            chain = self.node.chain
            if len(chain.mempool) == 0:
                continue
            # One block per slot, shared with any co-resident producer: in
            # attached mode the scenario's own block producer mines while
            # tasks are active, and minting a second block into the same
            # slot would double the modeled Sepolia cadence.  This producer
            # only fills slots nobody else has -- which standalone is every
            # slot, and attached is the post-task drain tail.
            tip = chain.latest_block
            if tip.number > 0 and (chain.consensus.slot_at(tip.timestamp)
                                   == chain.consensus.slot_at(self.clock.now)):
                continue
            self._note_mempool_depth()
            if self._cluster is not None:
                # Cluster mode: production goes through leader rotation and
                # gossip, so every slot's block comes from whichever replica
                # the schedule elects (the cluster has its own slot guard).
                self._cluster.produce_now()
            else:
                chain.produce_block(advance_clock=False)

    # -- execution ----------------------------------------------------------------

    def install(self, *, delay: float = 0.0) -> None:
        """Spawn the load processes on the scheduler (attached mode)."""
        if self._installed:
            raise SimulationError("a LoadGenerator installs exactly once")
        self._installed = True
        self._wall_started = time.perf_counter()
        self._setup_population()
        self._start_sim = self.clock.now + delay
        self._start_height = self.node.block_number
        if self.config.mode == "open":
            self.scheduler.spawn(self._arrival_loop(), delay=delay,
                                 name=f"{self.label_prefix}-arrivals")
            self.scheduler.spawn(self._reaper(), delay=delay,
                                 name=f"{self.label_prefix}-reaper")
        else:
            self._clients_active = self.clients.size
            for index in range(self.clients.size):
                self.scheduler.spawn(self._client_loop(index), delay=delay,
                                     name=f"{self.label_prefix}-client-{index}")
        if self.manage_blocks:
            self.scheduler.spawn(self._producer(),
                                 name=f"{self.label_prefix}-producer")

    def finalize(self) -> LoadReport:
        """Assemble the report after the scheduler has drained."""
        node = self.node
        self._note_mempool_depth()
        metrics = self.rpc.gateway.metrics
        # Read, never create: _op() would side-effect a zero-count entry
        # into the ops snapshot and make finalize() non-idempotent.
        transfer_stats = self.ops.get("transfer")
        report = LoadReport(
            config=self.config.to_dict(),
            arrival=self.arrivals.describe(),
            makespan_seconds=max(0.0, self.clock.now - self._start_sim),
            wall_seconds=time.perf_counter() - self._wall_started,
            events_executed=self.scheduler.events_executed,
            offered_requests=self.offered,
            ops={name: stats.to_dict() for name, stats in self.ops.items()},
            tx_submitted=transfer_stats.successes if transfer_stats else 0,
            tx_mined=self.tx_mined,
            tx_mined_in_window=self.tx_mined_in_window,
            receipt_timeouts=self.receipt_timeouts,
            tx_confirmation=(self.confirmation.to_dict()
                             if len(self.confirmation) else {}),
            blocks_produced=node.block_number - self._start_height,
            mempool_max_depth=self._mempool_peak,
            rpc_stats=metrics.snapshot(include_latency=False) if metrics else None,
            obs_stats=self.obs.stats_dict() if self.obs is not None else None,
            parallel_stats=self._parallel_stats(),
            batchverify_stats=self._batchverify_stats(),
        )
        return report

    def _parallel_stats(self) -> Optional[Dict[str, Any]]:
        """Executor config + counters when the driven chain runs in waves."""
        chain = getattr(self.node, "chain", None)
        if chain is None or getattr(chain, "parallel", None) is None:
            return None
        return {
            "config": chain.parallel.config.to_dict(),
            "stats": chain.parallel_stats(),
        }

    def _batchverify_stats(self) -> Optional[Dict[str, Any]]:
        """Batch/pipeline counters when the chain deferred verification."""
        chain = getattr(self.node, "chain", None)
        if chain is None or getattr(chain, "batchverify", None) is None:
            return None
        return chain.batchverify_stats()

    def run(self) -> LoadReport:
        """Standalone: install, drain the event queue, report."""
        if self.attached:
            raise SimulationError(
                "run() is for standalone generators; attached generators are "
                "driven by their scenario's scheduler")
        self.install()
        self.scheduler.run(max_events=self.config.max_events)
        return self.finalize()


# -- sweeps and wall-clock ingest ------------------------------------------------


def presigned_transfers(num_txs: int, num_senders: int, label: str,
                        fund_wei: Optional[int] = None,
                        node: Optional[EthereumNode] = None):
    """A funded node plus ``num_txs`` signed transfers, ready to submit.

    The ONE ingest-workload fixture: :func:`measure_tx_ingest` (the sweep's
    wall-clock number) and the gated ``test_bench_tx_ingest`` /
    ``test_bench_mempool_select`` benchmarks all build their workload here,
    so the "tx-ingest" metric in ``BENCH_PR4.json`` and the CI baseline is
    one measurement, not two drifting re-implementations.  Pass ``node`` to
    fund and target an existing stack (e.g. a cluster facade) instead of a
    fresh single node.
    """
    if num_txs <= 0 or num_senders <= 0:
        raise SimulationError("num_txs and num_senders must be positive")
    if node is None:
        node = EthereumNode(config=ChainConfig(), backend=default_registry())
    faucet = Faucet(node)
    keypairs = [KeyPair.from_label(f"{label}-{index}")
                for index in range(num_senders)]
    for keypair in keypairs:
        faucet.drip(keypair.address, fund_wei or ether_to_wei(5))
    sink = Address(KeyPair.from_label(f"{label}-sink").address)
    transactions = []
    per_sender = (num_txs + num_senders - 1) // num_senders
    for keypair in keypairs:
        sender = Address(keypair.address)
        for nonce in range(per_sender):
            if len(transactions) >= num_txs:
                break
            tx = Transaction(sender=sender, to=sink, value=1, nonce=nonce,
                             gas_limit=21_000, gas_price=10**9)
            tx.sign(keypair)
            transactions.append(tx)
    return node, transactions


def measure_tx_ingest(num_txs: int = 500, num_senders: int = 20,
                      seed: int = 7,
                      cluster: Optional[int] = None,
                      parallel: Optional[int] = None,
                      batch_verify: Optional[int] = None) -> Dict[str, Any]:
    """Wall-clock tx-ingest throughput: submit pre-signed transfers, mine all.

    Signing happens before the clock starts (it is client-side work); the
    measured window covers validation, mempool admission, block selection and
    execution -- the server-side ingest path the hot-path optimizations
    target.  With ``cluster=N`` the measured path is *replicated* ingest:
    every transfer is flooded to N replicas, blocks come from the rotation
    leaders and every replica re-executes them.
    """
    cluster_obj = None
    node = None
    if cluster is not None:
        from repro.cluster import ChainCluster, ClusterConfig, ClusterNode

        cluster_obj = ChainCluster(
            ClusterConfig(replicas=cluster, seed=derive_seed(seed, "ingest"),
                          parallel_execution=parallel),
            registry=default_registry())
        node = ClusterNode(cluster_obj)
    node, transactions = presigned_transfers(num_txs, num_senders,
                                             f"ingest-{seed}", node=node)
    if parallel is not None and cluster_obj is None:
        node.chain.enable_parallel_execution(parallel)
    if batch_verify is not None and cluster_obj is None:
        node.chain.enable_batch_verify(batch_verify)
    started = time.perf_counter()
    if cluster_obj is not None:
        for tx in transactions:
            node.send_transaction(tx)
        for _ in range(1 + num_txs // 10):
            if len(node.chain.mempool) == 0:
                break
            cluster_obj.tick()
    else:
        for tx in transactions:
            node.chain.submit_transaction(tx)
        node.chain.produce_blocks_until_empty(max_blocks=1 + num_txs // 10)
    elapsed = time.perf_counter() - started
    if len(node.chain.mempool) != 0:
        raise SimulationError("ingest measurement did not drain the mempool")
    result = {
        "txs": len(transactions),
        "senders": num_senders,
        "seconds": round(elapsed, 4),
        "tps": round(len(transactions) / elapsed, 2),
    }
    if cluster_obj is not None:
        cluster_obj.converge()
        result["cluster"] = cluster
        result["replicated"] = cluster_obj.heads_identical()
    if parallel is not None:
        result["parallel"] = parallel
    if batch_verify is not None and cluster_obj is None:
        result["batch_verify"] = batch_verify
        node.chain.batchverify.close()
    return result


def run_sweep(
    config: LoadGenConfig,
    rates: List[float],
    seed_ingest_tps: Optional[float] = SEED_TX_INGEST_TPS,
    ingest_txs: int = 500,
) -> SweepReport:
    """Run the same workload at each offered rate; find the saturation knee."""
    if not rates:
        raise SimulationError("a sweep needs at least one offered rate")
    if config.mode != "open":
        # Only the open-loop arrival process consumes the offered rate; a
        # closed-loop sweep would run the identical workload at every point
        # and report a fabricated capacity curve.
        raise SimulationError(
            "saturation sweeps are open-loop (the offered rate drives the "
            f"arrival process); got mode={config.mode!r}")
    points: List[SweepPoint] = []
    transfer_weight = RequestMix(config.mix).weight("transfer")
    for rate in sorted(rates):
        generator = LoadGenerator(config.with_overrides(rate=float(rate)))
        report = generator.run()
        points.append(SweepPoint.from_report(
            float(rate), float(rate) * transfer_weight, report))
    ingest = measure_tx_ingest(num_txs=ingest_txs, seed=config.seed,
                               cluster=config.cluster,
                               parallel=config.parallel,
                               batch_verify=config.batch_verify)
    return SweepReport(points=points, ingest=ingest,
                       seed_ingest_tps=seed_ingest_tps)
