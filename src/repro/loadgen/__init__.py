"""repro.loadgen -- the open-/closed-loop workload driver.

Spawns thousands of simulated clients on the shared simulated clock, firing
skewed (Zipfian) and bursty (Poisson / ramp / flash-crowd) request mixes at
the JSON-RPC gateway through :class:`~repro.rpc.client.MarketplaceClient`,
and accounts latency percentiles, sustained throughput and error rates into
load and saturation-sweep reports.

See ``docs/performance.md`` for how to run it and read the reports.
"""

from repro.loadgen.arrivals import (
    ArrivalProcess,
    FlashCrowdArrivals,
    PoissonArrivals,
    RampArrivals,
    UniformArrivals,
    ZipfSelector,
    make_arrivals,
)
from repro.loadgen.driver import (
    SEED_TX_INGEST_TPS,
    LoadGenConfig,
    LoadGenerator,
    measure_tx_ingest,
    presigned_transfers,
    run_sweep,
)
from repro.loadgen.report import (
    HttpLoadReport,
    LoadReport,
    SweepPoint,
    SweepReport,
)
from repro.loadgen.stats import LatencyStats, OpStats, percentile
from repro.loadgen.workload import DEFAULT_MIX, ClientPool, RequestMix

__all__ = [
    "ArrivalProcess",
    "ClientPool",
    "DEFAULT_MIX",
    "FlashCrowdArrivals",
    "HttpLoadReport",
    "LatencyStats",
    "LoadGenConfig",
    "LoadGenerator",
    "LoadReport",
    "OpStats",
    "PoissonArrivals",
    "RampArrivals",
    "RequestMix",
    "SEED_TX_INGEST_TPS",
    "SweepPoint",
    "SweepReport",
    "UniformArrivals",
    "ZipfSelector",
    "make_arrivals",
    "measure_tx_ingest",
    "percentile",
    "presigned_transfers",
    "run_sweep",
]
