"""Chain-side engine: deferred admission, batch settle, pipelined kicks.

The scalar ingest path verifies every signature at submission time, inside
the caller's thread, before the transaction may enter the mempool.  With
batch verification enabled the chain defers that work: submission performs
only the *structural* checks (a signature is present, its public key is in
range and hashes to the claimed sender -- anything else raises the exact
``InvalidSignatureError`` the scalar path would), and the Schnorr math for
everything admitted settles at the top of block production as **one batch**
per block, optionally farmed out to the verify worker pool.

Settling happens *before* mempool selection and evicts every transaction
whose deferred verdict came back ``False``.  Selection therefore sees
exactly the set of valid transactions the scalar path would have admitted,
in the same arrival order -- which is what makes batch-produced blocks
fingerprint-identical to serial ones.

The **pipeline** overlaps the next block's verification with the current
block's execution and persistence: right after selection the engine kicks
an asynchronous batch verify of the still-cold pending transactions (the
ones selection left behind, i.e. next block's candidates) onto the worker
pool, and joins it at the next block's settle.  Every stage is wrapped in
the fallback ladder: any failure abandons the batch attempt and re-verifies
on the scalar path before a single shared-state write, so a crashing worker
degrades throughput, never correctness.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from repro.chain.account import Address
from repro.chain.keys import GROUP_PRIME, address_from_public_key
from repro.chain.transaction import Transaction
from repro.errors import InvalidSignatureError
from repro.parallel.verify import (
    BatchVerifyHandle,
    SignatureVerifyPool,
    _memoized_verdict,
)

from repro.batchverify.batch import VerifierStats


@dataclass(frozen=True)
class BatchVerifyConfig:
    """Knobs for deferred batch verification and the production pipeline.

    Attributes
    ----------
    verify_workers:
        Processes in the signature-verify pool.  ``0`` settles batches
        inline on the coordinator thread (no pipeline overlap, but still
        the batched arithmetic); the CLI default is 4.
    pipeline:
        Whether to kick next-block verification during execute/persist of
        the current block.  Requires ``verify_workers > 0`` to overlap.
    chunk_size:
        Target transactions per worker chunk.  Chunks are packed from
        whole per-sender groups, so a prolific sender may exceed this.
    """

    verify_workers: int = 0
    pipeline: bool = True
    chunk_size: int = 64

    def __post_init__(self) -> None:
        if self.verify_workers < 0:
            raise ValueError(
                f"verify_workers must be >= 0, got {self.verify_workers}")
        if self.chunk_size < 1:
            raise ValueError(
                f"chunk_size must be >= 1, got {self.chunk_size}")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "verify_workers": self.verify_workers,
            "pipeline": bool(self.pipeline),
            "chunk_size": self.chunk_size,
        }


class BatchVerifyEngine:
    """Owns the deferred-verification lifecycle for one chain."""

    def __init__(self, config: BatchVerifyConfig) -> None:
        self.config = config
        self._pool = SignatureVerifyPool(config.verify_workers)
        self._inflight: Optional[BatchVerifyHandle] = None
        self._kick_started: float = 0.0
        #: Aggregated verifier counters: coordinator-side inline batches
        #: plus every worker-side delta merged at join time.
        self.verifier_stats = VerifierStats()
        self.blocks_settled = 0
        self.deferred_admissions = 0
        self.deferred_rejections = 0
        self.pipeline_kicks = 0
        self.pipeline_joins = 0
        self.pipeline_fallbacks = 0
        self.verify_jobs_offloaded = 0
        #: Wall-clock the pipeline verified *while* the chain executed and
        #: persisted (kick -> join-start); the overlap the pipeline exists
        #: to create.
        self.overlap_seconds = 0.0
        #: Wall-clock the settle actually blocked on in-flight workers
        #: (join-start -> join-end); near zero when the pipeline keeps up.
        self.join_wait_seconds = 0.0

    # -- admission -----------------------------------------------------------

    def admission_check(self, tx: Transaction) -> None:
        """Structural checks at submission; Schnorr math is deferred.

        Raises the scalar path's exact ``InvalidSignatureError`` for
        everything decidable without exponentiation: a missing signature, an
        out-of-range public key, or a key that does not hash to the claimed
        sender (which is how a wrong-key forgery fails the scalar address
        recovery).  A transaction whose verify memo is already warm is
        judged by it -- deferral never un-rejects a known-bad signature.
        """
        verdict = _memoized_verdict(tx)
        if verdict is None:
            public_key = tx.signature.public_key
            if 1 < public_key < GROUP_PRIME and Address(
                    address_from_public_key(public_key)) == tx.sender:
                self.deferred_admissions += 1
                return
        elif verdict:
            return
        raise InvalidSignatureError(
            f"transaction {tx.hash_hex} is not properly signed")

    # -- settle / pipeline ---------------------------------------------------

    def settle(self, pending: Sequence[Transaction]) -> List[Transaction]:
        """Resolve every deferred verdict; return the transactions to evict.

        Joins the previous block's pipelined kick, batch-verifies whatever
        is still cold (new arrivals since the kick), and hands back the
        transactions whose signatures failed.  Any failure anywhere drops
        to the scalar path -- the fallback ladder -- before the caller
        touches shared state, so the returned eviction set is always
        authoritative.
        """
        try:
            self._join_inflight()
            cold = [tx for tx in pending if _memoized_verdict(tx) is None]
            if cold:
                handle = self._pool.batch_prewarm_async(
                    cold, chunk_size=self.config.chunk_size)
                handle.join()
                self.verify_jobs_offloaded += handle.jobs_submitted
                self.verifier_stats.merge(handle.stats_delta)
        except Exception:
            self.pipeline_fallbacks += 1
            self._inflight = None
            for tx in pending:
                tx.verify_signature()
        invalid = [tx for tx in pending if not tx.verify_signature()]
        self.deferred_rejections += len(invalid)
        self.blocks_settled += 1
        return invalid

    def kick(self, transactions: Sequence[Transaction]) -> bool:
        """Start verifying next block's candidates while this one executes.

        Called right after selection with the pending transactions that
        were *not* selected.  No-ops (returns ``False``) when pipelining is
        off, there are no workers to overlap with, or nothing is cold.
        """
        if not self.config.pipeline or self.config.verify_workers == 0:
            return False
        cold = [
            tx for tx in transactions if _memoized_verdict(tx) is None
        ]
        if not cold:
            return False
        try:
            self._inflight = self._pool.batch_prewarm_async(
                cold, chunk_size=self.config.chunk_size)
        except Exception:
            self.pipeline_fallbacks += 1
            self._inflight = None
            return False
        self._kick_started = time.monotonic()
        self.pipeline_kicks += 1
        return True

    def _join_inflight(self) -> None:
        if self._inflight is None:
            return
        handle, self._inflight = self._inflight, None
        wait_started = time.monotonic()
        self.overlap_seconds += max(0.0, wait_started - self._kick_started)
        handle.join()
        self.join_wait_seconds += time.monotonic() - wait_started
        self.verify_jobs_offloaded += handle.jobs_submitted
        self.verifier_stats.merge(handle.stats_delta)
        self.pipeline_joins += 1

    def close(self) -> None:
        """Tear down the verify pool (abandoning any in-flight kick)."""
        self._inflight = None
        self._pool.close()

    # -- reporting -----------------------------------------------------------

    @property
    def stats(self) -> Dict[str, Any]:
        """Counters for RPC / obs export (see ``parallel_status``)."""
        return {
            "config": self.config.to_dict(),
            "blocks_settled": self.blocks_settled,
            "deferred_admissions": self.deferred_admissions,
            "deferred_rejections": self.deferred_rejections,
            "pipeline_kicks": self.pipeline_kicks,
            "pipeline_joins": self.pipeline_joins,
            "pipeline_fallbacks": self.pipeline_fallbacks,
            "verify_jobs_offloaded": self.verify_jobs_offloaded,
            "overlap_seconds": round(self.overlap_seconds, 6),
            "join_wait_seconds": round(self.join_wait_seconds, 6),
            "verifier": self.verifier_stats.to_dict(),
        }
