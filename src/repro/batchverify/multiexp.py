"""Shamir/Straus simultaneous multi-exponentiation.

The batch Schnorr check (``repro.batchverify.batch``) needs one product of
many powers, ``prod(base_i ^ exp_i) mod P``, over mixed bases: hundreds of
reconstructed commitments with short random coefficients plus a handful of
distinct sender public keys with wider aggregated exponents.  Computing each
power separately squares once per exponent bit *per base*; Straus's trick
interleaves all of them through **one shared squaring chain** -- the chain is
as long as the widest exponent, and each base only contributes one table
multiplication per non-zero window of its own exponent.

The result is bit-identical to ``math.prod(pow(b, e, m) for b, e in pairs)``
on every input, including the adversarial exponents the hot-path suite pins
(0, 1, order-sized, above-order) -- exponents are used exactly as given,
never reduced by a group order the caller did not prove.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

#: Window width for the per-base digit tables.  4 bits means a 15-entry
#: table per base (15 multiplications to build) and one table multiplication
#: per non-zero 4-bit window -- the right trade for the 128-bit random
#: coefficients the batch verifier feeds this with.
WINDOW_BITS = 4


def simultaneous_multiexp(pairs: Sequence[Tuple[int, int]], modulus: int,
                          window_bits: int = WINDOW_BITS) -> int:
    """``prod(base ** exponent) mod modulus`` over all ``(base, exponent)``.

    One shared squaring chain for every pair (Straus/Shamir), with a
    ``2^window_bits - 1``-entry odd-digit table per base.  Exact: equal to
    the naive product of ``pow`` calls for any integer exponents.  Negative
    exponents are delegated to the builtin ``pow`` (modular inverse) per
    pair; they never occur on the verify path but the function stays total.
    """
    if modulus <= 0:
        raise ValueError(f"modulus must be positive, got {modulus}")
    if modulus == 1:
        return 0
    folded = 1
    active: List[Tuple[int, int]] = []
    for base, exponent in pairs:
        if exponent < 0:
            # Builtin pow resolves the inverse; fold the rare outlier in
            # *outside* the squaring chain so it is never squared itself.
            folded = folded * pow(base, exponent, modulus) % modulus
        elif exponent > 0:
            active.append((base % modulus, exponent))
        # exponent == 0 contributes a factor of 1 -- including pow(0, 0) == 1.
    if not active:
        return folded

    digit_count = (1 << window_bits) - 1
    max_bits = max(exponent.bit_length() for _, exponent in active)
    window_count = (max_bits + window_bits - 1) // window_bits

    # One bucket of table factors per window position.  Scanning each
    # exponent's digits *once* (instead of probing every base at every
    # window of the shared chain) keeps the Python-level work proportional
    # to the number of non-zero digits: with a few wide aggregated-key
    # exponents setting a ~2000-bit chain next to hundreds of 128-bit
    # coefficients, that is a ~20x smaller loop.  Folding a window's
    # factors in bucket order instead of pair order is exact -- modular
    # multiplication commutes.
    buckets: List[List[int]] = [[] for _ in range(window_count)]
    for base, exponent in active:
        table = [base]
        for _ in range(digit_count - 1):
            table.append(table[-1] * base % modulus)
        if window_bits == 4:
            # Fast path for the default width: two nibble digits per byte,
            # extracted from an immutable bytes snapshot -- no per-window
            # big-int shifts.
            data = exponent.to_bytes((exponent.bit_length() + 7) // 8, "big")
            index = 0
            for byte in reversed(data):
                low = byte & 15
                if low:
                    buckets[index].append(table[low - 1])
                high = byte >> 4
                if high:
                    buckets[index + 1].append(table[high - 1])
                index += 2
        else:
            window_index = 0
            while exponent:
                digit = exponent & digit_count
                if digit:
                    buckets[window_index].append(table[digit - 1])
                exponent >>= window_bits
                window_index += 1

    result = 1
    for window_index in range(window_count - 1, -1, -1):
        if window_index != window_count - 1:
            for _ in range(window_bits):
                result = result * result % modulus
        for factor in buckets[window_index]:
            result = result * factor % modulus
    return result * folded % modulus
