"""Batch Schnorr verification with a random-linear-combination check.

The scalar path (``repro.chain.keys.verify_signature``) reconstructs each
signature's commitment ``r = g^s * (y^-1)^e`` and checks that the carried
challenge ``e`` equals ``H(r || m)``.  The expensive part is the per-sender
exponentiation ``(y^-1)^e`` -- a fresh ~256-bit square-and-multiply chain per
signature.  The batch verifier removes that cost for the common case:

* per-sender inverses are filled with **one** Montgomery batch inversion
  (:func:`repro.chain.keys.prime_inverses`);
* each ``(y^-1)^e`` runs through a per-key fixed-base comb (the same lazy-row
  table as the generator's, built once a sender repeats), so warm senders pay
  table lookups instead of squaring chains;
* the whole batch of reconstructed commitments is then validated by **one
  random-linear-combination check**: with random coefficients ``z_i`` drawn
  over ``GROUP_ORDER``, the equation

      g^(sum z_i * s_i mod q)  ==  prod r_i^z_i  *  prod_y y^(sum z_i * e_i)

  holds identically when every ``r_i`` was reconstructed correctly, and a
  single wrong commitment makes it fail except with probability ~2^-128 over
  the coefficients.  The right-hand side is one Shamir/Straus simultaneous
  multi-exponentiation across the per-sender public keys (grouped, so K
  distinct senders cost K wide exponents, not N) plus the commitments; the
  left-hand side reuses the generator's fixed-base comb.

The RLC is an integrity gate for the optimised arithmetic, not the verdict:
per-signature accept/reject still comes from the exact challenge hash check,
byte-identical to the scalar path.  If the RLC fails, deterministic bisection
(midpoint splits, same coefficients) isolates the affected signatures and
re-verifies them with the scalar ``verify_signature`` -- so per-tx verdicts
and error attribution are byte-identical to the scalar path even when every
optimisation above is distrusted.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.chain.account import Address
from repro.chain.keys import (
    GROUP_ORDER,
    GROUP_PRIME,
    Signature,
    _FixedBaseComb,
    _GENERATOR_COMB,
    _hash_to_int,
    _int_to_bytes,
    _inverse_of,
    address_from_public_key,
    prime_inverses,
    to_checksum_address,
    verify_signature,
)
from repro.utils.cache import LRUCache
from repro.utils.hashing import keccak256

from repro.batchverify.multiexp import simultaneous_multiexp

#: One verify item: (signature, 32-byte message hash, optional address).
VerifyItem = Tuple[Signature, bytes, Optional[str]]

#: Bits of each random linear-combination coefficient.  128 random bits give
#: a ~2^-128 false-accept bound for the aggregated equation -- the same
#: margin batch Ed25519 verifiers use -- while keeping the per-commitment
#: Straus cost to 32 four-bit windows instead of 512.
COEFFICIENT_BITS = 128

#: A sender's inverse is promoted to a fixed-base comb table after this many
#: sightings.  One-shot (often hostile) keys stay on the builtin ``pow`` --
#: building a table for a key never seen again would cost ~3x a scalar
#: verify -- while real senders, who repeat, go table-fast from their second
#: signature on.
COMB_PROMOTION_THRESHOLD = 2

#: Distinct senders whose comb tables are kept alive (LRU).  Each warm table
#: is worth a few hundred KiB, so the cap bounds worst-case memory at tens
#: of MiB while covering far more senders than a block ever carries.
COMB_CACHE_KEYS = 96


class VerifierStats:
    """Counters for one verifier instance (worker- or coordinator-side)."""

    FIELDS = (
        "signatures", "batches", "fast_path", "precheck_rejects",
        "scalar_routed", "rlc_checks", "rlc_failures", "bisections",
        "scalar_fallbacks", "comb_builds", "comb_powers",
    )

    def __init__(self) -> None:
        for field in self.FIELDS:
            setattr(self, field, 0)

    def to_dict(self) -> Dict[str, int]:
        return {field: getattr(self, field) for field in self.FIELDS}

    def merge(self, delta: Dict[str, int]) -> None:
        for field in self.FIELDS:
            setattr(self, field, getattr(self, field) + int(delta.get(field, 0)))


class BatchVerifier:
    """Verifies batches of Schnorr signatures, scalar-equivalent by design."""

    def __init__(self) -> None:
        self.stats = VerifierStats()
        #: public key -> [sightings, comb table or None].  LRU-bounded so a
        #: stream of distinct senders cannot grow table memory without limit.
        self._combs = LRUCache(capacity=COMB_CACHE_KEYS)

    # -- public API ---------------------------------------------------------

    def comb_cache(self) -> LRUCache:
        """The per-sender comb cache (for obs cache-stats registration)."""
        return self._combs

    def verify_batch(self, items: Sequence[VerifyItem]) -> List[bool]:
        """Per-item verdicts, byte-identical to scalar ``verify_signature``."""
        self.stats.batches += 1
        self.stats.signatures += len(items)
        verdicts: List[Optional[bool]] = [None] * len(items)
        fast: List[int] = []
        for index, (signature, message_hash, _) in enumerate(items):
            if len(message_hash) != 32:
                # Scalar verify raises on malformed hashes; so does the batch.
                raise ValueError("verify expects a 32-byte message hash")
            y = signature.public_key
            if not (1 < y < GROUP_PRIME):
                verdicts[index] = False
                self.stats.precheck_rejects += 1
            elif not (0 <= signature.e < GROUP_ORDER):
                # The scalar path compares the carried challenge against a
                # hash reduced mod GROUP_ORDER: an out-of-range challenge can
                # never match, so the verdict is False without any math.
                verdicts[index] = False
                self.stats.precheck_rejects += 1
            elif signature.s < 0:
                # Negative responses are representable (never emitted by the
                # signer) and may still verify mod the group order; route the
                # oddball straight to the scalar path rather than special-
                # casing it here.
                verdicts[index] = self._scalar_verdict(items[index])
                self.stats.scalar_routed += 1
            else:
                fast.append(index)

        if fast:
            self.stats.fast_path += len(fast)
            prime_inverses(items[i][0].public_key for i in fast)
            commitments = {i: self._reconstruct_commitment(items[i][0])
                           for i in fast}
            coefficients = self._coefficients([items[i] for i in fast])
            self._settle(items, fast, commitments,
                         dict(zip(fast, coefficients)), verdicts)
        return [bool(v) for v in verdicts]

    def verify_transactions(
            self, jobs: Sequence[Tuple[Dict[str, Any], bytes, str]]) -> List[bool]:
        """Batch form of ``repro.parallel.verify._verify_job``.

        Each job is ``(signature dict, tx hash bytes, sender address)``; the
        verdict matches the scalar job exactly: the signature must verify and
        its public key must hash to the claimed sender.
        """
        signatures = [Signature.from_dict(sig_dict) for sig_dict, _, _ in jobs]
        items: List[VerifyItem] = [
            (signature, tx_hash, None)
            for signature, (_, tx_hash, _) in zip(signatures, jobs)
        ]
        verdicts = self.verify_batch(items)
        return [
            verdict and Address(address_from_public_key(signature.public_key))
            == Address(sender)
            for verdict, signature, (_, _, sender)
            in zip(verdicts, signatures, jobs)
        ]

    # -- fast path ----------------------------------------------------------

    def _reconstruct_commitment(self, signature: Signature) -> int:
        """``r = g^s * (y^-1)^e`` via the comb tables (exact group element)."""
        gs = _GENERATOR_COMB.pow(signature.s)
        return gs * self._inverse_power(
            signature.public_key, signature.e) % GROUP_PRIME

    def _inverse_power(self, public_key: int, exponent: int) -> int:
        """``(y^-1)^e`` through the per-key comb once the sender repeats."""
        entry = self._combs.get(public_key)
        if entry is None:
            entry = [0, None]
            self._combs.put(public_key, entry)
        entry[0] += 1
        inverse = _inverse_of(public_key)
        if entry[1] is None and entry[0] >= COMB_PROMOTION_THRESHOLD:
            entry[1] = _FixedBaseComb(inverse, GROUP_PRIME, window_bits=4)
            self.stats.comb_builds += 1
        if entry[1] is not None:
            self.stats.comb_powers += 1
            return entry[1].pow(exponent)
        return pow(inverse, exponent, GROUP_PRIME)

    def _coefficients(self, fast_items: Sequence[VerifyItem]) -> List[int]:
        """Deterministic random coefficients over ``GROUP_ORDER``.

        Derived by hashing the whole batch transcript (every signature and
        message), so they are unpredictable functions of the batch content,
        reproducible across replicas and processes, and independent of any
        per-process RNG state -- determinism the serial-equivalence pins
        rely on.  Each coefficient is in ``[1, 2^128]``, a subset of
        ``[1, GROUP_ORDER)``.
        """
        transcript = keccak256(b"".join(
            keccak256(_int_to_bytes(signature.e) + _int_to_bytes(signature.s)
                      + _int_to_bytes(signature.public_key) + message_hash)
            for signature, message_hash, _ in fast_items
        ))
        return [
            1 + int.from_bytes(
                keccak256(b"oflw3-batchverify-rlc" + transcript
                          + index.to_bytes(8, "big"))[:COEFFICIENT_BITS // 8],
                "big")
            for index in range(len(fast_items))
        ]

    def _rlc_holds(self, items: Sequence[VerifyItem], indices: Sequence[int],
                   commitments: Dict[int, int],
                   coefficients: Dict[int, int]) -> bool:
        """The aggregated check over one subset of the batch."""
        self.stats.rlc_checks += 1
        response_sum = 0
        per_key_exponents: Dict[int, int] = {}
        pairs: List[Tuple[int, int]] = []
        for index in indices:
            signature = items[index][0]
            z = coefficients[index]
            response_sum += z * signature.s
            per_key_exponents[signature.public_key] = (
                per_key_exponents.get(signature.public_key, 0)
                + z * signature.e)
            pairs.append((commitments[index], z))
        # The generator's order divides GROUP_ORDER (pinned by the hot-path
        # suite), so reducing its exponent is exact.  Public keys are
        # attacker-supplied and may live outside the quadratic-residue
        # subgroup, so their aggregated exponents are used as-is.
        pairs.extend(per_key_exponents.items())
        lhs = _GENERATOR_COMB.pow(response_sum % GROUP_ORDER)
        rhs = simultaneous_multiexp(pairs, GROUP_PRIME)
        return lhs == rhs

    def _settle(self, items: Sequence[VerifyItem], indices: List[int],
                commitments: Dict[int, int], coefficients: Dict[int, int],
                verdicts: List[Optional[bool]]) -> None:
        """Fill verdicts for ``indices``: RLC-gated fast path or bisection."""
        if self._rlc_holds(items, indices, commitments, coefficients):
            for index in indices:
                verdicts[index] = self._challenge_verdict(
                    items[index], commitments[index])
            return
        self.stats.rlc_failures += 1
        if len(indices) == 1:
            # The reconstructed commitment itself is suspect: recompute from
            # scratch on the scalar path, which is authoritative.
            verdicts[indices[0]] = self._scalar_verdict(items[indices[0]])
            self.stats.scalar_fallbacks += 1
            return
        self.stats.bisections += 1
        midpoint = len(indices) // 2
        self._settle(items, indices[:midpoint], commitments, coefficients,
                     verdicts)
        self._settle(items, indices[midpoint:], commitments, coefficients,
                     verdicts)

    def _challenge_verdict(self, item: VerifyItem, commitment: int) -> bool:
        """The scalar path's hash and address checks over a commitment."""
        signature, message_hash, address = item
        expected_challenge = _hash_to_int(
            _int_to_bytes(commitment), message_hash)
        if expected_challenge != signature.e:
            return False
        if address is not None and address_from_public_key(
                signature.public_key) != to_checksum_address(address):
            return False
        return True

    def _scalar_verdict(self, item: VerifyItem) -> bool:
        signature, message_hash, address = item
        return verify_signature(signature, message_hash, address)


#: Process-wide default verifier: comb tables and sighting counters are only
#: useful when they persist across batches, so inline verification and the
#: worker processes each share one instance per process.
_DEFAULT_VERIFIER: Optional[BatchVerifier] = None


def default_verifier() -> BatchVerifier:
    """The process-wide :class:`BatchVerifier` (created on first use)."""
    global _DEFAULT_VERIFIER
    if _DEFAULT_VERIFIER is None:
        _DEFAULT_VERIFIER = BatchVerifier()
    return _DEFAULT_VERIFIER


def batch_verify_signatures(items: Sequence[VerifyItem]) -> List[bool]:
    """Verify ``(signature, message_hash, address)`` items as one batch."""
    return default_verifier().verify_batch(items)
