"""Batch Schnorr verification and the pipelined block producer's engine.

Three layers, innermost first:

* :mod:`repro.batchverify.multiexp` -- Shamir/Straus simultaneous
  multi-exponentiation, the shared squaring chain under the batch check;
* :mod:`repro.batchverify.batch` -- :class:`BatchVerifier`: per-sender comb
  tables, Montgomery-primed inverses, the random-linear-combination
  integrity gate and its deterministic bisection fallback.  Per-signature
  verdicts are byte-identical to the scalar ``verify_signature``;
* :mod:`repro.batchverify.engine` -- :class:`BatchVerifyEngine`: deferred
  admission, per-block batch settling with mempool eviction, and the
  execute/verify pipeline over the signature worker pool.

Enabled per-chain via ``Blockchain.enable_batch_verify`` (CLI:
``--batch-verify``); with it off, none of this imports and the scalar path
is untouched.
"""

from repro.batchverify.batch import (
    BatchVerifier,
    VerifierStats,
    batch_verify_signatures,
    default_verifier,
)
from repro.batchverify.engine import BatchVerifyConfig, BatchVerifyEngine
from repro.batchverify.multiexp import simultaneous_multiexp

__all__ = [
    "BatchVerifier",
    "BatchVerifyConfig",
    "BatchVerifyEngine",
    "VerifierStats",
    "batch_verify_signatures",
    "default_verifier",
    "simultaneous_multiexp",
]
