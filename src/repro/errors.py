"""Exception hierarchy shared across all :mod:`repro` subsystems.

Every subsystem raises exceptions derived from :class:`ReproError` so that a
caller can distinguish "the reproduction library rejected this operation"
from programming errors (``TypeError``, ``KeyError``, ...).  Sub-hierarchies
mirror the subsystem layout: chain, contracts, IPFS, ML, FL, incentives, web
and system orchestration.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


# ---------------------------------------------------------------------------
# Blockchain substrate
# ---------------------------------------------------------------------------


class ChainError(ReproError):
    """Base class for blockchain errors."""


class InvalidAddressError(ChainError):
    """An address string is malformed (wrong length, bad hex, bad checksum)."""


class InvalidSignatureError(ChainError):
    """A transaction signature does not verify against the sender address."""


class InvalidTransactionError(ChainError):
    """A transaction is structurally invalid (bad nonce, negative value...)."""


class InsufficientFundsError(ChainError):
    """The sender balance cannot cover value + gas_limit * gas_price."""


class NonceError(InvalidTransactionError):
    """The transaction nonce does not match the sender's account nonce."""


class OutOfGasError(ChainError):
    """Execution consumed more gas than the transaction's gas limit."""


class BlockValidationError(ChainError):
    """A block fails structural or parent-linkage validation."""


class UnknownBlockError(ChainError):
    """A block hash or number does not exist on the canonical chain."""


class UnknownTransactionError(ChainError):
    """A transaction hash is not known to the chain or mempool."""


class MempoolError(ChainError):
    """The mempool rejected a transaction (duplicate, underpriced, full)."""


# ---------------------------------------------------------------------------
# Smart contracts
# ---------------------------------------------------------------------------


class ContractError(ReproError):
    """Base class for smart-contract errors."""


class ContractRevert(ContractError):
    """The contract explicitly reverted; carries the revert reason.

    Mirrors Solidity's ``require(cond, "reason")`` /  ``revert("reason")``.
    State changes made by the reverted call are rolled back and the gas spent
    up to the revert point is still charged.
    """

    def __init__(self, reason: str = "") -> None:
        super().__init__(reason or "execution reverted")
        self.reason = reason


class ContractNotFoundError(ContractError):
    """No contract is deployed at the target address."""


class AbiError(ContractError):
    """A call does not match the contract ABI (unknown method, bad args)."""


# ---------------------------------------------------------------------------
# IPFS substrate
# ---------------------------------------------------------------------------


class IpfsError(ReproError):
    """Base class for IPFS errors."""


class InvalidCidError(IpfsError):
    """A CID string or digest is malformed."""


class BlockNotFoundError(IpfsError):
    """A block (by CID) is not present locally nor retrievable from peers."""


class PinError(IpfsError):
    """A pin/unpin operation is invalid (e.g. unpinning a non-pinned CID)."""


# ---------------------------------------------------------------------------
# ML substrate
# ---------------------------------------------------------------------------


class MLError(ReproError):
    """Base class for neural-network substrate errors."""


class ShapeError(MLError):
    """An array has an incompatible shape for the requested operation."""


class SerializationError(MLError):
    """Model (de)serialization failed (corrupt payload, version mismatch)."""


# ---------------------------------------------------------------------------
# Federated learning
# ---------------------------------------------------------------------------


class FLError(ReproError):
    """Base class for federated-learning errors."""


class AggregationError(FLError):
    """An aggregator received incompatible or empty model updates."""


class PartitionError(FLError):
    """A dataset partitioning request is infeasible (too many clients...)."""


# ---------------------------------------------------------------------------
# Incentives
# ---------------------------------------------------------------------------


class IncentiveError(ReproError):
    """Base class for contribution-measurement / payment errors."""


class BudgetError(IncentiveError):
    """A payment allocation request exceeds or misuses the token budget."""


# ---------------------------------------------------------------------------
# Web / DApp layer
# ---------------------------------------------------------------------------


class WebError(ReproError):
    """Base class for the web/DApp simulation layer."""


class RouteNotFoundError(WebError):
    """No route matches the requested method + path."""


class WalletError(WebError):
    """The wallet refused to sign or the user rejected the confirmation."""


# ---------------------------------------------------------------------------
# JSON-RPC gateway (repro.rpc)
# ---------------------------------------------------------------------------


class RpcError(ReproError):
    """A JSON-RPC gateway returned an error response.

    Raised by :class:`repro.rpc.client.MarketplaceClient` when the gateway
    answers with an error envelope that does not rehydrate into a more
    specific :class:`ReproError` subclass.  Carries the JSON-RPC error
    ``code`` and the optional structured ``data`` member.
    """

    def __init__(self, message: str, code: int = -32000, data=None) -> None:
        super().__init__(message)
        self.code = code
        self.data = data


class RateLimitError(RpcError):
    """The gateway's token-bucket rate limiter rejected the request."""

    def __init__(self, message: str, code: int = -32005, data=None) -> None:
        super().__init__(message, code=code, data=data)


# ---------------------------------------------------------------------------
# System orchestration
# ---------------------------------------------------------------------------


class WorkflowError(ReproError):
    """A workflow step was invoked out of order or with missing inputs."""


class ConfigError(ReproError):
    """An experiment configuration is invalid."""


# ---------------------------------------------------------------------------
# Discrete-event simulation (repro.simnet)
# ---------------------------------------------------------------------------


class SimulationError(ReproError):
    """A scenario simulation could not be built or executed."""


class SchedulerError(SimulationError):
    """An event-scheduler misuse (negative delay, runaway process, deadlock)."""


# ---------------------------------------------------------------------------
# Durable storage (repro.storage)
# ---------------------------------------------------------------------------


class StorageError(ReproError):
    """A storage backend, WAL or snapshot operation failed."""


class StorageCorruptionError(StorageError):
    """Persisted data failed an integrity check (checksum, hash linkage)."""


# ---------------------------------------------------------------------------
# Multi-node replication (repro.cluster)
# ---------------------------------------------------------------------------


class ClusterError(ReproError):
    """A chain-replication cluster operation failed (bad config, dead
    replica, impossible reorg)."""


# ---------------------------------------------------------------------------
# Observability (repro.obs)
# ---------------------------------------------------------------------------


class ObservabilityError(ReproError):
    """Misuse of the observability layer (metric name clash, bad label set,
    malformed metric name)."""


# ---------------------------------------------------------------------------
# Analytics replica (repro.analytics)
# ---------------------------------------------------------------------------


class AnalyticsError(ReproError):
    """An analytics-replica operation failed (no WAL to feed from, broken
    block linkage during change propagation, unknown rollup)."""


# ---------------------------------------------------------------------------
# Network transport (repro.net)
# ---------------------------------------------------------------------------


class NetworkError(ReproError):
    """A network-transport operation failed (bad server config, malformed
    HTTP or WebSocket traffic, a client driving a closed connection)."""


class ProtocolViolationError(NetworkError):
    """The peer broke the HTTP/1.1 or RFC 6455 framing rules (unmasked
    client frame, oversized payload, truncated handshake)."""
