"""Gas-metered smart contracts and the framework they run on.

The framework (:mod:`repro.contracts.framework`) plays the role of the EVM +
Solidity runtime: contracts are Python classes whose externally callable
methods are dispatched by a :class:`ContractRegistry` (the chain executor's
*contract backend*), with storage reads/writes, event emission and value
transfers charged against the transaction's gas meter.

Deployed contracts:

* :class:`repro.contracts.cid_storage.CidStorage` -- the contract shown in
  Fig. 2 of the paper: owners upload IPFS CIDs, anyone can read them back.
* :class:`repro.contracts.fl_task.FLTask` -- the full OFL-W3 task contract:
  task specification, escrowed reward budget, CID registry and payments.
* :class:`repro.contracts.token.Token` -- a minimal fungible token used by
  the incentive ablations.
"""

from repro.contracts.cid_storage import CidStorage
from repro.contracts.fl_task import FLTask
from repro.contracts.framework import Contract, ContractRegistry, external, payable, view
from repro.contracts.registry import default_registry
from repro.contracts.task_registry import TaskRegistry
from repro.contracts.token import Token

__all__ = [
    "CidStorage",
    "FLTask",
    "Contract",
    "ContractRegistry",
    "external",
    "payable",
    "view",
    "default_registry",
    "TaskRegistry",
    "Token",
]
