"""A marketplace-wide task registry contract.

The paper's workflow assumes owners "find the smart contract using its
address", i.e. discovery happens off-band.  The natural marketplace
extension -- mentioned as the kind of future direction the paper closes with
-- is an on-chain registry where buyers announce their task contracts and
owners browse open tasks without any off-chain coordination.  ``TaskRegistry``
provides exactly that: announce, deactivate, and list/query tasks with their
specification summaries and reward budgets.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.chain.executor import CallContext
from repro.contracts.framework import Contract, external, view


class TaskRegistry(Contract):
    """On-chain index of announced FL tasks."""

    def constructor(self, ctx: CallContext) -> None:
        """Deploy an empty registry; the deployer becomes its administrator."""
        self.sstore(ctx, "owner", str(ctx.caller))
        self.sstore(ctx, "taskCount", 0)

    # -- writes ---------------------------------------------------------------------

    @external
    def announceTask(self, ctx: CallContext, task_address: str, summary: Dict[str, Any]) -> int:
        """Announce a deployed FLTask contract; returns its registry index.

        ``summary`` is a small free-form dictionary (task name, model shape,
        reward); the authoritative specification still lives on the task
        contract itself.
        """
        self.require(isinstance(task_address, str) and task_address.startswith("0x"),
                     "invalid task address")
        self.require(isinstance(summary, dict) and len(summary) > 0, "empty task summary")
        announced: Dict[str, int] = self.sload(ctx, "announced", {})
        self.require(task_address not in announced, "task already announced")
        index = self.sload(ctx, "taskCount", 0)
        record = {
            "task_address": task_address,
            "buyer": str(ctx.caller),
            "summary": dict(summary),
            "active": True,
        }
        self.sstore(ctx, f"tasks/{index}", record)
        announced = dict(announced)
        announced[task_address] = index
        self.sstore(ctx, "announced", announced)
        self.sstore(ctx, "taskCount", index + 1)
        ctx.emit("TaskAnnounced", index=index, task_address=task_address, buyer=str(ctx.caller))
        return index

    @external
    def deactivateTask(self, ctx: CallContext, index: int) -> bool:
        """Mark a task as closed (only its announcer may do this)."""
        count = self.sload(ctx, "taskCount", 0)
        self.require(isinstance(index, int) and 0 <= index < count, "invalid task index")
        record = dict(self.sload(ctx, f"tasks/{index}"))
        self.require(str(ctx.caller) == record["buyer"], "only the announcer may deactivate")
        self.require(record["active"], "task already inactive")
        record["active"] = False
        self.sstore(ctx, f"tasks/{index}", record)
        ctx.emit("TaskDeactivated", index=index, task_address=record["task_address"])
        return True

    # -- reads ----------------------------------------------------------------------

    @view
    def taskCount(self, ctx: CallContext) -> int:
        """Number of tasks ever announced."""
        return self.sload(ctx, "taskCount", 0)

    @view
    def getTask(self, ctx: CallContext, index: int) -> Dict[str, Any]:
        """Full registry record of the task at ``index``."""
        count = self.sload(ctx, "taskCount", 0)
        self.require(isinstance(index, int) and 0 <= index < count, "invalid task index")
        return dict(self.sload(ctx, f"tasks/{index}"))

    @view
    def listActiveTasks(self, ctx: CallContext) -> List[Dict[str, Any]]:
        """All currently active tasks (what an owner's DApp would browse)."""
        count = self.sload(ctx, "taskCount", 0)
        records = [dict(self.sload(ctx, f"tasks/{i}")) for i in range(count)]
        return [record for record in records if record.get("active")]

    @view
    def findByAddress(self, ctx: CallContext, task_address: str) -> int:
        """Registry index of an announced task contract (reverts if unknown)."""
        announced: Dict[str, int] = self.sload(ctx, "announced", {})
        self.require(task_address in announced, "task not announced")
        return announced[task_address]
