"""The OFL-W3 task contract: specification, CID registry, escrow and payment.

``FLTask`` is the contract the model buyer deploys in Step 1 of the paper's
workflow.  It extends the bare ``CidStorage`` behaviour with everything the
marketplace needs:

* the ML task specification (model architecture, dataset description, the
  one-shot FL algorithm the buyer will run, auxiliary requirements);
* an escrowed reward budget in wei, deposited at deployment time;
* registration of participating model owners and their CID submissions;
* buyer-initiated payments drawn from the escrow, recorded per owner;
* a finalization step that returns any unspent escrow to the buyer.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.chain.executor import CallContext
from repro.contracts.framework import Contract, external, payable, view


class FLTask(Contract):
    """One one-shot FL task: spec + CIDs + escrowed payments."""

    # -- deployment ---------------------------------------------------------------

    def constructor(self, ctx: CallContext, task_spec: Dict[str, Any]) -> None:
        """Deploy a task.

        Parameters
        ----------
        task_spec:
            Free-form specification dictionary; expected keys include
            ``task`` (e.g. ``"digit-classification"``), ``model`` (layer
            sizes), ``algorithm`` (e.g. ``"pfnm"``) and ``max_owners``.
            The escrowed budget is ``ctx.value`` (sent with the deployment).
        """
        self.require(isinstance(task_spec, dict) and len(task_spec) > 0, "empty task spec")
        self.sstore(ctx, "buyer", str(ctx.caller))
        self.sstore(ctx, "spec", dict(task_spec))
        self.sstore(ctx, "budget", ctx.value)
        self.sstore(ctx, "paid_total", 0)
        self.sstore(ctx, "cidCount", 0)
        self.sstore(ctx, "finalized", False)
        self.sstore(ctx, "max_owners", int(task_spec.get("max_owners", 100)))
        ctx.emit("TaskCreated", buyer=str(ctx.caller), budget=ctx.value,
                 task=task_spec.get("task", ""))

    # -- owner participation ---------------------------------------------------------

    @external
    def registerOwner(self, ctx: CallContext) -> int:
        """Register the caller as a participating model owner (Step 2)."""
        self.require(not self.sload(ctx, "finalized", False), "task finalized")
        owners: List[str] = self.sload(ctx, "owners", [])
        caller = str(ctx.caller)
        self.require(caller not in owners, "owner already registered")
        self.require(len(owners) < self.sload(ctx, "max_owners", 100), "owner limit reached")
        owners = owners + [caller]
        self.sstore(ctx, "owners", owners)
        ctx.emit("OwnerRegistered", owner=caller, index=len(owners) - 1)
        return len(owners) - 1

    @external
    def uploadCid(self, ctx: CallContext, cid: str) -> int:
        """Submit the IPFS CID of the caller's model (Step 4)."""
        self.require(not self.sload(ctx, "finalized", False), "task finalized")
        self.require(isinstance(cid, str) and 0 < len(cid) <= 128, "invalid CID")
        owners: List[str] = self.sload(ctx, "owners", [])
        caller = str(ctx.caller)
        self.require(caller in owners, "caller is not a registered owner")
        submitted: Dict[str, str] = self.sload(ctx, "submitted", {})
        self.require(caller not in submitted, "owner already submitted a CID")
        count = self.sload(ctx, "cidCount", 0)
        self.sstore(ctx, f"cids/{count}", cid)
        self.sstore(ctx, f"uploaders/{count}", caller)
        self.sstore(ctx, "cidCount", count + 1)
        submitted = dict(submitted)
        submitted[caller] = cid
        self.sstore(ctx, "submitted", submitted)
        ctx.emit("CidUploaded", cid=cid, index=count, uploader=caller)
        return count

    # -- escrow and payments ------------------------------------------------------------

    @payable
    def deposit(self, ctx: CallContext) -> int:
        """Add funds to the reward escrow (buyer only); returns new budget."""
        self.require(str(ctx.caller) == self.sload(ctx, "buyer"), "only the buyer may deposit")
        budget = self.sload(ctx, "budget", 0) + ctx.value
        self.sstore(ctx, "budget", budget)
        ctx.emit("Deposited", amount=ctx.value, budget=budget)
        return budget

    @external
    def payOwner(self, ctx: CallContext, owner: str, amount_wei: int) -> int:
        """Pay ``amount_wei`` from the escrow to ``owner`` (Step 7)."""
        self.require(str(ctx.caller) == self.sload(ctx, "buyer"), "only the buyer may pay")
        self.require(not self.sload(ctx, "finalized", False), "task finalized")
        self.require(isinstance(amount_wei, int) and amount_wei > 0, "invalid payment amount")
        owners: List[str] = self.sload(ctx, "owners", [])
        self.require(owner in owners, "payee is not a registered owner")
        budget = self.sload(ctx, "budget", 0)
        paid_total = self.sload(ctx, "paid_total", 0)
        self.require(paid_total + amount_wei <= budget, "payment exceeds escrowed budget")
        payments: Dict[str, int] = dict(self.sload(ctx, "payments", {}))
        ctx.transfer_out(owner, amount_wei)
        payments[owner] = payments.get(owner, 0) + amount_wei
        self.sstore(ctx, "payments", payments)
        self.sstore(ctx, "paid_total", paid_total + amount_wei)
        ctx.emit("PaymentSent", owner=owner, amount=amount_wei)
        return payments[owner]

    @external
    def finalize(self, ctx: CallContext) -> int:
        """Close the task and refund unspent escrow to the buyer."""
        buyer = self.sload(ctx, "buyer")
        self.require(str(ctx.caller) == buyer, "only the buyer may finalize")
        self.require(not self.sload(ctx, "finalized", False), "already finalized")
        refund = self.sload(ctx, "budget", 0) - self.sload(ctx, "paid_total", 0)
        if refund > 0:
            ctx.transfer_out(buyer, refund)
        self.sstore(ctx, "finalized", True)
        ctx.emit("TaskFinalized", refund=refund)
        return refund

    # -- reads ----------------------------------------------------------------------

    @view
    def buyer(self, ctx: CallContext) -> str:
        """Address of the model buyer who deployed the task."""
        return self.sload(ctx, "buyer")

    @view
    def spec(self, ctx: CallContext) -> Dict[str, Any]:
        """The ML task specification dictionary."""
        return self.sload(ctx, "spec", {})

    @view
    def budget(self, ctx: CallContext) -> int:
        """Escrowed reward budget in wei."""
        return self.sload(ctx, "budget", 0)

    @view
    def paidTotal(self, ctx: CallContext) -> int:
        """Total wei already paid out to owners."""
        return self.sload(ctx, "paid_total", 0)

    @view
    def owners(self, ctx: CallContext) -> List[str]:
        """Registered owner addresses, in registration order."""
        return list(self.sload(ctx, "owners", []))

    @view
    def cidCount(self, ctx: CallContext) -> int:
        """Number of submitted CIDs."""
        return self.sload(ctx, "cidCount", 0)

    @view
    def getCid(self, ctx: CallContext, index: int) -> str:
        """CID at ``index`` (reverts on an invalid index)."""
        count = self.sload(ctx, "cidCount", 0)
        self.require(isinstance(index, int) and 0 <= index < count, "Invalid CID index")
        return self.sload(ctx, f"cids/{index}")

    @view
    def getUploader(self, ctx: CallContext, index: int) -> str:
        """Uploader address of the CID at ``index``."""
        count = self.sload(ctx, "cidCount", 0)
        self.require(isinstance(index, int) and 0 <= index < count, "Invalid CID index")
        return self.sload(ctx, f"uploaders/{index}")

    @view
    def getAllCids(self, ctx: CallContext) -> List[str]:
        """All submitted CIDs in order (gas-free read, Step 5)."""
        count = self.sload(ctx, "cidCount", 0)
        return [self.sload(ctx, f"cids/{i}") for i in range(count)]

    @view
    def getSubmissions(self, ctx: CallContext) -> Dict[str, str]:
        """Mapping owner address -> submitted CID."""
        return dict(self.sload(ctx, "submitted", {}))

    @view
    def payments(self, ctx: CallContext) -> Dict[str, int]:
        """Mapping owner address -> total wei paid so far (Table 1 data)."""
        return dict(self.sload(ctx, "payments", {}))

    @view
    def isFinalized(self, ctx: CallContext) -> bool:
        """Whether the task has been finalized."""
        return bool(self.sload(ctx, "finalized", False))
