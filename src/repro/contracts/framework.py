"""The contract execution framework (EVM + Solidity runtime analogue).

Contracts are Python classes deriving from :class:`Contract`.  Methods
decorated with :func:`external` (state-changing), :func:`payable`
(state-changing and value-accepting) or :func:`view` (read-only) make up the
contract ABI.  Every method receives the :class:`~repro.chain.executor.CallContext`
as its first argument; persistent data lives exclusively in the contract
account's storage dictionary and is accessed through :meth:`Contract.sload`
and :meth:`Contract.sstore`, which charge SLOAD/SSTORE gas exactly like the
EVM.  ``require`` failures raise :class:`~repro.errors.ContractRevert`, which
the executor turns into a failed, rolled-back transaction.

The :class:`ContractRegistry` implements the chain executor's
``ContractBackend`` protocol: it instantiates contracts on creation
transactions and dispatches method calls, enforcing ABI visibility rules
(non-payable methods reject value; view methods cannot write storage).
"""

from __future__ import annotations

import inspect
from typing import Any, Callable, Dict, List, Optional, Type

from repro.errors import AbiError, ContractRevert
from repro.chain.executor import CallContext, CreateResult

_ABI_ATTR = "_contract_abi_kind"


def external(fn: Callable) -> Callable:
    """Mark a method as externally callable and state-changing."""
    setattr(fn, _ABI_ATTR, "external")
    return fn


def payable(fn: Callable) -> Callable:
    """Mark a method as externally callable, state-changing and payable."""
    setattr(fn, _ABI_ATTR, "payable")
    return fn


def view(fn: Callable) -> Callable:
    """Mark a method as externally callable and read-only."""
    setattr(fn, _ABI_ATTR, "view")
    return fn


class Contract:
    """Base class for all contracts.

    Subclasses implement ``constructor(ctx, ...)`` plus ABI methods.  The
    class itself holds no per-deployment state: everything persistent goes
    through :meth:`sstore` / :meth:`sload` into the contract account's
    storage, so chain snapshots capture contract state correctly.
    """

    # -- storage access (gas metered) ----------------------------------------

    def sstore(self, ctx: CallContext, key: str, value: Any) -> None:
        """Write ``value`` to storage slot ``key``, charging SSTORE gas."""
        storage = ctx.storage
        schedule = ctx.schedule
        exists = key in storage and storage[key] is not None
        if value is None:
            if exists:
                ctx.meter.consume(schedule.sstore_update, reason=f"SSTORE clear {key}")
                ctx.meter.add_refund(schedule.sstore_clear_refund)
                del storage[key]
            return
        if exists:
            ctx.meter.consume(schedule.sstore_update, reason=f"SSTORE update {key}")
        else:
            ctx.meter.consume(schedule.sstore_set, reason=f"SSTORE set {key}")
        storage[key] = value

    def sload(self, ctx: CallContext, key: str, default: Any = None) -> Any:
        """Read storage slot ``key``, charging SLOAD gas."""
        ctx.meter.consume(ctx.schedule.sload, reason=f"SLOAD {key}")
        return ctx.storage.get(key, default)

    # -- Solidity-style helpers ------------------------------------------------

    @staticmethod
    def require(condition: bool, reason: str = "requirement failed") -> None:
        """Revert the call unless ``condition`` holds (Solidity ``require``)."""
        if not condition:
            raise ContractRevert(reason)

    @staticmethod
    def revert(reason: str = "execution reverted") -> None:
        """Unconditionally revert the call (Solidity ``revert``)."""
        raise ContractRevert(reason)

    def constructor(self, ctx: CallContext) -> None:
        """Default constructor: records the deployer as the contract owner."""
        self.sstore(ctx, "owner", str(ctx.caller))

    # -- introspection ----------------------------------------------------------

    @classmethod
    def abi(cls) -> Dict[str, Dict[str, Any]]:
        """Describe the contract's externally callable methods."""
        entries: Dict[str, Dict[str, Any]] = {}
        for name, member in inspect.getmembers(cls, predicate=inspect.isfunction):
            kind = getattr(member, _ABI_ATTR, None)
            if kind is None:
                continue
            signature = inspect.signature(member)
            params = [p for p in signature.parameters.values() if p.name not in ("self", "ctx")]
            entries[name] = {
                "kind": kind,
                "inputs": [p.name for p in params],
                "payable": kind == "payable",
                "view": kind == "view",
            }
        return entries

    @classmethod
    def code_size(cls) -> int:
        """Byte size of the contract "code" used for deployment gas.

        Uses the length of the class source as a stable proxy for compiled
        bytecode size, so richer contracts cost proportionally more to deploy
        -- the property Fig. 5 depends on.
        """
        try:
            source = inspect.getsource(cls)
        except (OSError, TypeError):
            source = cls.__name__ * 64
        return len(source.encode("utf-8"))


class ContractRegistry:
    """Maps contract names to classes and executes deployments and calls.

    This object is handed to the chain as its *contract backend*; one registry
    instance can serve any number of nodes.
    """

    def __init__(self, contracts: Optional[Dict[str, Type[Contract]]] = None) -> None:
        self._contracts: Dict[str, Type[Contract]] = dict(contracts or {})

    def register(self, contract_class: Type[Contract], name: Optional[str] = None) -> None:
        """Register ``contract_class`` under ``name`` (default: class name)."""
        if not (inspect.isclass(contract_class) and issubclass(contract_class, Contract)):
            raise TypeError("register expects a Contract subclass")
        self._contracts[name or contract_class.__name__] = contract_class

    def known_contracts(self) -> List[str]:
        """Names of all registered contract classes."""
        return sorted(self._contracts)

    def contract_class(self, name: str) -> Optional[Type[Contract]]:
        """The registered class for ``name`` (``None`` if unknown).

        Used by snapshot restoration (``repro.storage``): contracts are
        stateless classes, so recovering a deployed contract is just
        re-instantiating its class and reattaching the account's storage.
        """
        return self._contracts.get(name)

    # -- ContractBackend protocol -----------------------------------------------

    def create(self, name: str, args: List[Any], ctx: CallContext) -> CreateResult:
        """Instantiate contract ``name`` and run its constructor."""
        contract_class = self._contracts.get(name)
        if contract_class is None:
            raise ContractRevert(f"unknown contract type: {name}")
        contract = contract_class()
        try:
            contract.constructor(ctx, *args)
        except TypeError as exc:
            raise ContractRevert(f"constructor argument mismatch for {name}: {exc}") from exc
        return CreateResult(contract=contract, code_size=contract_class.code_size())

    def call(self, contract: Contract, method: str, args: List[Any], ctx: CallContext) -> Any:
        """Dispatch ``method(*args)`` on a deployed contract instance."""
        abi = contract.abi()
        if method not in abi:
            raise ContractRevert(f"unknown method: {method}")
        entry = abi[method]
        if ctx.value > 0 and not entry["payable"]:
            raise ContractRevert(f"method {method} is not payable")
        bound = getattr(contract, method)
        # Charge a small per-call compute cost proportional to argument size,
        # standing in for the EVM's per-opcode execution gas.
        ctx.meter.consume(
            ctx.schedule.compute_step * (8 + len(str(args))), reason=f"compute {method}"
        )
        if entry["view"]:
            return self._call_view(bound, args, ctx)
        try:
            return bound(ctx, *args)
        except TypeError as exc:
            raise AbiError(f"argument mismatch calling {method}: {exc}") from exc

    def _call_view(self, bound: Callable, args: List[Any], ctx: CallContext) -> Any:
        """Run a view method and verify it made no storage writes."""
        before = dict(ctx.storage)
        try:
            result = bound(ctx, *args)
        except TypeError as exc:
            raise AbiError(f"argument mismatch calling view method: {exc}") from exc
        if ctx.storage != before:
            raise ContractRevert("view method attempted to modify storage")
        return result
