"""The ``CidStorage`` contract from Fig. 2 of the paper.

Solidity original (abridged)::

    contract CidStorage {
        uint256 public cidCount;
        function uploadCid(string memory cid) public {
            cids[cidCount] = cid;
            cidCount++;
            emit CidUploaded(cid);
        }
        function getCid(uint256 index) public view returns (string memory) {
            require(index < cidCount, "Invalid CID index");
            return cids[index];
        }
    }

The reproduction adds the uploader address next to each CID (the paper's
workflow needs to know which owner submitted which model in order to pay
them), which the original demo tracks via MetaMask transaction senders.
"""

from __future__ import annotations

from typing import List

from repro.chain.executor import CallContext
from repro.contracts.framework import Contract, external, view


class CidStorage(Contract):
    """Stores IPFS CIDs submitted by model owners."""

    def constructor(self, ctx: CallContext) -> None:
        """Deploy the contract; the deployer becomes its owner."""
        self.sstore(ctx, "owner", str(ctx.caller))
        self.sstore(ctx, "cidCount", 0)

    # -- writes -----------------------------------------------------------------

    @external
    def uploadCid(self, ctx: CallContext, cid: str) -> int:
        """Append a CID; returns its index (Step 4 of the workflow)."""
        self.require(isinstance(cid, str) and len(cid) > 0, "empty CID")
        self.require(len(cid) <= 128, "CID too long")
        count = self.sload(ctx, "cidCount", 0)
        self.sstore(ctx, f"cids/{count}", cid)
        self.sstore(ctx, f"uploaders/{count}", str(ctx.caller))
        self.sstore(ctx, "cidCount", count + 1)
        ctx.emit("CidUploaded", cid=cid, index=count, uploader=str(ctx.caller))
        return count

    # -- reads ------------------------------------------------------------------

    @view
    def cidCount(self, ctx: CallContext) -> int:
        """Number of CIDs stored so far."""
        return self.sload(ctx, "cidCount", 0)

    @view
    def getCid(self, ctx: CallContext, index: int) -> str:
        """Return the CID at ``index`` (reverts on an invalid index)."""
        count = self.sload(ctx, "cidCount", 0)
        self.require(isinstance(index, int) and 0 <= index < count, "Invalid CID index")
        return self.sload(ctx, f"cids/{index}")

    @view
    def getUploader(self, ctx: CallContext, index: int) -> str:
        """Address of the account that uploaded the CID at ``index``."""
        count = self.sload(ctx, "cidCount", 0)
        self.require(isinstance(index, int) and 0 <= index < count, "Invalid CID index")
        return self.sload(ctx, f"uploaders/{index}")

    @view
    def getAllCids(self, ctx: CallContext) -> List[str]:
        """All CIDs in upload order (Step 5: downloading CIDs is gas-free)."""
        count = self.sload(ctx, "cidCount", 0)
        return [self.sload(ctx, f"cids/{i}") for i in range(count)]

    @view
    def owner(self, ctx: CallContext) -> str:
        """Address that deployed the contract."""
        return self.sload(ctx, "owner")
