"""The default contract registry used by nodes in examples and experiments."""

from __future__ import annotations

from repro.contracts.cid_storage import CidStorage
from repro.contracts.fl_task import FLTask
from repro.contracts.framework import ContractRegistry
from repro.contracts.task_registry import TaskRegistry
from repro.contracts.token import Token


def default_registry() -> ContractRegistry:
    """Return a registry with every contract shipped by this package."""
    registry = ContractRegistry()
    registry.register(CidStorage)
    registry.register(FLTask)
    registry.register(Token)
    registry.register(TaskRegistry)
    return registry
