"""A minimal fungible token (ERC-20 style).

The paper pays owners in native (Sepolia) ETH, but frames rewards as
"tokens"; this contract lets the incentive ablation experiments pay owners in
an application token instead of native currency, exercising the same
contract-call gas paths.
"""

from __future__ import annotations

from typing import Dict

from repro.chain.executor import CallContext
from repro.contracts.framework import Contract, external, view


class Token(Contract):
    """A fixed-supply fungible token with allowances."""

    def constructor(self, ctx: CallContext, name: str, symbol: str, initial_supply: int) -> None:
        """Deploy the token, minting ``initial_supply`` units to the deployer."""
        self.require(isinstance(initial_supply, int) and initial_supply >= 0, "bad supply")
        self.require(isinstance(name, str) and name, "empty token name")
        self.require(isinstance(symbol, str) and symbol, "empty token symbol")
        deployer = str(ctx.caller)
        self.sstore(ctx, "name", name)
        self.sstore(ctx, "symbol", symbol)
        self.sstore(ctx, "totalSupply", initial_supply)
        self.sstore(ctx, "balances", {deployer: initial_supply})
        self.sstore(ctx, "allowances", {})
        self.sstore(ctx, "owner", deployer)
        ctx.emit("Transfer", sender="0x" + "00" * 20, recipient=deployer, amount=initial_supply)

    # -- reads -----------------------------------------------------------------

    @view
    def name(self, ctx: CallContext) -> str:
        """Token name."""
        return self.sload(ctx, "name")

    @view
    def symbol(self, ctx: CallContext) -> str:
        """Token ticker symbol."""
        return self.sload(ctx, "symbol")

    @view
    def totalSupply(self, ctx: CallContext) -> int:
        """Total number of token units in existence."""
        return self.sload(ctx, "totalSupply", 0)

    @view
    def balanceOf(self, ctx: CallContext, account: str) -> int:
        """Token balance of ``account``."""
        balances: Dict[str, int] = self.sload(ctx, "balances", {})
        return balances.get(account, 0)

    @view
    def allowance(self, ctx: CallContext, owner: str, spender: str) -> int:
        """Remaining allowance ``spender`` may transfer on behalf of ``owner``."""
        allowances: Dict[str, int] = self.sload(ctx, "allowances", {})
        return allowances.get(f"{owner}->{spender}", 0)

    # -- writes ----------------------------------------------------------------

    @external
    def transfer(self, ctx: CallContext, recipient: str, amount: int) -> bool:
        """Move ``amount`` tokens from the caller to ``recipient``."""
        self._move(ctx, str(ctx.caller), recipient, amount)
        return True

    @external
    def approve(self, ctx: CallContext, spender: str, amount: int) -> bool:
        """Allow ``spender`` to transfer up to ``amount`` on the caller's behalf."""
        self.require(isinstance(amount, int) and amount >= 0, "bad allowance")
        allowances: Dict[str, int] = dict(self.sload(ctx, "allowances", {}))
        allowances[f"{ctx.caller}->{spender}"] = amount
        self.sstore(ctx, "allowances", allowances)
        ctx.emit("Approval", owner=str(ctx.caller), spender=spender, amount=amount)
        return True

    @external
    def transferFrom(self, ctx: CallContext, owner: str, recipient: str, amount: int) -> bool:
        """Transfer from ``owner`` to ``recipient`` using the caller's allowance."""
        key = f"{owner}->{ctx.caller}"
        allowances: Dict[str, int] = dict(self.sload(ctx, "allowances", {}))
        allowed = allowances.get(key, 0)
        self.require(allowed >= amount, "allowance exceeded")
        self._move(ctx, owner, recipient, amount)
        allowances[key] = allowed - amount
        self.sstore(ctx, "allowances", allowances)
        return True

    @external
    def mint(self, ctx: CallContext, recipient: str, amount: int) -> bool:
        """Create new tokens (contract owner only)."""
        self.require(str(ctx.caller) == self.sload(ctx, "owner"), "only owner may mint")
        self.require(isinstance(amount, int) and amount > 0, "bad mint amount")
        balances: Dict[str, int] = dict(self.sload(ctx, "balances", {}))
        balances[recipient] = balances.get(recipient, 0) + amount
        self.sstore(ctx, "balances", balances)
        self.sstore(ctx, "totalSupply", self.sload(ctx, "totalSupply", 0) + amount)
        ctx.emit("Transfer", sender="0x" + "00" * 20, recipient=recipient, amount=amount)
        return True

    # -- internal ----------------------------------------------------------------

    def _move(self, ctx: CallContext, sender: str, recipient: str, amount: int) -> None:
        """Shared balance-moving logic with validation."""
        self.require(isinstance(amount, int) and amount > 0, "bad transfer amount")
        balances: Dict[str, int] = dict(self.sload(ctx, "balances", {}))
        self.require(balances.get(sender, 0) >= amount, "insufficient token balance")
        balances[sender] = balances.get(sender, 0) - amount
        balances[recipient] = balances.get(recipient, 0) + amount
        self.sstore(ctx, "balances", balances)
        ctx.emit("Transfer", sender=sender, recipient=recipient, amount=amount)
