"""The unit of exchange between model owners and the buyer."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

from repro.errors import AggregationError
from repro.ml.mlp import MLP
from repro.ml.serialization import deserialize_model, serialize_model


@dataclass
class ModelUpdate:
    """One owner's contribution: model parameters plus sample-count metadata.

    ``num_samples`` weights the aggregation (clients with more data count
    more, as in FedAvg/PFNM); ``client_id`` ties the update back to the wallet
    address that should be paid.
    """

    parameters: List[Dict[str, np.ndarray]]
    num_samples: int
    client_id: str = ""
    metadata: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.num_samples <= 0:
            raise AggregationError(
                f"model update must report a positive sample count, got {self.num_samples}"
            )
        if not self.parameters:
            raise AggregationError("model update has no parameters")

    @property
    def layer_sizes(self) -> tuple:
        """Architecture implied by the parameter shapes."""
        sizes = [self.parameters[0]["weights"].shape[0]]
        sizes.extend(params["weights"].shape[1] for params in self.parameters)
        return tuple(sizes)

    def to_model(self) -> MLP:
        """Materialize the update as a standalone model."""
        return MLP.from_parameters(self.parameters)

    @classmethod
    def from_model(cls, model: MLP, num_samples: int, client_id: str = "",
                   metadata: Optional[Dict[str, Any]] = None) -> "ModelUpdate":
        """Wrap a trained model into an update."""
        return cls(
            parameters=model.get_parameters(),
            num_samples=num_samples,
            client_id=client_id,
            metadata=dict(metadata or {}),
        )

    # -- wire form (what gets published to IPFS) ---------------------------------

    def to_payload(self) -> bytes:
        """Serialize to the byte payload uploaded to IPFS."""
        return serialize_model(self.to_model())

    @classmethod
    def from_payload(cls, payload: bytes, num_samples: int, client_id: str = "") -> "ModelUpdate":
        """Rebuild an update from an IPFS payload plus out-of-band metadata."""
        model = deserialize_model(payload)
        return cls.from_model(model, num_samples=num_samples, client_id=client_id)


def check_compatible(updates: List[ModelUpdate]) -> tuple:
    """Verify all updates share one architecture; return it.

    Raises
    ------
    AggregationError
        If the list is empty or architectures differ.
    """
    if not updates:
        raise AggregationError("no model updates to aggregate")
    architectures = {update.layer_sizes for update in updates}
    if len(architectures) != 1:
        raise AggregationError(f"incompatible architectures: {sorted(architectures)}")
    return updates[0].layer_sizes
