"""Multi-round FedAvg (McMahan et al., 2017).

Included as the traditional-FL baseline the paper argues against for Web 3.0:
every round would require another set of on-chain interactions, so with the
typical "at least 100 iterations" the coordination overhead dwarfs the
one-shot workflow.  The ablation benchmark quantifies exactly that trade-off
(accuracy vs number of on-chain interactions).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.data.dataset import Dataset
from repro.errors import AggregationError
from repro.fl.client import FLClient
from repro.fl.model_update import ModelUpdate, check_compatible
from repro.ml.mlp import MLP
from repro.ml.trainer import TrainingConfig, evaluate_model
from repro.utils.rng import make_rng


def weighted_average_parameters(updates: Sequence[ModelUpdate]) -> List[Dict[str, np.ndarray]]:
    """Sample-count weighted average of parameter lists (the FedAvg update)."""
    check_compatible(list(updates))
    total_samples = sum(update.num_samples for update in updates)
    if total_samples <= 0:
        raise AggregationError("total sample count must be positive")
    averaged: List[Dict[str, np.ndarray]] = []
    num_layers = len(updates[0].parameters)
    for layer_index in range(num_layers):
        weights = sum(
            (update.num_samples / total_samples) * update.parameters[layer_index]["weights"]
            for update in updates
        )
        biases = sum(
            (update.num_samples / total_samples) * update.parameters[layer_index]["biases"]
            for update in updates
        )
        averaged.append({"weights": weights, "biases": biases})
    return averaged


@dataclass
class FedAvgConfig:
    """Hyperparameters of the multi-round loop."""

    num_rounds: int = 100
    clients_per_round: Optional[int] = None
    local_epochs: int = 1
    batch_size: int = 64
    learning_rate: float = 0.001
    seed: Optional[int] = 0


@dataclass
class RoundRecord:
    """Evaluation after one communication round."""

    round_index: int
    test_accuracy: float
    test_loss: float
    participating_clients: List[str] = field(default_factory=list)


class FedAvgServer:
    """Coordinates multi-round federated averaging over a set of clients."""

    def __init__(self, clients: Sequence[FLClient], config: Optional[FedAvgConfig] = None,
                 layer_sizes=(784, 100, 10)) -> None:
        if not clients:
            raise AggregationError("FedAvg needs at least one client")
        self.clients = list(clients)
        self.config = config or FedAvgConfig()
        self.layer_sizes = tuple(layer_sizes)
        self.global_model = MLP(self.layer_sizes, seed=self.config.seed)
        self.history: List[RoundRecord] = []

    def _select_clients(self, rng) -> List[FLClient]:
        """Sample the per-round participant set."""
        count = self.config.clients_per_round
        if count is None or count >= len(self.clients):
            return list(self.clients)
        indices = rng.choice(len(self.clients), size=count, replace=False)
        return [self.clients[i] for i in indices]

    def run(self, test_dataset: Optional[Dataset] = None) -> List[RoundRecord]:
        """Run the configured number of rounds; returns per-round records."""
        rng = make_rng(self.config.seed, "fedavg-selection")
        local_config = TrainingConfig(
            batch_size=self.config.batch_size,
            learning_rate=self.config.learning_rate,
            epochs=self.config.local_epochs,
            seed=self.config.seed,
        )
        for round_index in range(self.config.num_rounds):
            participants = self._select_clients(rng)
            updates: List[ModelUpdate] = []
            global_parameters = self.global_model.get_parameters()
            for client in participants:
                client.config = local_config
                result = client.train_local(initial_parameters=global_parameters)
                updates.append(result.update)
            self.global_model.set_parameters(weighted_average_parameters(updates))
            record = RoundRecord(
                round_index=round_index,
                test_accuracy=float("nan"),
                test_loss=float("nan"),
                participating_clients=[client.client_id for client in participants],
            )
            if test_dataset is not None:
                evaluation = evaluate_model(
                    self.global_model, test_dataset.features, test_dataset.labels
                )
                record.test_accuracy = evaluation.accuracy
                record.test_loss = evaluation.loss
            self.history.append(record)
        return self.history

    @property
    def total_client_uploads(self) -> int:
        """Number of client->server model uploads performed so far.

        For the Web 3.0 cost comparison: each upload would be one IPFS add
        plus one on-chain CID submission.
        """
        return sum(len(record.participating_clients) for record in self.history)
