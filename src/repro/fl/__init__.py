"""Federated learning: clients, servers and aggregation algorithms.

Two families of aggregation are provided:

* **Multi-round** -- :class:`repro.fl.fedavg.FedAvgServer` implements the
  classic FedAvg loop (McMahan et al., 2017).  The paper uses it as the
  overhead comparison point: ~100 rounds of on-chain coordination would be
  prohibitively slow and expensive on Web 3.0.
* **One-shot** -- a single upload per owner, aggregated once by the buyer:
  :class:`repro.fl.oneshot.pfnm.PFNMAggregator` (Bayesian-nonparametric
  neuron matching, the algorithm the paper adopts),
  :class:`repro.fl.oneshot.mean.MeanAggregator` (naive parameter averaging),
  :class:`repro.fl.oneshot.ensemble.EnsembleAggregator` (Guha et al. 2019
  style ensembling with optional distillation) and
  :class:`repro.fl.oneshot.fedov.FedOVAggregator` (open-set voting for label
  skew, after Diao et al. 2023).
"""

from repro.fl.client import FLClient, LocalTrainingResult
from repro.fl.fedavg import FedAvgConfig, FedAvgServer, RoundRecord
from repro.fl.model_update import ModelUpdate
from repro.fl.oneshot import (
    EnsembleAggregator,
    FedOVAggregator,
    MeanAggregator,
    OneShotAggregator,
    PFNMAggregator,
    make_aggregator,
)
from repro.fl.server import OneShotServer

__all__ = [
    "FLClient",
    "LocalTrainingResult",
    "FedAvgConfig",
    "FedAvgServer",
    "RoundRecord",
    "ModelUpdate",
    "EnsembleAggregator",
    "FedOVAggregator",
    "MeanAggregator",
    "OneShotAggregator",
    "PFNMAggregator",
    "make_aggregator",
    "OneShotServer",
]
