"""The buyer-side one-shot server.

Collects :class:`~repro.fl.model_update.ModelUpdate` objects (in OFL-W3 these
arrive as IPFS payloads referenced by on-chain CIDs), runs a configurable
one-shot aggregator, and evaluates the result.  This is the component that
would run on the buyer's backend workstation behind the Flask service.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.data.dataset import Dataset
from repro.errors import AggregationError
from repro.fl.model_update import ModelUpdate
from repro.fl.oneshot import OneShotAggregator, make_aggregator
from repro.fl.oneshot.base import AggregationResult
from repro.ml.trainer import evaluate_model


@dataclass
class OneShotServer:
    """Collects updates and aggregates them in a single shot."""

    aggregator: OneShotAggregator = field(default_factory=lambda: make_aggregator("pfnm"))
    updates: List[ModelUpdate] = field(default_factory=list)

    def submit(self, update: ModelUpdate) -> int:
        """Register one owner's update; returns its index."""
        self.updates.append(update)
        return len(self.updates) - 1

    def submit_payload(self, payload: bytes, num_samples: int, client_id: str = "") -> int:
        """Register an update arriving as a serialized IPFS payload."""
        return self.submit(ModelUpdate.from_payload(payload, num_samples=num_samples,
                                                    client_id=client_id))

    @property
    def num_updates(self) -> int:
        """Number of updates collected so far."""
        return len(self.updates)

    def aggregate(self, subset: Optional[Sequence[int]] = None) -> AggregationResult:
        """Aggregate all updates (or the given subset of indices).

        The ``subset`` parameter is what the leave-one-out incentive
        computation uses to re-aggregate with one owner removed.
        """
        if not self.updates:
            raise AggregationError("no updates have been submitted")
        selected = (
            [self.updates[i] for i in subset] if subset is not None else list(self.updates)
        )
        if not selected:
            raise AggregationError("cannot aggregate an empty subset of updates")
        return self.aggregator.aggregate(selected)

    def evaluate_locals(self, test_dataset: Dataset) -> Dict[str, float]:
        """Test accuracy of each submitted local model (Fig. 4's bars)."""
        results: Dict[str, float] = {}
        for index, update in enumerate(self.updates):
            model = update.to_model()
            evaluation = evaluate_model(model, test_dataset.features, test_dataset.labels)
            key = update.client_id or f"client-{index}"
            results[key] = evaluation.accuracy
        return results
