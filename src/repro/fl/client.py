"""The federated client (model owner's training side)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.data.dataset import Dataset
from repro.ml.mlp import MLP
from repro.ml.trainer import EvalResult, Trainer, TrainingConfig, TrainingHistory, evaluate_model
from repro.fl.model_update import ModelUpdate
from repro.utils.rng import derive_seed


@dataclass
class LocalTrainingResult:
    """Everything produced by one local training run."""

    update: ModelUpdate
    history: TrainingHistory
    train_accuracy: float


class FLClient:
    """A data silo that trains models locally and shares only parameters."""

    def __init__(
        self,
        client_id: str,
        dataset: Dataset,
        layer_sizes=(784, 100, 10),
        config: Optional[TrainingConfig] = None,
        seed: Optional[int] = None,
    ) -> None:
        self.client_id = client_id
        self.dataset = dataset
        self.layer_sizes = tuple(layer_sizes)
        self.config = config or TrainingConfig()
        self.seed = seed
        self.model: Optional[MLP] = None

    @property
    def num_samples(self) -> int:
        """Number of local training samples."""
        return len(self.dataset)

    def _model_seed(self) -> Optional[int]:
        """Derive a per-client model seed so clients start from different weights."""
        if self.seed is None:
            return None
        return derive_seed(self.seed, f"client-model-{self.client_id}")

    def train_local(self, initial_parameters: Optional[List[Dict[str, np.ndarray]]] = None) -> LocalTrainingResult:
        """Train a fresh local model (optionally from given initial weights).

        This is the expensive step the owner performs before Step 2 of the
        workflow (uploading to IPFS).
        """
        model = MLP(self.layer_sizes, seed=self._model_seed())
        if initial_parameters is not None:
            model.set_parameters(initial_parameters)
        trainer = Trainer(model, self.config)
        history = trainer.train(self.dataset.features, self.dataset.labels)
        self.model = model
        update = ModelUpdate.from_model(
            model,
            num_samples=self.num_samples,
            client_id=self.client_id,
            metadata={"label_counts": self.dataset.class_counts().tolist()},
        )
        return LocalTrainingResult(
            update=update,
            history=history,
            train_accuracy=history.final_accuracy,
        )

    def evaluate(self, dataset: Dataset) -> EvalResult:
        """Evaluate the most recently trained local model on ``dataset``."""
        if self.model is None:
            raise RuntimeError(f"client {self.client_id} has not trained a model yet")
        return evaluate_model(self.model, dataset.features, dataset.labels)
