"""One-shot ensembling with optional knowledge distillation (Guha et al., 2019).

The first one-shot FL proposal: keep every client model and average their
predicted probabilities.  Optionally, the ensemble's soft labels on an
unlabeled public dataset are distilled into a single student MLP, which is
what a buyer would deploy if it cannot afford to run every local model at
inference time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.data.dataset import Dataset
from repro.errors import AggregationError
from repro.fl.model_update import ModelUpdate, check_compatible
from repro.fl.oneshot.base import AggregationResult, OneShotAggregator
from repro.ml.dataloader import batch_iterator
from repro.ml.losses import cross_entropy_with_softmax
from repro.ml.mlp import MLP
from repro.ml.optimizers import Adam
from repro.utils.rng import make_rng


@dataclass
class EnsemblePredictor:
    """Averages class probabilities over member models."""

    members: List[MLP]
    weights: Optional[np.ndarray] = None

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """Weighted mean of the members' class probabilities."""
        if not self.members:
            raise AggregationError("ensemble has no members")
        weights = self.weights
        if weights is None:
            weights = np.ones(len(self.members))
        weights = np.asarray(weights, dtype=np.float64)
        weights = weights / weights.sum()
        stacked = np.stack([member.predict_proba(features) for member in self.members])
        return np.tensordot(weights, stacked, axes=1)

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Predicted class indices."""
        return np.argmax(self.predict_proba(features), axis=1)


class EnsembleAggregator(OneShotAggregator):
    """Probability-averaging ensemble, optionally distilled into one MLP."""

    name = "ensemble"

    def __init__(
        self,
        weight_by_samples: bool = True,
        distill_dataset: Optional[Dataset] = None,
        distill_epochs: int = 5,
        distill_learning_rate: float = 0.001,
        distill_batch_size: int = 64,
        seed: Optional[int] = 0,
    ) -> None:
        self.weight_by_samples = weight_by_samples
        self.distill_dataset = distill_dataset
        self.distill_epochs = distill_epochs
        self.distill_learning_rate = distill_learning_rate
        self.distill_batch_size = distill_batch_size
        self.seed = seed

    def aggregate(self, updates: Sequence[ModelUpdate]) -> AggregationResult:
        """Build the ensemble (and optionally distill it)."""
        updates = list(updates)
        layer_sizes = check_compatible(updates)
        members = [update.to_model() for update in updates]
        weights = (
            np.array([update.num_samples for update in updates], dtype=np.float64)
            if self.weight_by_samples
            else None
        )
        ensemble = EnsemblePredictor(members=members, weights=weights)
        details = {"distilled": False, "num_members": len(members)}

        predictor = ensemble
        if self.distill_dataset is not None:
            student = self._distill(ensemble, layer_sizes)
            predictor = student
            details["distilled"] = True
        return AggregationResult(
            predictor=predictor,
            algorithm=self.name,
            num_updates=len(updates),
            details=details,
        )

    def _distill(self, ensemble: EnsemblePredictor, layer_sizes) -> MLP:
        """Train a student MLP on the ensemble's soft labels."""
        features = self.distill_dataset.features
        soft_labels = ensemble.predict_proba(features)
        hard_labels = np.argmax(soft_labels, axis=1)
        student = MLP(layer_sizes, seed=self.seed)
        optimizer = Adam(learning_rate=self.distill_learning_rate)
        rng = make_rng(self.seed, "distill-shuffle")
        for _ in range(self.distill_epochs):
            for batch_x, batch_y in batch_iterator(
                features, hard_labels, self.distill_batch_size, shuffle=True, rng=rng
            ):
                logits = student.forward(batch_x)
                _, grad = cross_entropy_with_softmax(logits, batch_y)
                student.backward(grad)
                optimizer.step(student.layers)
        return student
