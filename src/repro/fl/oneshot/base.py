"""Interface shared by every one-shot aggregator."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Sequence

import numpy as np

from repro.data.dataset import Dataset
from repro.fl.model_update import ModelUpdate
from repro.ml.metrics import accuracy


@dataclass
class AggregationResult:
    """Outcome of a one-shot aggregation.

    ``predict`` works for both parametric results (a single fused model) and
    non-parametric ones (an ensemble): aggregators attach whichever predictor
    they produce.
    """

    predictor: Any
    algorithm: str
    num_updates: int
    details: Dict[str, Any] = field(default_factory=dict)

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Predicted class indices for ``features``."""
        return self.predictor.predict(features)

    def evaluate(self, dataset: Dataset) -> float:
        """Test accuracy of the aggregated predictor on ``dataset``."""
        return accuracy(self.predict(dataset.features), dataset.labels)


class OneShotAggregator:
    """Base class: combine a list of :class:`ModelUpdate` in a single shot."""

    name = "base"

    def aggregate(self, updates: Sequence[ModelUpdate]) -> AggregationResult:
        """Fuse ``updates`` into a global predictor."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"
