"""PFNM: probabilistic federated neural matching (Yurochkin et al., 2019).

The algorithm the paper adopts for one-shot aggregation.  Independently
trained networks are permutation-invariant in their hidden units, so naive
averaging mixes unrelated neurons.  PFNM instead treats global hidden neurons
as atoms of a Bayesian-nonparametric model (a Beta-Bernoulli process) and
*matches* each client's neurons to global neurons before averaging:

1. each client neuron is represented by the vector of parameters attached to
   it (incoming weights, bias, and outgoing weights for the last hidden
   layer);
2. clients are folded in one at a time; the cost of assigning client neuron
   *k* to global neuron *g* is their squared distance (scaled by the prior
   variances), while assigning it to a *new* global neuron costs a penalty
   derived from the prior -- this is what makes the global model
   nonparametric (its width can grow);
3. the assignment is solved with the Hungarian algorithm
   (:func:`scipy.optimize.linear_sum_assignment`), matched neurons are
   averaged (running mean weighted by how many clients matched them), and
   unmatched ones are appended as new global neurons;
4. the output layer is averaged through the same matching.

This implementation follows the single-hidden-layer formulation used for the
paper's (784, 100, 10) MLP and extends to deeper MLPs by matching hidden
layers sequentially (in the spirit of the follow-up FedMA work).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy.optimize import linear_sum_assignment

from repro.errors import AggregationError
from repro.fl.model_update import ModelUpdate, check_compatible
from repro.fl.oneshot.base import AggregationResult, OneShotAggregator
from repro.ml.mlp import MLP


@dataclass(frozen=True)
class PFNMConfig:
    """Hyperparameters of the matching procedure.

    ``sigma`` is the assumed observation noise of client neurons around their
    global atom, ``sigma0`` the prior scale of global atoms, and ``gamma`` the
    Indian-buffet-process-style concentration controlling how readily new
    global neurons are created.  ``max_global_neurons_factor`` caps global
    width at ``factor * local_width`` to keep the aggregated model small.
    """

    sigma: float = 0.3
    sigma0: float = 10.0
    gamma: float = 20.0
    max_global_neurons_factor: float = 8.0

    def __post_init__(self) -> None:
        if self.sigma <= 0 or self.sigma0 <= 0 or self.gamma <= 0:
            raise ValueError("sigma, sigma0 and gamma must all be positive")
        if self.max_global_neurons_factor < 1.0:
            raise ValueError("max_global_neurons_factor must be at least 1")


def _match_cost_matrix(
    client_neurons: np.ndarray,
    global_neurons: np.ndarray,
    global_counts: np.ndarray,
    config: PFNMConfig,
    allow_new: int,
) -> np.ndarray:
    """Build the assignment cost matrix of shape (J, L + allow_new).

    The first L columns are the costs of matching each client neuron to each
    existing global neuron (negative log of the posterior match likelihood:
    squared distance shrunk by the running count).  The trailing ``allow_new``
    columns are the cost of opening a new global neuron (prior self-distance
    plus a penalty that grows as more neurons already exist, mirroring the
    IBP prior's preference for reusing popular atoms).
    """
    num_client, dim = client_neurons.shape
    num_global = global_neurons.shape[0]
    sigma_sq = config.sigma**2
    sigma0_sq = config.sigma0**2

    columns: List[np.ndarray] = []
    if num_global:
        # Posterior precision of a global atom matched `count` times grows with
        # count, making well-supported atoms cheaper to match.
        counts = global_counts.reshape(1, num_global)
        means = global_neurons
        diff = client_neurons[:, None, :] - means[None, :, :]
        squared = np.sum(diff**2, axis=2)
        match_cost = squared / (2.0 * sigma_sq) - np.log(counts + config.gamma)
        columns.append(match_cost)
    if allow_new:
        self_cost = np.sum(client_neurons**2, axis=1) / (2.0 * (sigma_sq + sigma0_sq))
        new_penalty = self_cost - np.log(config.gamma / (num_global + 1.0))
        new_block = np.tile(new_penalty.reshape(num_client, 1), (1, allow_new))
        # Make "new neuron" columns usable at most once each by adding a tiny
        # increasing offset; the Hungarian solver then fills them in order.
        new_block = new_block + np.arange(allow_new).reshape(1, allow_new) * 1e-6
        columns.append(new_block)
    return np.concatenate(columns, axis=1) if columns else np.zeros((num_client, 0))


def _fold_in_client(
    client_neurons: np.ndarray,
    global_neurons: Optional[np.ndarray],
    global_counts: Optional[np.ndarray],
    config: PFNMConfig,
    max_global: int,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Match one client's neurons into the running global atoms.

    Returns the updated ``(global_neurons, global_counts, assignment)`` where
    ``assignment[j]`` is the global index client neuron ``j`` mapped to.
    """
    num_client = client_neurons.shape[0]
    if global_neurons is None or global_neurons.shape[0] == 0:
        return client_neurons.copy(), np.ones(num_client), np.arange(num_client)

    num_global = global_neurons.shape[0]
    allow_new = max(0, min(num_client, max_global - num_global))
    cost = _match_cost_matrix(client_neurons, global_neurons, global_counts, config, allow_new)
    if cost.shape[1] < num_client:
        # Not enough columns for a perfect matching (width cap reached and
        # fewer global neurons than client neurons): pad with re-usable copies
        # of the most expensive real column so the assignment stays feasible.
        padding = np.tile(cost.max(axis=1, keepdims=True), (1, num_client - cost.shape[1]))
        cost = np.concatenate([cost, padding], axis=1)
        allow_padded = True
    else:
        allow_padded = False

    rows, cols = linear_sum_assignment(cost)
    updated_neurons = global_neurons.copy()
    updated_counts = global_counts.copy()
    assignment = np.zeros(num_client, dtype=np.int64)

    for row, col in zip(rows, cols):
        if col < num_global:
            # Running weighted mean of the matched atom.
            count = updated_counts[col]
            updated_neurons[col] = (updated_neurons[col] * count + client_neurons[row]) / (count + 1.0)
            updated_counts[col] = count + 1.0
            assignment[row] = col
        else:
            if allow_padded and col >= num_global + allow_new:
                # Width cap reached: fold into the nearest existing atom.
                distances = np.sum((updated_neurons - client_neurons[row]) ** 2, axis=1)
                nearest = int(np.argmin(distances))
                count = updated_counts[nearest]
                updated_neurons[nearest] = (
                    updated_neurons[nearest] * count + client_neurons[row]
                ) / (count + 1.0)
                updated_counts[nearest] = count + 1.0
                assignment[row] = nearest
            else:
                updated_neurons = np.vstack([updated_neurons, client_neurons[row]])
                updated_counts = np.append(updated_counts, 1.0)
                assignment[row] = updated_neurons.shape[0] - 1
    return updated_neurons, updated_counts, assignment


class PFNMAggregator(OneShotAggregator):
    """One-shot aggregation by probabilistic neuron matching."""

    name = "pfnm"

    def __init__(self, config: Optional[PFNMConfig] = None) -> None:
        self.config = config or PFNMConfig()

    # -- public API -----------------------------------------------------------------

    def aggregate(self, updates: Sequence[ModelUpdate]) -> AggregationResult:
        """Fuse the updates into a single (possibly wider) global MLP."""
        updates = list(updates)
        layer_sizes = check_compatible(updates)
        num_hidden_layers = len(layer_sizes) - 2
        if num_hidden_layers < 1:
            raise AggregationError(
                "PFNM requires at least one hidden layer; "
                f"got architecture {layer_sizes}"
            )
        if num_hidden_layers == 1:
            model, global_width = self._aggregate_single_hidden(updates, layer_sizes)
        else:
            model, global_width = self._aggregate_deep(updates, layer_sizes)
        return AggregationResult(
            predictor=model,
            algorithm=self.name,
            num_updates=len(updates),
            details={
                "global_hidden_width": global_width,
                "local_hidden_width": layer_sizes[1],
                "config": self.config,
            },
        )

    # -- single hidden layer (the paper's architecture) --------------------------------

    def _aggregate_single_hidden(
        self, updates: List[ModelUpdate], layer_sizes: Tuple[int, ...]
    ) -> Tuple[MLP, int]:
        """Exact PFNM for a (D, H, C) MLP."""
        input_dim, hidden_dim, output_dim = layer_sizes[0], layer_sizes[1], layer_sizes[-1]
        max_global = int(np.ceil(hidden_dim * self.config.max_global_neurons_factor))

        global_neurons: Optional[np.ndarray] = None
        global_counts: Optional[np.ndarray] = None
        output_bias_sum = np.zeros(output_dim)
        total_weight = 0.0

        # Fold clients in descending data-size order (better-supported neurons
        # establish the atoms the rest match against).
        ordered = sorted(updates, key=lambda u: -u.num_samples)
        for update in ordered:
            hidden = update.parameters[0]
            output = update.parameters[1]
            # Neuron vector: incoming weights | bias | outgoing weights.
            client_neurons = np.concatenate(
                [hidden["weights"].T, hidden["biases"].reshape(-1, 1), output["weights"]],
                axis=1,
            )
            global_neurons, global_counts, _ = _fold_in_client(
                client_neurons, global_neurons, global_counts, self.config, max_global
            )
            output_bias_sum += output["biases"] * update.num_samples
            total_weight += update.num_samples

        global_width = global_neurons.shape[0]
        incoming = global_neurons[:, :input_dim].T
        biases = global_neurons[:, input_dim]
        outgoing = global_neurons[:, input_dim + 1:]
        # Down-weight the outgoing weights of rarely matched atoms so that
        # neurons seen by few clients do not dominate the logits.
        support = (global_counts / len(updates)).reshape(-1, 1)
        outgoing = outgoing * support

        parameters = [
            {"weights": incoming, "biases": biases},
            {"weights": outgoing, "biases": output_bias_sum / total_weight},
        ]
        return MLP.from_parameters(parameters), global_width

    # -- deeper MLPs (layer-wise extension) ------------------------------------------------

    def _aggregate_deep(
        self, updates: List[ModelUpdate], layer_sizes: Tuple[int, ...]
    ) -> Tuple[MLP, int]:
        """Layer-wise matching for MLPs with more than one hidden layer.

        Hidden layers are matched one at a time, re-expressing each client's
        incoming weights in the global coordinates of the previously matched
        layer (FedMA-style).  The output layer is averaged through the final
        matching.
        """
        num_layers = len(layer_sizes) - 1
        ordered = sorted(updates, key=lambda u: -u.num_samples)
        # Per-client permutation of the previous layer: maps client unit -> global unit.
        prev_maps: Dict[int, np.ndarray] = {
            i: np.arange(layer_sizes[0]) for i in range(len(ordered))
        }
        prev_global_width = layer_sizes[0]
        global_parameters: List[Dict[str, np.ndarray]] = []
        last_width = layer_sizes[0]

        for layer_index in range(num_layers - 1):
            width = layer_sizes[layer_index + 1]
            max_global = int(np.ceil(width * self.config.max_global_neurons_factor))
            global_neurons = None
            global_counts = None
            assignments: Dict[int, np.ndarray] = {}
            for client_index, update in enumerate(ordered):
                layer = update.parameters[layer_index]
                incoming = np.zeros((width, prev_global_width))
                incoming[:, prev_maps[client_index]] = layer["weights"].T
                client_neurons = np.concatenate(
                    [incoming, layer["biases"].reshape(-1, 1)], axis=1
                )
                global_neurons, global_counts, assignment = _fold_in_client(
                    client_neurons, global_neurons, global_counts, self.config, max_global
                )
                assignments[client_index] = assignment
            global_width = global_neurons.shape[0]
            global_parameters.append(
                {
                    "weights": global_neurons[:, :prev_global_width].T,
                    "biases": global_neurons[:, prev_global_width],
                }
            )
            prev_maps = assignments
            prev_global_width = global_width
            last_width = global_width

        # Output layer: scatter each client's outgoing weights into global
        # coordinates and average with sample weights.
        output_dim = layer_sizes[-1]
        weight_sum = np.zeros((prev_global_width, output_dim))
        count_sum = np.zeros((prev_global_width, 1))
        bias_sum = np.zeros(output_dim)
        total_weight = 0.0
        for client_index, update in enumerate(ordered):
            output = update.parameters[-1]
            mapping = prev_maps[client_index]
            weight_sum[mapping] += output["weights"] * update.num_samples
            count_sum[mapping] += update.num_samples
            bias_sum += output["biases"] * update.num_samples
            total_weight += update.num_samples
        count_sum[count_sum == 0] = 1.0
        global_parameters.append(
            {"weights": weight_sum / count_sum, "biases": bias_sum / total_weight}
        )
        return MLP.from_parameters(global_parameters), last_width
