"""Naive one-shot parameter averaging.

The weakest one-shot baseline: average every client's parameters coordinate
by coordinate.  Because independently trained networks have no reason to
place corresponding neurons at corresponding indices (the permutation
invariance problem PFNM solves), this baseline degrades sharply under strong
heterogeneity -- which is exactly why the paper adopts PFNM instead.
"""

from __future__ import annotations

from typing import Sequence

from repro.fl.fedavg import weighted_average_parameters
from repro.fl.model_update import ModelUpdate
from repro.fl.oneshot.base import AggregationResult, OneShotAggregator
from repro.ml.mlp import MLP


class MeanAggregator(OneShotAggregator):
    """Sample-count weighted coordinate-wise parameter mean."""

    name = "mean"

    def __init__(self, weighted: bool = True) -> None:
        self.weighted = weighted

    def aggregate(self, updates: Sequence[ModelUpdate]) -> AggregationResult:
        """Average all updates into a single model."""
        updates = list(updates)
        if not self.weighted:
            updates = [
                ModelUpdate(parameters=u.parameters, num_samples=1, client_id=u.client_id)
                for u in updates
            ]
        parameters = weighted_average_parameters(updates)
        model = MLP.from_parameters(parameters)
        return AggregationResult(
            predictor=model,
            algorithm=self.name,
            num_updates=len(updates),
            details={"weighted": self.weighted},
        )
