"""One-shot aggregation algorithms."""

from repro.fl.oneshot.base import AggregationResult, OneShotAggregator
from repro.fl.oneshot.ensemble import EnsembleAggregator
from repro.fl.oneshot.fedov import FedOVAggregator
from repro.fl.oneshot.mean import MeanAggregator
from repro.fl.oneshot.pfnm import PFNMAggregator, PFNMConfig


def make_aggregator(name: str, **kwargs) -> OneShotAggregator:
    """Build a one-shot aggregator by name.

    Recognized names: ``"pfnm"`` (default algorithm in the paper), ``"mean"``,
    ``"ensemble"`` and ``"fedov"``.
    """
    registry = {
        "pfnm": PFNMAggregator,
        "mean": MeanAggregator,
        "ensemble": EnsembleAggregator,
        "fedov": FedOVAggregator,
    }
    key = name.lower()
    if key not in registry:
        raise ValueError(f"unknown one-shot aggregator {name!r}; expected one of {sorted(registry)}")
    return registry[key](**kwargs)


__all__ = [
    "AggregationResult",
    "OneShotAggregator",
    "EnsembleAggregator",
    "FedOVAggregator",
    "MeanAggregator",
    "PFNMAggregator",
    "PFNMConfig",
    "make_aggregator",
]
