"""FedOV-style one-shot aggregation for label skew (after Diao et al., 2023).

FedOV tackles the pathological label-skew case: a client that has never seen
class *c* is still forced to output *something* for class-*c* samples, and
naive ensembling lets those confidently wrong votes dominate.  FedOV trains
each client with an extra "unknown" (open-set) output fed by synthetic
outliers, so the client can abstain; at inference, votes are weighted by each
client's confidence that the sample is *not* unknown.

This implementation reproduces that voting mechanism.  Outliers are generated
by pixel shuffling and interpolation of the client's own samples -- the same
spirit as the augmentations in the original paper, without its adversarial
refinements.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.data.dataset import Dataset
from repro.errors import AggregationError
from repro.fl.model_update import ModelUpdate
from repro.fl.oneshot.base import AggregationResult, OneShotAggregator
from repro.ml.dataloader import batch_iterator
from repro.ml.losses import cross_entropy_with_softmax
from repro.ml.mlp import MLP
from repro.ml.optimizers import Adam
from repro.utils.rng import make_rng


def generate_outliers(features: np.ndarray, rng, fraction: float = 1.0) -> np.ndarray:
    """Create synthetic open-set samples from in-distribution features.

    Half of the outliers are pixel-shuffled copies (destroying all spatial
    structure), half are convex mixes of two unrelated samples.
    """
    count = max(1, int(len(features) * fraction))
    indices = rng.integers(0, len(features), size=count)
    base = features[indices].copy()
    half = count // 2
    for row in range(half):
        rng.shuffle(base[row])
    if count - half > 0:
        other = features[rng.integers(0, len(features), size=count - half)]
        lam = rng.uniform(0.3, 0.7, size=(count - half, 1))
        base[half:] = lam * base[half:] + (1 - lam) * other
    return base


@dataclass
class OpenSetVotePredictor:
    """Combines per-client open-set models by confidence-weighted voting.

    Each member model has ``num_classes + 1`` outputs; the last output is the
    "unknown" class.  A member's vote for a sample is its class-probability
    vector scaled by ``1 - P(unknown)``.
    """

    members: List[MLP]
    num_classes: int

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """Aggregated (unnormalized-then-normalized) class probabilities."""
        if not self.members:
            raise AggregationError("open-set ensemble has no members")
        votes = np.zeros((features.shape[0], self.num_classes))
        for member in self.members:
            probabilities = member.predict_proba(features)
            known = probabilities[:, : self.num_classes]
            confidence = 1.0 - probabilities[:, self.num_classes]
            votes += known * confidence[:, None]
        totals = votes.sum(axis=1, keepdims=True)
        totals[totals == 0] = 1.0
        return votes / totals

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Predicted class indices."""
        return np.argmax(self.predict_proba(features), axis=1)


class FedOVAggregator(OneShotAggregator):
    """Open-set voting aggregator.

    Unlike the other aggregators this one needs the clients' raw datasets to
    retrain them with the extra "unknown" class, so it is constructed with the
    per-client datasets and uses the updates only for bookkeeping.
    """

    name = "fedov"

    def __init__(
        self,
        client_datasets: Sequence[Dataset],
        epochs: int = 10,
        batch_size: int = 64,
        learning_rate: float = 0.001,
        outlier_fraction: float = 1.0,
        hidden_width: int = 100,
        seed: Optional[int] = 0,
    ) -> None:
        if not client_datasets:
            raise AggregationError("FedOV needs the client datasets to retrain open-set models")
        self.client_datasets = list(client_datasets)
        self.epochs = epochs
        self.batch_size = batch_size
        self.learning_rate = learning_rate
        self.outlier_fraction = outlier_fraction
        self.hidden_width = hidden_width
        self.seed = seed

    def aggregate(self, updates: Sequence[ModelUpdate]) -> AggregationResult:
        """Train per-client open-set models and combine them by voting."""
        num_classes = self.client_datasets[0].num_classes
        num_features = self.client_datasets[0].num_features
        members: List[MLP] = []
        rng = make_rng(self.seed, "fedov-outliers")
        for index, dataset in enumerate(self.client_datasets):
            outliers = generate_outliers(dataset.features, rng, self.outlier_fraction)
            features = np.vstack([dataset.features, outliers])
            labels = np.concatenate(
                [dataset.labels, np.full(len(outliers), num_classes, dtype=np.int64)]
            )
            model = MLP((num_features, self.hidden_width, num_classes + 1),
                        seed=None if self.seed is None else self.seed + index)
            optimizer = Adam(learning_rate=self.learning_rate)
            for _ in range(self.epochs):
                for batch_x, batch_y in batch_iterator(features, labels, self.batch_size,
                                                       shuffle=True, rng=rng):
                    logits = model.forward(batch_x)
                    _, grad = cross_entropy_with_softmax(logits, batch_y)
                    model.backward(grad)
                    optimizer.step(model.layers)
            members.append(model)
        predictor = OpenSetVotePredictor(members=members, num_classes=num_classes)
        return AggregationResult(
            predictor=predictor,
            algorithm=self.name,
            num_updates=len(list(updates)) or len(members),
            details={"num_members": len(members), "open_set_classes": 1},
        )
