"""An IPFS node: add, cat, pin and exchange content-addressed blocks."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.errors import BlockNotFoundError
from repro.ipfs.blockstore import BlockStore
from repro.ipfs.chunker import DEFAULT_CHUNK_SIZE, chunk_bytes
from repro.ipfs.cid import CID
from repro.ipfs.dag import DagLink, DagNode, leaf_cid
from repro.ipfs.pinning import PinSet
from repro.ipfs.swarm import Swarm
from repro.utils.hashing import keccak256


@dataclass(frozen=True)
class AddResult:
    """Result of adding content: the root CID plus size accounting."""

    cid: CID
    size: int
    num_blocks: int

    @property
    def cid_string(self) -> str:
        """The CIDv0 string stored on-chain by the OFL-W3 contract."""
        return self.cid.encode()


class IpfsNode:
    """One IPFS daemon: a block store, a pin set and a swarm connection."""

    def __init__(self, name: str = "node", swarm: Optional[Swarm] = None,
                 chunk_size: int = DEFAULT_CHUNK_SIZE,
                 blockstore: Optional[BlockStore] = None) -> None:
        self.name = name
        self.peer_id = "12D3Koo" + keccak256(f"oflw3-peer:{name}".encode("utf-8")).hex()[:32]
        #: A caller-provided block store may be backed by a ``repro.storage``
        #: blob space (durable, cache-fronted); the default is in-memory.
        self.blockstore = blockstore if blockstore is not None else BlockStore()
        self.pins = PinSet()
        self.chunk_size = chunk_size
        self.swarm = swarm
        if swarm is not None:
            swarm.register(self)

    def __repr__(self) -> str:
        return f"IpfsNode(name={self.name!r}, peer_id={self.peer_id!r})"

    # -- adding content ---------------------------------------------------------

    def add_bytes(self, payload: bytes, pin: bool = True) -> AddResult:
        """Chunk ``payload``, build its DAG and store every block locally.

        Returns the root CID.  Adding the same payload twice is idempotent and
        returns the same CID (content addressing deduplicates).
        """
        payload = bytes(payload)
        chunks = chunk_bytes(payload, self.chunk_size)
        if len(chunks) == 1:
            root = DagNode(data=chunks[0])
            root_cid = root.cid()
            self.blockstore.put(root_cid, root.serialize())
            if pin:
                self.pins.pin(root_cid)
            return AddResult(cid=root_cid, size=len(payload), num_blocks=1)

        links: List[DagLink] = []
        for chunk in chunks:
            chunk_cid = leaf_cid(chunk)
            self.blockstore.put(chunk_cid, chunk)
            links.append(DagLink(cid=chunk_cid.encode(), size=len(chunk)))
        root = DagNode(data=b"", links=links)
        root_cid = root.cid()
        self.blockstore.put(root_cid, root.serialize())
        if pin:
            self.pins.pin(root_cid)
        return AddResult(cid=root_cid, size=len(payload), num_blocks=len(chunks) + 1)

    def add_text(self, text: str, pin: bool = True) -> AddResult:
        """Convenience wrapper for adding UTF-8 text."""
        return self.add_bytes(text.encode("utf-8"), pin=pin)

    # -- retrieving content ---------------------------------------------------------

    def _get_block(self, cid: CID | str) -> bytes:
        """Fetch a block locally or from swarm peers, caching it locally."""
        cid_obj = cid if isinstance(cid, CID) else CID.parse(cid)
        if self.blockstore.has(cid_obj):
            return self.blockstore.get(cid_obj)
        if self.swarm is None:
            raise BlockNotFoundError(
                f"{cid_obj.encode()} not stored locally and node {self.name} is offline"
            )
        block = self.swarm.fetch_block(self, cid_obj)
        self.blockstore.put(cid_obj, block)
        return block

    def cat(self, cid: CID | str) -> bytes:
        """Return the full payload behind ``cid`` (resolving its DAG)."""
        cid_obj = cid if isinstance(cid, CID) else CID.parse(cid)
        if cid_obj.codec_name == "raw":
            return self._get_block(cid_obj)
        node = DagNode.deserialize(self._get_block(cid_obj))
        if node.is_leaf:
            return node.data
        parts = [self._get_block(CID.parse(link.cid)) for link in node.links]
        return node.data + b"".join(parts)

    def stat(self, cid: CID | str) -> dict:
        """Size / block-count information about a DAG, like ``ipfs object stat``."""
        cid_obj = cid if isinstance(cid, CID) else CID.parse(cid)
        if cid_obj.codec_name == "raw":
            block = self._get_block(cid_obj)
            return {"cid": cid_obj.encode(), "size": len(block), "blocks": 1}
        node = DagNode.deserialize(self._get_block(cid_obj))
        return {
            "cid": cid_obj.encode(),
            "size": node.total_size,
            "blocks": 1 + len(node.links),
        }

    def has_local(self, cid: CID | str) -> bool:
        """Whether the root block is available without asking peers."""
        return self.blockstore.has(cid)

    # -- pinning ----------------------------------------------------------------------

    def pin(self, cid: CID | str) -> None:
        """Pin a CID on this node (fetching it first if necessary)."""
        self.cat(cid)
        self.pins.pin(cid)

    def unpin(self, cid: CID | str) -> None:
        """Remove a pin from this node."""
        self.pins.unpin(cid)

    def garbage_collect(self) -> int:
        """Drop every block not reachable from a pinned root; returns count dropped."""
        keep: set = set()
        for pinned in self.pins.pins():
            keep.add(pinned)
            cid_obj = CID.parse(pinned)
            if cid_obj.codec_name == "raw" or not self.blockstore.has(cid_obj):
                continue
            node = DagNode.deserialize(self.blockstore.get(cid_obj))
            keep.update(link.cid for link in node.links)
        dropped = 0
        for cid_str in list(self.blockstore.cids()):
            if cid_str not in keep:
                self.blockstore.delete(cid_str)
                dropped += 1
        return dropped

    # -- repo statistics -----------------------------------------------------------------

    def repo_stat(self) -> dict:
        """Local repository statistics, like ``ipfs repo stat``."""
        return {
            "peer_id": self.peer_id,
            "num_blocks": len(self.blockstore),
            "repo_size_bytes": self.blockstore.total_bytes(),
            "num_pins": len(self.pins),
        }
