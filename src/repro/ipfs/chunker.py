"""Splitting payloads into fixed-size blocks.

IPFS's default chunker cuts files into 256 KiB blocks; the paper's 317 KB
model payload therefore spans two blocks and is represented by a small
Merkle DAG whose root CID is what gets published on-chain.
"""

from __future__ import annotations

from typing import Iterator, List

DEFAULT_CHUNK_SIZE = 256 * 1024


def iter_chunks(payload: bytes, chunk_size: int = DEFAULT_CHUNK_SIZE) -> Iterator[bytes]:
    """Yield consecutive ``chunk_size`` slices of ``payload``.

    An empty payload yields a single empty chunk so that even empty files get
    a well-defined CID.
    """
    if chunk_size <= 0:
        raise ValueError(f"chunk size must be positive, got {chunk_size}")
    payload = bytes(payload)
    if not payload:
        yield b""
        return
    for start in range(0, len(payload), chunk_size):
        yield payload[start:start + chunk_size]


def chunk_bytes(payload: bytes, chunk_size: int = DEFAULT_CHUNK_SIZE) -> List[bytes]:
    """Materialize :func:`iter_chunks` into a list."""
    return list(iter_chunks(payload, chunk_size))
