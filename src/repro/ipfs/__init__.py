"""A content-addressed storage network in the spirit of IPFS.

OFL-W3 stores model payloads off-chain in IPFS and records only the 32-byte
content identifiers (CIDs) on-chain.  This package provides the pieces the
system relies on:

* :mod:`repro.ipfs.multihash` / :mod:`repro.ipfs.cid` -- self-describing
  hashes and CIDv0/CIDv1 identifiers;
* :mod:`repro.ipfs.chunker` / :mod:`repro.ipfs.dag` -- splitting payloads
  into blocks and linking them into a Merkle DAG;
* :mod:`repro.ipfs.blockstore` / :mod:`repro.ipfs.pinning` -- local block
  storage with pin-based garbage-collection protection;
* :mod:`repro.ipfs.node` / :mod:`repro.ipfs.swarm` -- nodes that exchange
  blocks bitswap-style over a swarm;
* :mod:`repro.ipfs.gateway` -- path-style (``/ipfs/<cid>``) read access.
"""

from repro.ipfs.blockstore import BlockStore
from repro.ipfs.chunker import DEFAULT_CHUNK_SIZE, chunk_bytes
from repro.ipfs.cid import CID
from repro.ipfs.dag import DagNode
from repro.ipfs.gateway import IpfsGateway
from repro.ipfs.multihash import Multihash
from repro.ipfs.node import AddResult, IpfsNode
from repro.ipfs.pinning import PinSet
from repro.ipfs.swarm import Swarm

__all__ = [
    "BlockStore",
    "DEFAULT_CHUNK_SIZE",
    "chunk_bytes",
    "CID",
    "DagNode",
    "IpfsGateway",
    "Multihash",
    "AddResult",
    "IpfsNode",
    "PinSet",
    "Swarm",
]
