"""Multihash: self-describing hash digests.

A multihash is ``<hash-function-code><digest-length><digest>``.  IPFS CIDs
embed multihashes so that the hash function can evolve without changing the
identifier format.  Only SHA2-256 (code ``0x12``) is needed here, but the
encoding is general.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import InvalidCidError
from repro.utils.hashing import sha256

SHA2_256_CODE = 0x12
IDENTITY_CODE = 0x00

_KNOWN_CODES = {SHA2_256_CODE: "sha2-256", IDENTITY_CODE: "identity"}


@dataclass(frozen=True)
class Multihash:
    """A decoded multihash: function code, digest length and digest bytes."""

    code: int
    digest: bytes

    def __post_init__(self) -> None:
        if self.code not in _KNOWN_CODES:
            raise InvalidCidError(f"unknown multihash function code: {self.code:#x}")
        if not isinstance(self.digest, (bytes, bytearray)) or len(self.digest) == 0:
            raise InvalidCidError("multihash digest must be non-empty bytes")
        object.__setattr__(self, "digest", bytes(self.digest))

    @property
    def function_name(self) -> str:
        """Human-readable hash function name."""
        return _KNOWN_CODES[self.code]

    @property
    def length(self) -> int:
        """Digest length in bytes."""
        return len(self.digest)

    def encode(self) -> bytes:
        """Serialize to ``<code><length><digest>`` bytes."""
        return bytes([self.code, self.length]) + self.digest

    @classmethod
    def decode(cls, data: bytes) -> "Multihash":
        """Parse a multihash from its binary encoding."""
        data = bytes(data)
        if len(data) < 2:
            raise InvalidCidError("multihash too short")
        code, length = data[0], data[1]
        digest = data[2:]
        if len(digest) != length:
            raise InvalidCidError(
                f"multihash length mismatch: header says {length}, got {len(digest)} bytes"
            )
        return cls(code=code, digest=digest)

    @classmethod
    def sha2_256(cls, payload: bytes) -> "Multihash":
        """Hash ``payload`` with SHA2-256 and wrap it as a multihash."""
        return cls(code=SHA2_256_CODE, digest=sha256(payload))
