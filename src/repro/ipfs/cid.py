"""Content identifiers (CIDs).

Two textual forms are supported, as in IPFS:

* **CIDv0** -- base58btc of the raw multihash; always starts with ``Qm`` for
  SHA2-256.  This is the 46-character form the paper's smart contract stores.
* **CIDv1** -- multibase(base32) of ``<version><codec><multihash>``; starts
  with ``b``.

The digest is 32 bytes, which is exactly the "32-byte CID" on-chain footprint
the paper contrasts with storing whole models on-chain.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import total_ordering

from repro.errors import InvalidCidError
from repro.ipfs.multihash import Multihash
from repro.utils.encoding import b32_decode, b32_encode, b58_decode, b58_encode

DAG_PB_CODEC = 0x70
RAW_CODEC = 0x55

_CODEC_NAMES = {DAG_PB_CODEC: "dag-pb", RAW_CODEC: "raw"}


@total_ordering
@dataclass(frozen=True)
class CID:
    """A parsed content identifier."""

    version: int
    codec: int
    multihash: Multihash

    def __post_init__(self) -> None:
        if self.version not in (0, 1):
            raise InvalidCidError(f"unsupported CID version: {self.version}")
        if self.codec not in _CODEC_NAMES:
            raise InvalidCidError(f"unsupported CID codec: {self.codec:#x}")
        if self.version == 0 and self.codec != DAG_PB_CODEC:
            raise InvalidCidError("CIDv0 only supports the dag-pb codec")

    # -- construction -----------------------------------------------------------

    @classmethod
    def from_bytes_payload(cls, payload: bytes, version: int = 0, codec: int = DAG_PB_CODEC) -> "CID":
        """Hash ``payload`` and build its CID."""
        return cls(version=version, codec=codec, multihash=Multihash.sha2_256(payload))

    @classmethod
    def parse(cls, text: str) -> "CID":
        """Parse a CIDv0 (``Qm...``) or CIDv1 (``b...``) string."""
        if not isinstance(text, str) or len(text) < 2:
            raise InvalidCidError(f"not a CID: {text!r}")
        try:
            if text.startswith("Qm"):
                raw = b58_decode(text)
                return cls(version=0, codec=DAG_PB_CODEC, multihash=Multihash.decode(raw))
            if text.startswith("b"):
                raw = b32_decode(text[1:])
                if len(raw) < 3:
                    raise InvalidCidError(f"CIDv1 payload too short: {text!r}")
                version, codec = raw[0], raw[1]
                return cls(version=version, codec=codec, multihash=Multihash.decode(raw[2:]))
        except ValueError as exc:
            raise InvalidCidError(f"undecodable CID {text!r}: {exc}") from exc
        raise InvalidCidError(f"unrecognized CID prefix: {text!r}")

    # -- rendering --------------------------------------------------------------

    def encode(self) -> str:
        """Render the canonical string form for this CID version."""
        if self.version == 0:
            return b58_encode(self.multihash.encode())
        body = bytes([self.version, self.codec]) + self.multihash.encode()
        return "b" + b32_encode(body)

    def to_v1(self) -> "CID":
        """Return the CIDv1 equivalent (same hash, same codec)."""
        return CID(version=1, codec=self.codec, multihash=self.multihash)

    def to_v0(self) -> "CID":
        """Return the CIDv0 equivalent (requires the dag-pb codec)."""
        if self.codec != DAG_PB_CODEC:
            raise InvalidCidError("only dag-pb CIDs have a v0 form")
        return CID(version=0, codec=DAG_PB_CODEC, multihash=self.multihash)

    @property
    def codec_name(self) -> str:
        """Human-readable codec name."""
        return _CODEC_NAMES[self.codec]

    @property
    def digest(self) -> bytes:
        """The raw 32-byte digest (what occupies a storage slot on-chain)."""
        return self.multihash.digest

    # -- dunder -----------------------------------------------------------------

    def __str__(self) -> str:
        return self.encode()

    def __repr__(self) -> str:
        return f"CID({self.encode()!r})"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, CID):
            return self.multihash == other.multihash and self.codec == other.codec
        if isinstance(other, str):
            try:
                return self == CID.parse(other)
            except InvalidCidError:
                return False
        return NotImplemented

    def __lt__(self, other: "CID") -> bool:
        if not isinstance(other, CID):
            return NotImplemented
        return self.encode() < other.encode()

    def __hash__(self) -> int:
        return hash((self.codec, self.multihash.digest))
