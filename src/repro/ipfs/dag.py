"""Merkle-DAG nodes linking content blocks.

Large payloads are stored as a root node whose links point at leaf blocks
(raw chunks).  The root's CID commits to every chunk's CID, so retrieving by
root CID verifies the integrity of the full payload -- the property OFL-W3
relies on when buyers fetch models uploaded by unknown owners.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.ipfs.cid import CID, DAG_PB_CODEC, RAW_CODEC
from repro.utils.serialization import canonical_dumps, canonical_loads


@dataclass(frozen=True)
class DagLink:
    """A named, sized link from a DAG node to a child CID."""

    cid: str
    size: int
    name: str = ""

    def to_dict(self) -> dict:
        """JSON-friendly representation."""
        return {"cid": self.cid, "size": self.size, "name": self.name}


@dataclass
class DagNode:
    """A DAG node: optional inline data plus ordered links to children."""

    data: bytes = b""
    links: List[DagLink] = field(default_factory=list)

    def serialize(self) -> bytes:
        """Canonical byte encoding (what gets hashed into the node's CID)."""
        return canonical_dumps(
            {"data": self.data, "links": [link.to_dict() for link in self.links]}
        ).encode("utf-8")

    @classmethod
    def deserialize(cls, payload: bytes) -> "DagNode":
        """Parse a node from :meth:`serialize` output."""
        decoded = canonical_loads(payload.decode("utf-8"))
        links = [DagLink(**link) for link in decoded.get("links", [])]
        return cls(data=decoded.get("data", b""), links=links)

    def cid(self) -> CID:
        """CID of this node (dag-pb codec, CIDv0-compatible)."""
        return CID.from_bytes_payload(self.serialize(), version=0, codec=DAG_PB_CODEC)

    @property
    def total_size(self) -> int:
        """Cumulative payload size reachable through this node."""
        return len(self.data) + sum(link.size for link in self.links)

    @property
    def is_leaf(self) -> bool:
        """Whether this node carries data directly with no children."""
        return not self.links


def leaf_cid(chunk: bytes) -> CID:
    """CID of a raw leaf chunk."""
    return CID.from_bytes_payload(chunk, version=1, codec=RAW_CODEC)
