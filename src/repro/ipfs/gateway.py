"""A path-style gateway over an IPFS node.

The DApp backend fetches models through gateway URLs of the form
``/ipfs/<cid>``; this class resolves such paths against a node, mirroring an
HTTP gateway's behaviour (including 404-like errors for unknown CIDs).
"""

from __future__ import annotations

from typing import Tuple

from repro.errors import BlockNotFoundError, InvalidCidError
from repro.ipfs.cid import CID
from repro.ipfs.node import IpfsNode


class IpfsGateway:
    """Resolves ``/ipfs/<cid>`` paths to payload bytes."""

    def __init__(self, node: IpfsNode, base_url: str = "http://127.0.0.1:8080") -> None:
        self.node = node
        self.base_url = base_url.rstrip("/")

    def url_for(self, cid: CID | str) -> str:
        """The gateway URL for a CID."""
        cid_str = cid.encode() if isinstance(cid, CID) else str(cid)
        return f"{self.base_url}/ipfs/{cid_str}"

    @staticmethod
    def parse_path(path: str) -> str:
        """Extract the CID string from an ``/ipfs/<cid>`` path or full URL."""
        marker = "/ipfs/"
        index = path.find(marker)
        if index < 0:
            raise InvalidCidError(f"not an ipfs path: {path!r}")
        remainder = path[index + len(marker):]
        cid_str = remainder.split("/", 1)[0].split("?", 1)[0]
        if not cid_str:
            raise InvalidCidError(f"no CID in path: {path!r}")
        return cid_str

    def fetch(self, path_or_cid: str) -> Tuple[int, bytes]:
        """Resolve a path/CID; returns an (HTTP-like status, payload) pair."""
        try:
            cid_str = self.parse_path(path_or_cid) if "/" in path_or_cid else path_or_cid
            payload = self.node.cat(CID.parse(cid_str))
        except InvalidCidError:
            return 400, b"invalid CID"
        except BlockNotFoundError:
            return 404, b"content not found"
        return 200, payload
