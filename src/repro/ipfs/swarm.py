"""The swarm: peer discovery and bitswap-style block exchange.

Nodes register with a :class:`Swarm`; when a node is asked for a block it
does not hold locally, it asks its connected peers (in connection order) and
copies the first verified response into its own store.  The swarm also keeps
simple transfer statistics so experiments can report how many bytes moved
between owners and the buyer.

A swarm can optionally carry a network model (``repro.simnet.netmodel``) and
a simulated clock: block exchange then skips unreachable (partitioned)
providers, pays retransmission timeouts for dropped messages, and advances
the clock by each link's transfer time.  Without a network model (the seed
default) the swarm is the original ideal zero-cost LAN.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, TYPE_CHECKING

from repro.errors import BlockNotFoundError
from repro.ipfs.cid import CID

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.ipfs.node import IpfsNode
    from repro.simnet.netmodel import NetworkModel
    from repro.utils.clock import SimulatedClock


@dataclass
class TransferStats:
    """Counters for block exchange between two peers."""

    blocks: int = 0
    bytes: int = 0


class Swarm:
    """A set of interconnected IPFS nodes."""

    def __init__(self, network: Optional["NetworkModel"] = None,
                 clock: Optional["SimulatedClock"] = None) -> None:
        self._nodes: Dict[str, "IpfsNode"] = {}
        self._connections: Dict[str, Set[str]] = {}
        self._transfers: Dict[tuple, TransferStats] = {}
        self.network = network
        self.clock = clock
        self.failed_fetch_attempts = 0

    # -- membership -----------------------------------------------------------

    def register(self, node: "IpfsNode") -> None:
        """Add a node to the swarm (by its peer id)."""
        self._nodes[node.peer_id] = node
        self._connections.setdefault(node.peer_id, set())

    def nodes(self) -> List["IpfsNode"]:
        """All registered nodes."""
        return list(self._nodes.values())

    def get_node(self, peer_id: str) -> "IpfsNode":
        """Look up a node by peer id."""
        if peer_id not in self._nodes:
            raise KeyError(f"unknown peer {peer_id}")
        return self._nodes[peer_id]

    # -- connections ------------------------------------------------------------

    def connect(self, a: "IpfsNode | str", b: "IpfsNode | str") -> None:
        """Create a bidirectional connection between two registered nodes."""
        peer_a = a if isinstance(a, str) else a.peer_id
        peer_b = b if isinstance(b, str) else b.peer_id
        if peer_a not in self._nodes or peer_b not in self._nodes:
            raise KeyError("both peers must be registered before connecting")
        if peer_a == peer_b:
            return
        self._connections[peer_a].add(peer_b)
        self._connections[peer_b].add(peer_a)

    def connect_all(self) -> None:
        """Fully mesh every registered node (the demo's single LAN)."""
        peer_ids = list(self._nodes)
        for i, peer_a in enumerate(peer_ids):
            for peer_b in peer_ids[i + 1:]:
                self.connect(peer_a, peer_b)

    def peers_of(self, node: "IpfsNode | str") -> List[str]:
        """Peer ids connected to ``node``."""
        peer_id = node if isinstance(node, str) else node.peer_id
        return sorted(self._connections.get(peer_id, set()))

    # -- block exchange -----------------------------------------------------------

    def fetch_block(self, requester: "IpfsNode", cid: CID | str) -> bytes:
        """Find a block among the requester's peers (bitswap want-have/want-block).

        Raises
        ------
        BlockNotFoundError
            If no connected peer holds the block.
        """
        cid_obj = cid if isinstance(cid, CID) else CID.parse(cid)
        for peer_id in self.peers_of(requester):
            provider = self._nodes[peer_id]
            if not provider.blockstore.has(cid_obj):
                continue
            block = provider.blockstore.get(cid_obj)
            if self.network is not None:
                delivery = self.network.delivery_delay(peer_id, requester.peer_id, len(block))
                if self.clock is not None:
                    # Time spent is charged whether or not the block arrived:
                    # a failed exchange still burned its retransmission
                    # timeouts before bitswap moves on to the next provider.
                    self.clock.advance(delivery.delay_seconds)
                if not delivery.delivered:
                    self.failed_fetch_attempts += 1
                    continue
            stats = self._transfers.setdefault((peer_id, requester.peer_id), TransferStats())
            stats.blocks += 1
            stats.bytes += len(block)
            return block
        raise BlockNotFoundError(
            f"no connected peer of {requester.peer_id} provides {cid_obj.encode()}"
        )

    def providers_of(self, cid: CID | str) -> List[str]:
        """Peer ids of every node holding the block locally (DHT-provider analogue)."""
        cid_obj = cid if isinstance(cid, CID) else CID.parse(cid)
        return [
            peer_id for peer_id, node in self._nodes.items() if node.blockstore.has(cid_obj)
        ]

    # -- network dynamics -------------------------------------------------------

    def partition(self, groups: Sequence[Iterable["IpfsNode | str"]]) -> None:
        """Partition the swarm: nodes in different groups stop exchanging blocks.

        Groups may mix :class:`IpfsNode` instances, node names and raw peer
        ids.  Requires a network model (the seed's ideal swarm has no notion
        of reachability).
        """
        if self.network is None:
            raise ValueError("partition requires a swarm built with a network model")
        self.network.partition([
            [self._resolve_peer_id(member) for member in group] for group in groups
        ])

    def heal(self) -> None:
        """Heal a partition created with :meth:`partition`."""
        if self.network is None:
            raise ValueError("heal requires a swarm built with a network model")
        self.network.heal()

    def _resolve_peer_id(self, node_or_id: "IpfsNode | str") -> str:
        """Accept a node object, node name or peer id; return the peer id."""
        if not isinstance(node_or_id, str):
            return node_or_id.peer_id
        if node_or_id in self._nodes:
            return node_or_id
        for node in self._nodes.values():
            if node.name == node_or_id:
                return node.peer_id
        raise KeyError(f"unknown swarm member {node_or_id!r}")

    # -- statistics -----------------------------------------------------------------

    def transfer_stats(self) -> Dict[tuple, TransferStats]:
        """Per (provider, requester) transfer counters."""
        return dict(self._transfers)

    def total_bytes_transferred(self) -> int:
        """Total bytes exchanged across the swarm."""
        return sum(stats.bytes for stats in self._transfers.values())
