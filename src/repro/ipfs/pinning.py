"""Pin management.

Pinned CIDs are protected from garbage collection.  Model owners pin the
models they publish so the content stays retrievable until the buyer has
fetched it.
"""

from __future__ import annotations

from typing import Dict, Iterator, Set

from repro.errors import PinError
from repro.ipfs.cid import CID

RECURSIVE = "recursive"
DIRECT = "direct"


class PinSet:
    """Tracks pinned CIDs and their pin type."""

    def __init__(self) -> None:
        self._pins: Dict[str, str] = {}

    def __len__(self) -> int:
        return len(self._pins)

    def __contains__(self, cid: CID | str) -> bool:
        return self.is_pinned(cid)

    @staticmethod
    def _key(cid: CID | str) -> str:
        return cid.encode() if isinstance(cid, CID) else CID.parse(cid).encode()

    def pin(self, cid: CID | str, recursive: bool = True) -> None:
        """Pin a CID (recursive pins protect the whole DAG beneath it)."""
        self._pins[self._key(cid)] = RECURSIVE if recursive else DIRECT

    def unpin(self, cid: CID | str) -> None:
        """Remove a pin.

        Raises
        ------
        PinError
            If the CID is not pinned.
        """
        key = self._key(cid)
        if key not in self._pins:
            raise PinError(f"{key} is not pinned")
        del self._pins[key]

    def is_pinned(self, cid: CID | str) -> bool:
        """Whether the CID is pinned (either mode)."""
        try:
            return self._key(cid) in self._pins
        except Exception:
            return False

    def pin_type(self, cid: CID | str) -> str:
        """The pin mode of a pinned CID."""
        key = self._key(cid)
        if key not in self._pins:
            raise PinError(f"{key} is not pinned")
        return self._pins[key]

    def pins(self) -> Iterator[str]:
        """Iterate over pinned CID strings."""
        return iter(list(self._pins.keys()))

    def recursive_pins(self) -> Set[str]:
        """The set of recursively pinned CID strings."""
        return {cid for cid, mode in self._pins.items() if mode == RECURSIVE}
