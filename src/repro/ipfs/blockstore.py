"""Local block storage keyed by CID.

The store verifies every insertion (bytes must hash to the claimed CID) and
can sit on two substrates:

* the default in-process dictionary -- the seed's behaviour, zero I/O;
* a ``repro.storage`` *blob space* -- a namespaced, cache-fronted view of a
  storage backend, which makes the node's blocks durable (``LogBackend``)
  and serves hot blocks from the engine's shared LRU cache.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, Optional

from repro.errors import BlockNotFoundError, InvalidCidError
from repro.ipfs.cid import CID


class BlockStore:
    """A mapping from CID to block bytes, in memory or on a blob space.

    Blocks are verified on insertion: storing bytes under a CID whose digest
    does not match raises :class:`InvalidCidError`, so a corrupted or
    malicious peer cannot poison a node's store.
    """

    def __init__(self, space: Optional[Any] = None) -> None:
        #: ``None`` -> plain dict (seed path); otherwise a
        #: :class:`repro.storage.engine.BlobSpace`-shaped object with
        #: ``put/get/has/delete/keys/total_bytes``.
        self._space = space
        self._blocks: Dict[str, bytes] = {}

    def __len__(self) -> int:
        if self._space is not None:
            return len(self._space.keys())
        return len(self._blocks)

    def __contains__(self, cid: CID | str) -> bool:
        return self.has(cid)

    @staticmethod
    def _key(cid: CID | str) -> str:
        cid_obj = cid if isinstance(cid, CID) else CID.parse(cid)
        return cid_obj.encode()

    def put(self, cid: CID | str, block: bytes) -> CID:
        """Store ``block`` under ``cid`` after verifying the digest matches."""
        cid_obj = cid if isinstance(cid, CID) else CID.parse(cid)
        expected = CID.from_bytes_payload(bytes(block), version=cid_obj.version, codec=cid_obj.codec)
        if expected.digest != cid_obj.digest:
            raise InvalidCidError(
                f"block content does not hash to {cid_obj.encode()}"
            )
        if self._space is not None:
            self._space.put(cid_obj.encode(), bytes(block))
        else:
            self._blocks[cid_obj.encode()] = bytes(block)
        return cid_obj

    def get(self, cid: CID | str) -> bytes:
        """Fetch the block stored under ``cid``.

        Raises
        ------
        BlockNotFoundError
            If the block is not present locally.
        """
        key = self._key(cid)
        if self._space is not None:
            if not self._space.has(key):
                raise BlockNotFoundError(f"block {key} not in local store")
            return self._space.get(key)
        if key not in self._blocks:
            raise BlockNotFoundError(f"block {key} not in local store")
        return self._blocks[key]

    def has(self, cid: CID | str) -> bool:
        """Whether the block is present locally."""
        try:
            key = self._key(cid)
        except InvalidCidError:
            return False
        if self._space is not None:
            return self._space.has(key)
        return key in self._blocks

    def delete(self, cid: CID | str) -> bool:
        """Remove a block; returns whether it existed."""
        key = self._key(cid)
        if self._space is not None:
            return self._space.delete(key)
        return self._blocks.pop(key, None) is not None

    def cids(self) -> Iterator[str]:
        """Iterate over the CIDs of all stored blocks."""
        if self._space is not None:
            return iter(self._space.keys())
        return iter(list(self._blocks.keys()))

    def total_bytes(self) -> int:
        """Total stored payload size in bytes."""
        if self._space is not None:
            return self._space.total_bytes()
        return sum(len(block) for block in self._blocks.values())
