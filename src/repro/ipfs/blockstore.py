"""Local block storage keyed by CID."""

from __future__ import annotations

from typing import Dict, Iterator, Optional

from repro.errors import BlockNotFoundError, InvalidCidError
from repro.ipfs.cid import CID


class BlockStore:
    """An in-memory mapping from CID to block bytes.

    Blocks are verified on insertion: storing bytes under a CID whose digest
    does not match raises :class:`InvalidCidError`, so a corrupted or
    malicious peer cannot poison a node's store.
    """

    def __init__(self) -> None:
        self._blocks: Dict[str, bytes] = {}

    def __len__(self) -> int:
        return len(self._blocks)

    def __contains__(self, cid: CID | str) -> bool:
        return self.has(cid)

    @staticmethod
    def _key(cid: CID | str) -> str:
        cid_obj = cid if isinstance(cid, CID) else CID.parse(cid)
        return cid_obj.encode()

    def put(self, cid: CID | str, block: bytes) -> CID:
        """Store ``block`` under ``cid`` after verifying the digest matches."""
        cid_obj = cid if isinstance(cid, CID) else CID.parse(cid)
        expected = CID.from_bytes_payload(bytes(block), version=cid_obj.version, codec=cid_obj.codec)
        if expected.digest != cid_obj.digest:
            raise InvalidCidError(
                f"block content does not hash to {cid_obj.encode()}"
            )
        self._blocks[cid_obj.encode()] = bytes(block)
        return cid_obj

    def get(self, cid: CID | str) -> bytes:
        """Fetch the block stored under ``cid``.

        Raises
        ------
        BlockNotFoundError
            If the block is not present locally.
        """
        key = self._key(cid)
        if key not in self._blocks:
            raise BlockNotFoundError(f"block {key} not in local store")
        return self._blocks[key]

    def has(self, cid: CID | str) -> bool:
        """Whether the block is present locally."""
        try:
            return self._key(cid) in self._blocks
        except InvalidCidError:
            return False

    def delete(self, cid: CID | str) -> bool:
        """Remove a block; returns whether it existed."""
        return self._blocks.pop(self._key(cid), None) is not None

    def cids(self) -> Iterator[str]:
        """Iterate over the CIDs of all stored blocks."""
        return iter(list(self._blocks.keys()))

    def total_bytes(self) -> int:
        """Total stored payload size in bytes."""
        return sum(len(block) for block in self._blocks.values())
