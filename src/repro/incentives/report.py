"""Human-readable incentive reports (the paper's Table 1)."""

from __future__ import annotations

from typing import List

from repro.incentives.payment import PaymentPlan
from repro.utils.units import format_ether


def format_payment_table(plan: PaymentPlan, title: str = "Payment Table") -> str:
    """Render a payment plan as a fixed-width text table.

    Matches the layout of Table 1: one row per wallet address with its ETH
    payment, plus a footer with the total and unallocated budget.
    """
    rows = plan.to_rows()
    address_width = max([len("Wallet Address")] + [len(row["wallet_address"]) for row in rows])
    lines: List[str] = []
    lines.append(title)
    lines.append(f"{'Wallet Address':<{address_width}}  {'Payment (ETH)':>14}")
    lines.append("-" * (address_width + 16))
    for row in rows:
        lines.append(f"{row['wallet_address']:<{address_width}}  {row['payment_eth']:>14}")
    lines.append("-" * (address_width + 16))
    lines.append(
        f"{'Total paid':<{address_width}}  {format_ether(plan.total_wei):>14}"
    )
    lines.append(
        f"{'Unallocated (refunded)':<{address_width}}  {format_ether(plan.unallocated_wei):>14}"
    )
    return "\n".join(lines)
