"""Turning contribution scores into ETH payments (Table 1 of the paper)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.errors import BudgetError
from repro.incentives.contribution import ContributionReport
from repro.utils.units import format_ether


@dataclass
class PaymentPlan:
    """Wei amounts per owner identifier, summing to at most the budget."""

    amounts_wei: Dict[str, int]
    budget_wei: int
    method: str

    @property
    def total_wei(self) -> int:
        """Total allocated wei."""
        return sum(self.amounts_wei.values())

    @property
    def unallocated_wei(self) -> int:
        """Budget left unallocated (returned to the buyer at finalization)."""
        return self.budget_wei - self.total_wei

    def to_rows(self) -> List[dict]:
        """Table rows in the paper's format (address, payment in ETH)."""
        return [
            {"wallet_address": owner, "payment_eth": format_ether(amount)}
            for owner, amount in self.amounts_wei.items()
        ]


def allocate_budget(
    report: ContributionReport,
    owner_ids: Sequence[str],
    budget_wei: int,
    reserve_fraction: float = 0.0,
    min_payment_wei: int = 0,
    clip_negative: bool = True,
) -> PaymentPlan:
    """Split ``budget_wei`` across owners proportionally to their contribution.

    Parameters
    ----------
    report:
        Contribution scores keyed by owner index (0..n-1).
    owner_ids:
        Wallet addresses, in the same index order as the report's scores.
    budget_wei:
        Total escrowed reward (the paper uses 0.01 ETH).
    reserve_fraction:
        Fraction of the budget the buyer keeps back (e.g. to cover its own gas
        fees); the remainder is distributed.
    min_payment_wei:
        A floor paid to every participating owner regardless of contribution,
        taken out of the distributable budget before the proportional split.
    clip_negative:
        Treat negative contributions as zero (an owner can never owe money).
    """
    if budget_wei <= 0:
        raise BudgetError(f"budget must be positive, got {budget_wei}")
    if not 0.0 <= reserve_fraction < 1.0:
        raise BudgetError(f"reserve_fraction must be in [0, 1), got {reserve_fraction}")
    num_owners = len(owner_ids)
    if num_owners != len(report.scores):
        raise BudgetError(
            f"{num_owners} owner ids but {len(report.scores)} contribution scores"
        )
    # Compute the reserve first and subtract, so float rounding can never push
    # the distributable amount above the integer budget.
    reserve_wei = min(budget_wei, int(budget_wei * reserve_fraction))
    distributable = budget_wei - reserve_wei
    floor_total = min_payment_wei * num_owners
    if floor_total > distributable:
        raise BudgetError(
            f"minimum payments ({floor_total} wei) exceed the distributable budget "
            f"({distributable} wei)"
        )

    scores = []
    for index in range(num_owners):
        score = report.scores[index]
        if clip_negative:
            score = max(score, 0.0)
        scores.append(score)
    total_score = sum(scores)

    proportional_pool = distributable - floor_total
    amounts: Dict[str, int] = {}
    allocated = 0
    for index, owner in enumerate(owner_ids):
        if total_score > 0:
            share = int(proportional_pool * scores[index] / total_score)
        else:
            share = proportional_pool // num_owners
        # Floating-point rounding could overshoot the pool by a few wei when
        # shares are derived from float contribution scores; cap the running
        # total so the escrowed budget is never exceeded.
        share = min(share, proportional_pool - allocated)
        allocated += share
        amounts[str(owner)] = min_payment_wei + share
    return PaymentPlan(amounts_wei=amounts, budget_wei=budget_wei, method=report.method)
