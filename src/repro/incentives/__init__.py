"""Incentive mechanisms: contribution measurement and payment allocation.

Step 7 of the OFL-W3 workflow: after aggregating the models, the buyer
measures each owner's marginal contribution (the paper uses Leave-one-out)
and converts contributions into ETH payments drawn from the escrowed budget.
Shapley values (exact and Monte-Carlo) are provided as the natural extension
and are compared against LOO in the incentive ablation benchmark.
"""

from repro.incentives.contribution import (
    ContributionReport,
    leave_one_out,
    shapley_exact,
    shapley_monte_carlo,
)
from repro.incentives.payment import PaymentPlan, allocate_budget
from repro.incentives.report import format_payment_table

__all__ = [
    "ContributionReport",
    "leave_one_out",
    "shapley_exact",
    "shapley_monte_carlo",
    "PaymentPlan",
    "allocate_budget",
    "format_payment_table",
]
