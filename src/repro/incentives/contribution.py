"""Contribution measures over a set of model updates.

All measures are defined in terms of a *value function* ``v(S)``: the test
accuracy of the aggregate built from the subset ``S`` of owners.  The caller
provides an ``aggregate_fn(subset_indices) -> accuracy``; in OFL-W3 this is
"re-run the one-shot aggregator on that subset and evaluate on the buyer's
test set".

* :func:`leave_one_out` -- the paper's mechanism: owner *i*'s contribution is
  ``v(N) - v(N \\ {i})``.  Figure 6 of the paper plots ``v(N \\ {i})`` for each
  *i* (high drop accuracy = low contribution).
* :func:`shapley_exact` -- the Shapley value, averaging marginal
  contributions over all subsets (exponential; fine for 10 owners when the
  value function is cheap, and used in the ablation with a cache).
* :func:`shapley_monte_carlo` -- permutation-sampling approximation.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence, Tuple

from repro.errors import IncentiveError
from repro.utils.rng import make_rng

ValueFunction = Callable[[Tuple[int, ...]], float]


@dataclass
class ContributionReport:
    """Per-owner contribution scores plus the evaluations that produced them."""

    method: str
    scores: Dict[int, float]
    full_value: float
    drop_values: Dict[int, float] = field(default_factory=dict)
    num_evaluations: int = 0

    def ranked(self) -> List[Tuple[int, float]]:
        """Owner indices sorted by decreasing contribution."""
        return sorted(self.scores.items(), key=lambda item: -item[1])

    def least_useful(self) -> int:
        """Index of the owner with the smallest contribution (paper: model 7)."""
        return min(self.scores.items(), key=lambda item: item[1])[0]

    def to_dict(self) -> dict:
        """JSON-friendly representation."""
        return {
            "method": self.method,
            "full_value": self.full_value,
            "scores": {str(k): v for k, v in self.scores.items()},
            "drop_values": {str(k): v for k, v in self.drop_values.items()},
            "num_evaluations": self.num_evaluations,
        }


class _CachedValue:
    """Memoizes the value function over subsets (sorted tuples of indices)."""

    def __init__(self, value_fn: ValueFunction) -> None:
        self._value_fn = value_fn
        self._cache: Dict[Tuple[int, ...], float] = {}
        self.calls = 0

    def __call__(self, subset: Sequence[int]) -> float:
        key = tuple(sorted(subset))
        if key not in self._cache:
            self.calls += 1
            self._cache[key] = float(self._value_fn(key)) if key else 0.0
        return self._cache[key]


def _validate(num_owners: int) -> None:
    if num_owners <= 0:
        raise IncentiveError(f"need at least one owner, got {num_owners}")


def leave_one_out(num_owners: int, value_fn: ValueFunction) -> ContributionReport:
    """Leave-one-out contributions: ``v(N) - v(N without i)`` for each owner."""
    _validate(num_owners)
    cached = _CachedValue(value_fn)
    everyone = tuple(range(num_owners))
    full_value = cached(everyone)
    scores: Dict[int, float] = {}
    drop_values: Dict[int, float] = {}
    for owner in range(num_owners):
        subset = tuple(i for i in everyone if i != owner)
        drop_value = cached(subset)
        drop_values[owner] = drop_value
        scores[owner] = full_value - drop_value
    return ContributionReport(
        method="leave_one_out",
        scores=scores,
        full_value=full_value,
        drop_values=drop_values,
        num_evaluations=cached.calls,
    )


def shapley_exact(num_owners: int, value_fn: ValueFunction, max_owners: int = 12) -> ContributionReport:
    """Exact Shapley values by enumerating all subsets.

    Complexity is ``O(2^n)`` value-function evaluations; refuse beyond
    ``max_owners`` to avoid accidental blow-ups.
    """
    _validate(num_owners)
    if num_owners > max_owners:
        raise IncentiveError(
            f"exact Shapley over {num_owners} owners would need 2^{num_owners} evaluations; "
            f"use shapley_monte_carlo instead"
        )
    cached = _CachedValue(value_fn)
    everyone = tuple(range(num_owners))
    full_value = cached(everyone)
    scores = {owner: 0.0 for owner in range(num_owners)}
    factorial_n = math.factorial(num_owners)
    others = list(range(num_owners))
    for owner in range(num_owners):
        remaining = [i for i in others if i != owner]
        for size in range(len(remaining) + 1):
            weight = (
                math.factorial(size) * math.factorial(num_owners - size - 1) / factorial_n
            )
            for subset in itertools.combinations(remaining, size):
                marginal = cached(subset + (owner,)) - cached(subset)
                scores[owner] += weight * marginal
    return ContributionReport(
        method="shapley_exact",
        scores=scores,
        full_value=full_value,
        num_evaluations=cached.calls,
    )


def shapley_monte_carlo(
    num_owners: int,
    value_fn: ValueFunction,
    num_permutations: int = 200,
    rng=None,
) -> ContributionReport:
    """Monte-Carlo Shapley: average marginals over random permutations."""
    _validate(num_owners)
    if num_permutations <= 0:
        raise IncentiveError(f"num_permutations must be positive, got {num_permutations}")
    cached = _CachedValue(value_fn)
    generator = make_rng(rng)
    everyone = tuple(range(num_owners))
    full_value = cached(everyone)
    totals = {owner: 0.0 for owner in range(num_owners)}
    for _ in range(num_permutations):
        order = generator.permutation(num_owners)
        prefix: List[int] = []
        previous_value = 0.0
        for owner in order:
            prefix.append(int(owner))
            current_value = cached(tuple(prefix))
            totals[int(owner)] += current_value - previous_value
            previous_value = current_value
    scores = {owner: total / num_permutations for owner, total in totals.items()}
    return ContributionReport(
        method="shapley_monte_carlo",
        scores=scores,
        full_value=full_value,
        num_evaluations=cached.calls,
    )
