"""Change propagation from the WAL into the analytics replica.

The :class:`AnalyticsFeeder` is the Polynesia-style update-propagation
half of the HTAP split: it tails the chain's :class:`WriteAheadLog`
(:mod:`repro.storage.wal`) and applies every ``block`` entry to an
:class:`AnalyticsStore`, keeping the columnar replica caught up with the
transactional node without touching its hot path.

**Freshness** is explicit: :attr:`AnalyticsFeeder.applied_seq` is the last
WAL sequence number folded into the replica, ``lag()`` is the number of
WAL entries the replica is behind, and every query method drains the log
first, so reads are always *read-your-writes* fresh with respect to the
WAL while the gauge still reports how far the replica trailed between
queries.

**Compaction and reorgs** are the two ways the WAL tail can stop being a
faithful prefix of chain history:

* snapshots archive block entries into cold blob storage
  (:data:`~repro.storage.wal.BLOCK_ARCHIVE_NAMESPACE`), so a lagging
  feeder may find its next entries gone from the log -- it reconciles
  against the archive instead;
* under ``enable_fork_choice`` a reorg rewrites history: the chain calls
  :meth:`on_reorg`, and the feeder truncates the replica to the fork
  point and replays the new branch from the archive, emitting an
  ``analytics.rollback`` obs event.

Both cases funnel through one archive-reconcile step that compares block
hashes top-down (O(1) when nothing diverged).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.analytics.store import AnalyticsStore
from repro.chain.block import Block, block_from_record
from repro.chain.events import EventLog, LogFilter, LogPage
from repro.errors import AnalyticsError


class AnalyticsFeeder:
    """Tail a WAL into an :class:`AnalyticsStore`; serve replica queries.

    The feeder *is* the object attached as ``chain.analytics``: its query
    methods drain pending WAL entries first and then answer from the
    columnar store, so routed reads are parity-identical to the scan path
    at the same chain height.
    """

    def __init__(self, wal: Any, store: Optional[AnalyticsStore] = None,
                 obs: Optional[Any] = None) -> None:
        self.wal = wal
        self.store = store if store is not None else AnalyticsStore()
        #: Optional :class:`repro.obs.Observability`; ``None`` (the default)
        #: keeps every feeder path free of instrumentation, the same gating
        #: idiom as ``chain.obs``.
        self.obs = obs
        #: Last WAL sequence number applied to (or reconciled into) the store.
        self.applied_seq = -1
        #: WAL compaction epoch the feeder last reconciled against.  ``None``
        #: forces an archive reconcile on the first drain, which doubles as
        #: the initial backfill for a feeder attached to an existing store.
        self._seen_compactions: Optional[int] = None
        self._needs_reconcile = False
        #: Total reorg rollbacks applied to the replica.
        self.rollbacks = 0
        #: Total queries served from the replica.
        self.queries = 0

    # -- change propagation ----------------------------------------------------

    def drain(self) -> int:
        """Apply every outstanding WAL entry; returns blocks applied.

        Reconciles against the block archive first whenever a compaction
        or reorg happened since the last drain, then tails the live log.
        """
        applied = 0
        compactions = getattr(self.wal, "compactions", 0)
        if self._needs_reconcile or compactions != self._seen_compactions:
            applied += self._reconcile_with_archive()
            self._seen_compactions = compactions
            self._needs_reconcile = False
        for entry in self.wal.entries(self.applied_seq + 1):
            if entry.kind == "block":
                applied += self._apply_block_record(entry.payload)
            self.applied_seq = entry.seq
        # Compaction can truncate entries the feeder never saw live (their
        # blocks were reconciled from the archive above); catch the
        # high-water mark up so lag() measures real missing work only.
        last = self.wal.last_seq()
        if last > self.applied_seq:
            self.applied_seq = last
        return applied

    def backfill(self) -> Dict[str, int]:
        """Rebuild the replica from scratch: archive first, then the live log.

        This is what ``repro analytics backfill`` runs after a crash
        recovery: it discards the in-memory columns and replays all of
        history (archived blocks + retained WAL entries) into a fresh store.
        """
        self.store = AnalyticsStore()
        self.applied_seq = -1
        self._seen_compactions = None
        self._needs_reconcile = False
        applied = self.drain()
        return {"blocks_applied": applied, "height": self.store.height,
                "applied_seq": self.applied_seq}

    def on_reorg(self, fork_height: int) -> None:
        """Chain hook: a reorg rewrote history above ``fork_height``.

        The replica is truncated to the fork point immediately (the chain
        knows the exact height, so no hash walk is needed); the new branch
        is replayed from the archive on the next drain -- the chain
        snapshots and compacts right after reorging, so that is where the
        new-branch blocks live.
        """
        self._rollback(fork_height)
        self._needs_reconcile = True

    def _reconcile_with_archive(self) -> int:
        """Roll back past any divergence and replay archived blocks.

        Compares the replica's block hashes against the archive from the
        top down: when nothing diverged (the common, compaction-only case)
        the first comparison matches and this costs O(1); after a reorg the
        walk finds the fork point, truncates the replica to it and replays
        the new branch.
        """
        store = self.store
        archived = self.wal.archived_block_numbers()
        top = archived[-1] if archived else 0
        fork = min(store.height, top)
        while fork > 0:
            record = self.wal.archived_block(fork)
            if record["header"]["hash"] == store.block_hash_at(fork):
                break
            fork -= 1
        if fork < min(store.height, top):
            # A hash mismatch inside the overlap: history above the fork
            # point was rewritten by a reorg.  (A replica *ahead* of the
            # archive -- height > top with matching overlap -- is the
            # normal lagging-compaction case and is left alone.)
            self._rollback(fork)
        applied = 0
        for number in archived:
            if number <= store.height:
                continue
            block = block_from_record(self.wal.archived_block(number))
            applied += self._apply_block_record_object(block)
        return applied

    def _rollback(self, fork_height: int) -> None:
        """Truncate the replica to ``fork_height`` (reorg handling)."""
        if fork_height >= self.store.height:
            return
        removed = self.store.rollback_to(fork_height)
        self.rollbacks += 1
        if self.obs is not None:
            self.obs.event(
                "analytics.rollback", fork_height=fork_height,
                removed_blocks=removed["blocks"],
                removed_transactions=removed["transactions"],
                removed_logs=removed["logs"])

    def _apply_block_record(self, payload: Dict[str, Any]) -> int:
        """Apply one WAL ``block`` payload (a :meth:`Block.to_record` dict)."""
        return self._apply_block_record_object(block_from_record(payload))

    def _apply_block_record_object(self, block: Block) -> int:
        store = self.store
        number = block.number
        if number <= store.height:
            if store.block_hash_at(number) == block.hash:
                return 0  # duplicate delivery; already applied
            # Divergent history at an already-applied height: a reorg the
            # chain never told us about.  Truncate and fall through.
            self._rollback(number - 1)
        elif number > store.height + 1:
            # Gap: the intermediate blocks were compacted into the archive
            # before this feeder saw them live.
            applied = self._reconcile_with_archive()
            if number <= store.height:
                return applied
            if number > store.height + 1:
                raise AnalyticsError(
                    f"analytics feeder at height {store.height} cannot reach "
                    f"block {number}: blocks "
                    f"{store.height + 1}..{number - 1} are in neither the "
                    f"WAL nor the archive")
            return applied + self._apply_block_record_object(block)
        if number > 1:
            parent = store.block_hash_at(number - 1)
            if parent is not None and block.header.parent_hash != parent:
                raise AnalyticsError(
                    f"broken block linkage at height {number}: parent hash "
                    f"{block.header.parent_hash} does not match replica "
                    f"hash {parent}")
        store.apply_block(block)
        return 1

    # -- freshness --------------------------------------------------------------

    def lag(self) -> int:
        """WAL entries the replica is behind (0 = fully caught up)."""
        return max(0, self.wal.last_seq() - self.applied_seq)

    def status(self) -> Dict[str, Any]:
        """Freshness + size summary (the ``analytics_status`` RPC payload)."""
        stats = self.store.stats()
        return {
            "applied_seq": self.applied_seq,
            "wal_last_seq": self.wal.last_seq(),
            "lag_entries": self.lag(),
            "height": stats["height"],
            "transactions": stats["transactions"],
            "logs": stats["logs"],
            "addresses": stats["addresses"],
            "event_names": stats["event_names"],
            "rollbacks": self.rollbacks,
            "queries": self.queries,
        }

    # -- routed queries (drain first, then answer from the columns) -------------

    def logs(self, log_filter: Optional[LogFilter] = None) -> List[EventLog]:
        """Replica-served ``Blockchain.logs`` (scan-path parity)."""
        self.drain()
        self.queries += 1
        return self.store.logs(log_filter)

    def logs_page(self, log_filter: Optional[LogFilter] = None,
                  limit: Optional[int] = None,
                  cursor: Optional[str] = None) -> LogPage:
        """Replica-served ``Blockchain.logs_page`` (cursor parity)."""
        self.drain()
        self.queries += 1
        return self.store.logs_page(log_filter, limit=limit, cursor=cursor)

    def log_count(self) -> int:
        """Replica-served canonical log-stream length."""
        self.drain()
        return self.store.log_count

    def records(self) -> List[Any]:
        """Replica-served ``Explorer.all_records`` (chain-order records)."""
        self.drain()
        self.queries += 1
        return list(self.store.records)

    def record(self, tx_hash: str) -> Optional[Any]:
        """Replica-served ``Explorer.record`` -- O(1) instead of a scan."""
        self.drain()
        self.queries += 1
        return self.store.record(tx_hash)

    def transactions_of(self, address: str) -> List[Any]:
        """Replica-served ``Explorer.transactions_of`` via the address index."""
        self.drain()
        self.queries += 1
        return self.store.transactions_of(address)

    def records_page(self, address: Optional[str] = None, limit: int = 50,
                     cursor: Optional[str] = None
                     ) -> Tuple[List[Any], Optional[str]]:
        """Replica-served ``Explorer.records_page`` (cursor parity)."""
        self.drain()
        self.queries += 1
        return self.store.records_page(address, limit=limit, cursor=cursor)

    def fee_summary_by_kind(self) -> Dict[str, Dict[str, float]]:
        """Replica-served ``Explorer.fee_summary_by_kind`` from the rollup."""
        self.drain()
        self.queries += 1
        return self.store.fee_summary_by_kind()

    def account_columns(self, address: str) -> Dict[str, int]:
        """Replica-served scan half of ``Explorer.account_activity``."""
        self.drain()
        self.queries += 1
        return self.store.account_columns(address)

    def chain_statistics(self) -> Dict[str, int]:
        """Replica-served ``Explorer.chain_statistics`` from the totals."""
        self.drain()
        self.queries += 1
        return self.store.chain_statistics()

    def leaderboard(self, name: str = "payments",
                    limit: int = 10) -> List[Dict[str, Any]]:
        """Replica-served marketplace leaderboard from the rollups."""
        self.drain()
        self.queries += 1
        return self.store.leaderboard(name, limit)

    def series(self, event_name: str) -> List[Dict[str, Any]]:
        """Replica-served event time series (contribution/payout history)."""
        self.drain()
        self.queries += 1
        return self.store.series(event_name)


def attach_analytics(chain: Any, store: Optional[AnalyticsStore] = None,
                     obs: Optional[Any] = None) -> AnalyticsFeeder:
    """Build a feeder over ``chain``'s WAL and route its reads to the replica.

    Requires the chain to have durable storage attached (the WAL is the
    change-propagation source).  The feeder backfills from the archive +
    live log, is installed as ``chain.analytics`` (flipping ``logs`` /
    ``logs_page`` / explorer routing over to the replica) and is returned.
    """
    hooks = getattr(chain, "store", None)
    engine = getattr(hooks, "engine", None)
    wal = getattr(engine, "wal", None)
    if wal is None:
        raise AnalyticsError(
            "chain has no durable store attached; the analytics replica "
            "needs a WriteAheadLog to feed from")
    feeder = AnalyticsFeeder(wal, store=store, obs=obs)
    feeder.drain()
    chain.analytics = feeder
    return feeder


def detach_analytics(chain: Any) -> None:
    """Remove the replica routing; reads fall back to the OLTP scan path."""
    chain.analytics = None
