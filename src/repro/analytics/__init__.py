"""repro.analytics: a WAL-fed columnar HTAP replica for analytical reads.

The Polynesia design (PAPERS.md) on top of the repro stack: the OLTP
:class:`~repro.chain.chain.Blockchain` keeps ingesting transactions while
an :class:`AnalyticsStore` -- columnar arrays, sorted indexes and
pre-aggregated rollups -- answers ``eth_getLogs``, explorer pages and
marketplace leaderboards.  The :class:`AnalyticsFeeder` propagates changes
from the write-ahead log (and its block archive), handles reorg rollback,
and exposes explicit freshness (``applied_seq`` / lag).

Attach with :func:`attach_analytics`; with no replica attached the stack's
behavior is bit-for-bit the seed scan path.
"""

from repro.analytics.feeder import (
    AnalyticsFeeder,
    attach_analytics,
    detach_analytics,
)
from repro.analytics.store import (
    LEADERBOARDS,
    PAYMENT_EVENT,
    SUBMISSION_EVENT,
    AnalyticsStore,
    scan_leaderboard,
)

__all__ = [
    "AnalyticsFeeder",
    "AnalyticsStore",
    "LEADERBOARDS",
    "PAYMENT_EVENT",
    "SUBMISSION_EVENT",
    "attach_analytics",
    "detach_analytics",
    "scan_leaderboard",
]
