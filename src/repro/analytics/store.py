"""The read-optimized side of the HTAP split: a columnar analytics store.

Polynesia's design (PAPERS.md) separates the transactional replica -- the
``Blockchain`` that validates and executes -- from an *analytical* replica
maintained by change propagation from the update log.  This module is the
analytical replica's storage layout:

* **columnar arrays** over blocks, transactions and event logs (one Python
  list per column, positions aligned with the chain/record/log streams the
  OLTP scan paths expose), so range queries bisect instead of scanning;
* **secondary indexes** -- positions by address, by event name, by
  transaction hash -- so point lookups are ``O(log n)`` instead of a full
  history walk;
* **pre-aggregated rollups** maintained incrementally on every applied
  block: fee summaries by transaction kind, per-address activity,
  chain-wide totals and the payment / submission leaderboards the
  marketplace's reporting reads.

Every query method is *parity-pinned* against the OLTP scan path: given the
same chain prefix, ``logs`` / ``logs_page`` / ``records_page`` / the
aggregate methods return byte-identical results to ``Blockchain.logs``,
``Blockchain.logs_page`` and :class:`~repro.chain.explorer.Explorer` --
including cursor semantics (a full page always carries a cursor; a short
page means "exhausted").  The feeder (:mod:`repro.analytics.feeder`) keeps
this store caught up with the WAL and rolls it back across reorgs.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right, insort
from typing import Any, Dict, List, Optional, Tuple

from repro.chain.block import Block
from repro.chain.events import EventLog, LogFilter, LogPage, parse_cursor
from repro.chain.explorer import TransactionRecord
from repro.errors import AnalyticsError

#: Rollup names :meth:`AnalyticsStore.leaderboard` serves.
LEADERBOARDS = ("payments", "submissions", "fees")

#: Event names feeding the marketplace leaderboards (contribution series).
PAYMENT_EVENT = "PaymentSent"
SUBMISSION_EVENT = "CidUploaded"


class AnalyticsStore:
    """Columnar arrays + sorted indexes + incremental rollups over a chain.

    Blocks are applied in order by :meth:`apply_block` (the feeder's change
    propagation) and removed by :meth:`rollback_to` (reorg handling).  All
    query methods are read-only and cheap: bisect over the block-number
    columns for ranges, dict lookups for points, precomputed sums for the
    aggregates.
    """

    def __init__(self) -> None:
        # -- block columns (position = block number - 1; genesis excluded) --
        self.block_hashes: List[str] = []
        self.block_timestamps: List[float] = []
        self.block_gas_used: List[int] = []
        self.block_tx_counts: List[int] = []
        #: Record-stream position of each block's first transaction.
        self.block_tx_offsets: List[int] = []
        #: Log-stream position of each block's first event log.
        self.block_log_offsets: List[int] = []
        # -- transaction columns (position = chain/record-stream order) --
        self.records: List[TransactionRecord] = []
        self.tx_blocks: List[int] = []
        self.tx_fees: List[int] = []
        self.tx_gas: List[int] = []
        self.tx_kinds: List[str] = []
        self.tx_position_by_hash: Dict[str, int] = {}
        #: Sorted record positions per address (sender or recipient).
        self.tx_positions_by_address: Dict[str, List[int]] = {}
        # -- log columns (position = canonical log-stream order) --
        self.logs_column: List[EventLog] = []
        self.log_blocks: List[int] = []  # non-decreasing: bisect for ranges
        self.log_positions_by_address: Dict[str, List[int]] = {}
        self.log_positions_by_event: Dict[str, List[int]] = {}
        # -- incremental rollups --
        #: kind -> {count, total_fee_wei, total_gas_used, max_fee_wei,
        #: min_fee_wei}; insertion order = first occurrence in the record
        #: stream (matches the scan path's grouping order).
        self.fee_rollup: Dict[str, Dict[str, int]] = {}
        #: address -> {sent, received, fees_wei, value_received_wei}
        self.account_rollup: Dict[str, Dict[str, int]] = {}
        #: owner -> {"total_wei", "payments"} from ``PaymentSent`` events.
        self.payment_rollup: Dict[str, Dict[str, int]] = {}
        #: uploader -> {"submissions"} from ``CidUploaded`` events.
        self.submission_rollup: Dict[str, Dict[str, int]] = {}
        self.total_gas_used = 0
        self.total_fees_wei = 0
        self.failed_transactions = 0

    # -- topology ------------------------------------------------------------

    @property
    def height(self) -> int:
        """Number of the last applied block (0 = only genesis known)."""
        return len(self.block_hashes)

    @property
    def log_count(self) -> int:
        """Length of the replicated canonical log stream."""
        return len(self.logs_column)

    @property
    def record_count(self) -> int:
        """Length of the replicated transaction-record stream."""
        return len(self.records)

    def block_hash_at(self, number: int) -> Optional[str]:
        """Hash of applied block ``number`` (``None`` if not held)."""
        if 1 <= number <= self.height:
            return self.block_hashes[number - 1]
        return None

    # -- change propagation ----------------------------------------------------

    def apply_block(self, block: Block) -> None:
        """Append one block's rows to every column and update the rollups.

        Blocks must arrive in chain order; the feeder enforces parent-hash
        linkage before calling this.
        """
        number = block.number
        if number != self.height + 1:
            raise AnalyticsError(
                f"analytics store at height {self.height} cannot apply "
                f"block {number} (blocks must arrive in order)")
        self.block_hashes.append(block.hash)
        self.block_timestamps.append(block.timestamp)
        self.block_gas_used.append(block.gas_used)
        self.block_tx_counts.append(len(block.transactions))
        self.block_tx_offsets.append(len(self.records))
        self.block_log_offsets.append(len(self.logs_column))
        for tx, receipt in zip(block.transactions, block.receipts):
            record = TransactionRecord(transaction=tx, receipt=receipt)
            position = len(self.records)
            self.records.append(record)
            self.tx_blocks.append(number)
            self.tx_fees.append(record.fee_wei)
            self.tx_gas.append(receipt.gas_used)
            kind = record.kind
            self.tx_kinds.append(kind)
            self.tx_position_by_hash[tx.hash_hex] = position
            self._index_tx_address(str(tx.sender), position)
            if tx.to is not None and tx.to != tx.sender:
                self._index_tx_address(str(tx.to), position)
            self._roll_up_transaction(record, kind)
            for index, log in enumerate(receipt.logs):
                positioned = EventLog(
                    address=log.address,
                    name=log.name,
                    args=log.args,
                    block_number=number,
                    transaction_hash=tx.hash_hex,
                    log_index=index,
                )
                log_position = len(self.logs_column)
                self.logs_column.append(positioned)
                self.log_blocks.append(number)
                self.log_positions_by_address.setdefault(
                    str(positioned.address), []).append(log_position)
                self.log_positions_by_event.setdefault(
                    positioned.name, []).append(log_position)
                self._roll_up_log(positioned)

    def _index_tx_address(self, address: str, position: int) -> None:
        positions = self.tx_positions_by_address.setdefault(address, [])
        if not positions or positions[-1] != position:
            insort(positions, position)

    def _roll_up_transaction(self, record: TransactionRecord, kind: str) -> None:
        fee = record.fee_wei
        gas = record.receipt.gas_used
        entry = self.fee_rollup.get(kind)
        if entry is None:
            self.fee_rollup[kind] = {
                "count": 1, "total_fee_wei": fee, "total_gas_used": gas,
                "max_fee_wei": fee, "min_fee_wei": fee,
            }
        else:
            entry["count"] += 1
            entry["total_fee_wei"] += fee
            entry["total_gas_used"] += gas
            if fee > entry["max_fee_wei"]:
                entry["max_fee_wei"] = fee
            if fee < entry["min_fee_wei"]:
                entry["min_fee_wei"] = fee
        tx = record.transaction
        sender = self._account(str(tx.sender))
        sender["sent"] += 1
        sender["fees_wei"] += fee
        if tx.to is not None:
            recipient = self._account(str(tx.to))
            recipient["received"] += 1
            recipient["value_received_wei"] += tx.value
        self.total_gas_used += gas
        self.total_fees_wei += fee
        if not record.receipt.status:
            self.failed_transactions += 1

    def _roll_up_log(self, log: EventLog) -> None:
        if log.name == PAYMENT_EVENT:
            owner = str(log.args.get("owner", ""))
            entry = self.payment_rollup.setdefault(
                owner, {"total_wei": 0, "payments": 0})
            entry["total_wei"] += int(log.args.get("amount", 0))
            entry["payments"] += 1
        elif log.name == SUBMISSION_EVENT:
            uploader = str(log.args.get("uploader", ""))
            entry = self.submission_rollup.setdefault(
                uploader, {"submissions": 0})
            entry["submissions"] += 1

    def _account(self, address: str) -> Dict[str, int]:
        entry = self.account_rollup.get(address)
        if entry is None:
            entry = {"sent": 0, "received": 0, "fees_wei": 0,
                     "value_received_wei": 0}
            self.account_rollup[address] = entry
        return entry

    def rollback_to(self, fork_height: int) -> Dict[str, int]:
        """Truncate every column to ``fork_height`` and rebuild the rollups.

        Reorgs are rare and shallow, so the rollups are recomputed from the
        surviving columns (simple and obviously parity-correct) instead of
        decremented in place.  Returns what was removed.
        """
        if fork_height < 0 or fork_height > self.height:
            raise AnalyticsError(
                f"cannot roll back to height {fork_height} "
                f"(store is at {self.height})")
        removed = {"blocks": self.height - fork_height, "transactions": 0,
                   "logs": 0}
        if removed["blocks"] == 0:
            return removed
        tx_keep = self.block_tx_offsets[fork_height] if fork_height else 0
        log_keep = self.block_log_offsets[fork_height] if fork_height else 0
        removed["transactions"] = len(self.records) - tx_keep
        removed["logs"] = len(self.logs_column) - log_keep

        del self.block_hashes[fork_height:]
        del self.block_timestamps[fork_height:]
        del self.block_gas_used[fork_height:]
        del self.block_tx_counts[fork_height:]
        del self.block_tx_offsets[fork_height:]
        del self.block_log_offsets[fork_height:]
        for record in self.records[tx_keep:]:
            self.tx_position_by_hash.pop(record.transaction.hash_hex, None)
        del self.records[tx_keep:]
        del self.tx_blocks[tx_keep:]
        del self.tx_fees[tx_keep:]
        del self.tx_gas[tx_keep:]
        del self.tx_kinds[tx_keep:]
        del self.logs_column[log_keep:]
        del self.log_blocks[log_keep:]
        self._rebuild_indexes_and_rollups()
        return removed

    def _rebuild_indexes_and_rollups(self) -> None:
        """Recompute secondary indexes and rollups from the truncated columns."""
        self.tx_positions_by_address = {}
        self.log_positions_by_address = {}
        self.log_positions_by_event = {}
        self.fee_rollup = {}
        self.account_rollup = {}
        self.payment_rollup = {}
        self.submission_rollup = {}
        self.total_gas_used = 0
        self.total_fees_wei = 0
        self.failed_transactions = 0
        for position, record in enumerate(self.records):
            tx = record.transaction
            self._index_tx_address(str(tx.sender), position)
            if tx.to is not None and tx.to != tx.sender:
                self._index_tx_address(str(tx.to), position)
            self._roll_up_transaction(record, self.tx_kinds[position])
        for position, log in enumerate(self.logs_column):
            self.log_positions_by_address.setdefault(
                str(log.address), []).append(position)
            self.log_positions_by_event.setdefault(
                log.name, []).append(position)
            self._roll_up_log(log)

    # -- log queries (parity with Blockchain.logs / logs_page) ---------------------

    def _candidate_positions(self, log_filter: LogFilter) -> Optional[List[int]]:
        """The smallest applicable index's positions (``None`` = no index)."""
        candidates: Optional[List[int]] = None
        if log_filter.address is not None:
            candidates = self.log_positions_by_address.get(
                str(log_filter.address), [])
        if log_filter.event_name is not None:
            by_event = self.log_positions_by_event.get(log_filter.event_name, [])
            if candidates is None or len(by_event) < len(candidates):
                candidates = by_event
        return candidates

    def _range_bounds(self, log_filter: Optional[LogFilter]) -> Tuple[int, int]:
        """Log-stream positions covering the filter's block range."""
        if log_filter is None:
            return 0, len(self.log_blocks)
        lo = bisect_left(self.log_blocks, log_filter.from_block) \
            if log_filter.from_block > 0 else 0
        hi = bisect_right(self.log_blocks, log_filter.to_block) \
            if log_filter.to_block is not None else len(self.log_blocks)
        return lo, hi

    def logs(self, log_filter: Optional[LogFilter] = None) -> List[EventLog]:
        """All matching logs, in canonical stream order (scan-path parity)."""
        if log_filter is None:
            return list(self.logs_column)
        candidates = self._candidate_positions(log_filter)
        lo, hi = self._range_bounds(log_filter)
        if candidates is None:
            return [log for log in self.logs_column[lo:hi]
                    if log_filter.matches(log)]
        start = bisect_left(candidates, lo)
        matched: List[EventLog] = []
        for position in candidates[start:]:
            if position >= hi:
                break
            log = self.logs_column[position]
            if log_filter.matches(log):
                matched.append(log)
        return matched

    def logs_page(
        self,
        log_filter: Optional[LogFilter] = None,
        limit: Optional[int] = None,
        cursor: Optional[str] = None,
    ) -> LogPage:
        """One page of the canonical log stream (cursor-parity with the chain).

        Cursors are positions in the append-only log stream, exactly as
        ``Blockchain.logs_page`` issues them: a full page always carries a
        cursor, a short page means "exhausted".
        """
        start = parse_cursor(cursor, "log")
        if limit is not None and limit <= 0:
            raise ValueError(f"log page limit must be positive, got {limit}")
        lo, hi = self._range_bounds(log_filter)
        lo = max(lo, start)
        candidates = None if log_filter is None \
            else self._candidate_positions(log_filter)
        if candidates is None:
            positions: Any = range(lo, hi)
        else:
            positions = candidates[bisect_left(candidates, lo):]
        matched: List[EventLog] = []
        next_cursor: Optional[str] = None
        for position in positions:
            if position >= hi:
                break
            log = self.logs_column[position]
            if log_filter is not None and not log_filter.matches(log):
                continue
            matched.append(log)
            if limit is not None and len(matched) >= limit:
                next_cursor = str(position + 1)
                break
        return LogPage(logs=matched, next_cursor=next_cursor)

    # -- record queries (parity with Explorer) -----------------------------------

    def record(self, tx_hash: str) -> Optional[TransactionRecord]:
        """Point lookup of one transaction record by hash (O(1))."""
        position = self.tx_position_by_hash.get(tx_hash)
        return self.records[position] if position is not None else None

    def transactions_of(self, address: str) -> List[TransactionRecord]:
        """Records sent by or addressed to ``address``, in chain order."""
        positions = self.tx_positions_by_address.get(address, [])
        return [self.records[position] for position in positions]

    def records_page(
        self,
        address: Optional[str] = None,
        limit: int = 50,
        cursor: Optional[str] = None,
    ) -> Tuple[List[TransactionRecord], Optional[str]]:
        """One page of transaction records (cursor-parity with the explorer)."""
        if limit <= 0:
            raise ValueError(f"records_page limit must be positive, got {limit}")
        start = parse_cursor(cursor, "records")
        if address is None:
            page = self.records[start:start + limit]
            next_cursor = str(start + limit) if len(page) >= limit else None
            return page, next_cursor
        candidates = self.tx_positions_by_address.get(address, [])
        page = []
        next_cursor = None
        for position in candidates[bisect_left(candidates, start):]:
            page.append(self.records[position])
            if len(page) >= limit:
                next_cursor = str(position + 1)
                break
        return page, next_cursor

    # -- aggregate rollups (parity with Explorer aggregates) -----------------------

    def fee_summary_by_kind(self) -> Dict[str, Dict[str, float]]:
        """Fee/gas statistics by transaction kind, from the rollup."""
        summary: Dict[str, Dict[str, float]] = {}
        for kind, entry in self.fee_rollup.items():
            count = entry["count"]
            summary[kind] = {
                "count": count,
                "total_fee_wei": entry["total_fee_wei"],
                "mean_fee_wei": entry["total_fee_wei"] / count,
                "mean_gas_used": entry["total_gas_used"] / count,
                "max_fee_wei": entry["max_fee_wei"],
                "min_fee_wei": entry["min_fee_wei"],
            }
        return summary

    def account_columns(self, address: str) -> Dict[str, int]:
        """Per-address activity counters (the scan-heavy half of the
        explorer's ``account_activity``; balance and nonce stay point
        lookups on the OLTP state)."""
        entry = self.account_rollup.get(address)
        if entry is None:
            entry = {"sent": 0, "received": 0, "fees_wei": 0,
                     "value_received_wei": 0}
        return {
            "transactions_sent": entry["sent"],
            "transactions_received": entry["received"],
            "total_fees_paid_wei": entry["fees_wei"],
            "total_value_received_wei": entry["value_received_wei"],
        }

    def chain_statistics(self) -> Dict[str, int]:
        """Whole-chain totals (parity with ``Explorer.chain_statistics``)."""
        return {
            "height": self.height,
            "total_transactions": len(self.records),
            "total_gas_used": self.total_gas_used,
            "total_fees_wei": self.total_fees_wei,
            "failed_transactions": self.failed_transactions,
        }

    def leaderboard(self, name: str = "payments",
                    limit: int = 10) -> List[Dict[str, Any]]:
        """A marketplace leaderboard from the pre-aggregated rollups.

        ``payments`` ranks owners by total ``PaymentSent`` wei, ``submissions``
        ranks uploaders by ``CidUploaded`` count, ``fees`` ranks senders by
        total fees paid.  Ties break on ascending address so the ranking is
        deterministic.
        """
        if limit <= 0:
            raise ValueError(f"leaderboard limit must be positive, got {limit}")
        if name == "payments":
            rows = [{"address": owner, "total_wei": entry["total_wei"],
                     "payments": entry["payments"]}
                    for owner, entry in self.payment_rollup.items()]
            rows.sort(key=lambda row: (-row["total_wei"], row["address"]))
        elif name == "submissions":
            rows = [{"address": uploader, "submissions": entry["submissions"]}
                    for uploader, entry in self.submission_rollup.items()]
            rows.sort(key=lambda row: (-row["submissions"], row["address"]))
        elif name == "fees":
            rows = [{"address": address, "total_fees_paid_wei": entry["fees_wei"],
                     "transactions_sent": entry["sent"]}
                    for address, entry in self.account_rollup.items()
                    if entry["sent"] > 0]
            rows.sort(key=lambda row: (-row["total_fees_paid_wei"],
                                       row["address"]))
        else:
            raise AnalyticsError(
                f"unknown leaderboard {name!r} (expected one of {LEADERBOARDS})")
        return rows[:limit]

    def series(self, event_name: str) -> List[Dict[str, Any]]:
        """The (block_number, args) time series of one event name.

        This is the contribution/model-quality series hook: ``CidUploaded``
        gives the submission timeline, ``PaymentSent`` the payout timeline.
        """
        positions = self.log_positions_by_event.get(event_name, [])
        return [
            {"block_number": self.logs_column[position].block_number,
             "transaction_hash": self.logs_column[position].transaction_hash,
             "args": dict(self.logs_column[position].args)}
            for position in positions
        ]

    def stats(self) -> Dict[str, int]:
        """Row counts per table (the ``analytics_status`` surface)."""
        return {
            "height": self.height,
            "blocks": self.height,
            "transactions": len(self.records),
            "logs": len(self.logs_column),
            "addresses": len(self.account_rollup),
            "event_names": len(self.log_positions_by_event),
        }


def scan_leaderboard(chain: Any, name: str = "payments",
                     limit: int = 10) -> List[Dict[str, Any]]:
    """The OLTP scan-path equivalent of :meth:`AnalyticsStore.leaderboard`.

    Walks chain history directly (no replica involved); the parity tests and
    the CLI's parity check compare its output byte-for-byte against the
    replica rollup.
    """
    store = AnalyticsStore()
    for block in chain.iter_blocks():
        if block.number == 0:
            continue
        store.apply_block(block)
    return store.leaderboard(name, limit)
