"""Conflict-graph wave scheduling for intra-block parallel execution.

The scheduler turns an ordered candidate list (the mempool's fee-priority
selection) plus the per-transaction :class:`~repro.parallel.access.AccessSet`
footprints into a list of *waves*: batches of mutually non-conflicting
transactions that may execute concurrently.  Assignment is the classic
greedy list-scheduling pass **in block position order** -- each transaction
lands in the earliest wave after every earlier transaction it conflicts
with -- so the wave layout is a pure function of (transaction order,
footprints).  Worker count, thread timing and pool size never influence it;
that is the determinism guarantee the serial-equivalence harness pins.

Exclusive transactions (contract creations, impure contract calls,
coinbase-touching transfers) become solo *barrier* waves: everything before
them commits first, everything after them starts later, which is exactly the
ordering a serial executor gives them.

The scheduler also carries the simulated capacity model: a block has a
budget of serial-equivalent *execution slots* (the mempool's historical
per-block transaction cap), and a wave of ``s`` transactions on ``W``
workers costs ``ceil(s / W)`` slots.  :func:`trim_to_budget` cuts a schedule
down to that budget, keeping a clean prefix of waves (and a position-prefix
of the first wave that does not fit), which preserves per-sender nonce
continuity: a dependent transaction always sits in a later wave than its
predecessor, so trimming never orphans a nonce chain.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.parallel.access import AccessSet


@dataclass
class Wave:
    """One execution wave: positions into the candidate list, in order."""

    positions: List[int] = field(default_factory=list)
    exclusive: bool = False

    @property
    def width(self) -> int:
        """Number of transactions executing concurrently in this wave."""
        return len(self.positions)

    def slot_cost(self, workers: int) -> int:
        """Serial-equivalent execution slots this wave consumes."""
        if self.exclusive:
            return len(self.positions)
        return -(-len(self.positions) // max(1, workers))  # ceil division


@dataclass
class Schedule:
    """The deterministic wave layout of one candidate list."""

    waves: List[Wave] = field(default_factory=list)
    n_transactions: int = 0

    def slot_cost(self, workers: int) -> int:
        """Total serial-equivalent slots at ``workers`` workers."""
        return sum(wave.slot_cost(workers) for wave in self.waves)

    @property
    def max_width(self) -> int:
        """Widest wave (1 for a fully serialized block)."""
        return max((wave.width for wave in self.waves), default=0)

    @property
    def conflict_ratio(self) -> float:
        """How serialized the block is: 0.0 fully parallel, 1.0 fully serial.

        Defined as ``(waves - 1) / (transactions - 1)``: one wave for the
        whole block scores 0.0, one wave *per transaction* scores 1.0.
        Blocks with fewer than two transactions score 0.0 (nothing to
        parallelize, nothing conflicting).
        """
        if self.n_transactions <= 1:
            return 0.0
        return (len(self.waves) - 1) / (self.n_transactions - 1)

    def width_histogram(self) -> Dict[int, int]:
        """Map wave width -> number of waves with that width."""
        histogram: Dict[int, int] = {}
        for wave in self.waves:
            histogram[wave.width] = histogram.get(wave.width, 0) + 1
        return histogram

    def layout(self) -> List[List[int]]:
        """The wave layout as plain position lists (for determinism pins)."""
        return [list(wave.positions) for wave in self.waves]


def build_schedule(accesses: Sequence[AccessSet]) -> Schedule:
    """Greedy position-ordered wave assignment over extracted footprints.

    For each transaction (in block position order) the target wave is one
    past the latest wave holding a conflicting earlier transaction:
    write-after-write and write-after-read both force ordering, read-after-
    read does not.  The incremental bookkeeping (last wave that read/wrote
    each account key) makes the pass ``O(n * footprint)`` instead of the
    quadratic pairwise-conflict scan.
    """
    waves: List[Wave] = []
    last_write: Dict[str, int] = {}
    last_read: Dict[str, int] = {}
    floor = 0  # first wave index usable after the latest barrier
    for position, access in enumerate(accesses):
        if access.exclusive:
            waves.append(Wave(positions=[position], exclusive=True))
            floor = len(waves)
            continue
        target = floor
        for key in access.reads:
            writer = last_write.get(key)
            if writer is not None and writer >= target:
                target = writer + 1
        for key in access.writes:
            writer = last_write.get(key)
            if writer is not None and writer >= target:
                target = writer + 1
            reader = last_read.get(key)
            if reader is not None and reader >= target:
                target = reader + 1
        while len(waves) <= target:
            waves.append(Wave())
        waves[target].positions.append(position)
        for key in access.reads:
            if last_read.get(key, -1) < target:
                last_read[key] = target
        for key in access.writes:
            last_write[key] = target
    return Schedule(waves=waves, n_transactions=len(accesses))


def trim_to_budget(schedule: Schedule, budget: int, workers: int) -> List[int]:
    """Positions (sorted) that fit in ``budget`` serial-equivalent slots.

    Whole waves are kept while their cumulative :meth:`Wave.slot_cost` fits;
    the first wave that does not fit contributes its ``remaining * workers``
    earliest positions (the partial wave still runs within the leftover
    slots); every later wave is dropped.  Dropping suffix waves is nonce-safe
    because a same-sender successor always conflicts with its predecessor and
    therefore sits in a strictly later wave -- a kept transaction never
    depends on a dropped one.
    """
    kept: List[int] = []
    remaining = budget
    for wave in schedule.waves:
        cost = wave.slot_cost(workers)
        if cost <= remaining:
            kept.extend(wave.positions)
            remaining -= cost
            continue
        if not wave.exclusive and remaining > 0:
            kept.extend(wave.positions[: remaining * max(1, workers)])
        break
    kept.sort()
    return kept
