"""Read/write-set extraction for intra-block parallel execution.

Every transaction kind maps to an :class:`AccessSet` -- the account keys it
may read and write -- or to the *exclusive* marker when static extraction
cannot bound its footprint.  The rules are deliberately conservative; a
footprint that is too wide only costs parallelism, a footprint that is too
narrow would cost correctness:

* **plain transfer** -- writes ``{sender, recipient}`` (the recipient is a
  write even for a zero-value transfer: the executor may create the account
  record, and treating it as a write lets the commit fold copy it back
  without a read/write distinction at the account level);
* **contract call** -- ``{sender}`` plus the whole contract account.  Storage
  is not tracked slot-by-slot: the contract account *is* the write set, so
  two calls into the same contract always conflict ("whole-contract write
  sets").  ``view`` methods only *read* the contract, so read-only calls
  never block each other;
* **impure contract call** -- a method of a class whose source reaches for
  ``transfer_out`` / ``balance_of`` / ``self_balance`` can touch arbitrary
  balances, so the call is *exclusive*: it runs alone, directly against the
  shared state, at its block position (a barrier wave);
* **contract creation** -- exclusive.  Creation flips an address's
  ``is_contract`` status mid-block, which would invalidate every footprint
  extracted before the flip; the barrier keeps extraction sound;
* **coinbase-touching transfer** -- exclusive.  Fee credits are folded into
  the coinbase account wave-by-wave (their sum is order-independent), so any
  transaction that *reads* the coinbase balance must see all earlier fees --
  which the barrier guarantees;
* **faucet mints** are not transactions: they happen between blocks
  (:meth:`Blockchain.mint`) and therefore act as natural barriers -- no
  extraction rule is needed for them.

Returning ``None`` (a *hazard*) from :func:`extract_access` tells the
planner that this block cannot be scheduled at all and must fall back to the
serial path wholesale.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional

from repro.errors import InvalidTransactionError
from repro.chain.account import Address
from repro.chain.state import WorldState
from repro.chain.transaction import Transaction

#: Context attributes that let a contract method escape its own account:
#: a class whose source mentions any of these may read or write *arbitrary*
#: balances, so its calls are classified exclusive.
IMPURE_MARKERS = ("transfer_out", "balance_of", "self_balance")

#: Contract classes already classified, keyed by class object.
_purity_cache: Dict[type, bool] = {}


@dataclass(frozen=True)
class AccessSet:
    """The statically-extracted footprint of one transaction.

    ``reads`` and ``writes`` hold lowercase account keys (the world state's
    canonical dictionary keys).  ``exclusive`` marks a transaction that must
    run alone against the shared state at its block position.
    """

    writes: FrozenSet[str] = frozenset()
    reads: FrozenSet[str] = frozenset()
    exclusive: bool = False

    @property
    def footprint(self) -> FrozenSet[str]:
        """Every account key the transaction may touch."""
        return self.reads | self.writes

    def conflicts_with(self, other: "AccessSet") -> bool:
        """Whether the two transactions must be ordered relative to each other."""
        if self.exclusive or other.exclusive:
            return True
        if self.writes & (other.writes | other.reads):
            return True
        return bool(other.writes & self.reads)


#: The footprint of an exclusive (barrier) transaction.
EXCLUSIVE_ACCESS = AccessSet(exclusive=True)


def contract_is_pure_storage(contract_class: type) -> bool:
    """Whether every method of ``contract_class`` stays inside its own account.

    A *pure-storage* contract only touches its own storage dictionary (plus
    gas and event logs), so a call's write set is bounded by the contract
    account itself.  Classification is a source scan over the class and its
    bases for the :data:`IMPURE_MARKERS`; unreadable source (REPL-defined
    classes, C extensions) classifies as impure -- "conservative
    whole-chain" beats "optimistic wrong".
    """
    cached = _purity_cache.get(contract_class)
    if cached is not None:
        return cached
    pure = True
    for klass in contract_class.__mro__:
        if klass is object:
            continue
        module = getattr(klass, "__module__", "")
        if module == "repro.contracts.framework":
            continue  # the framework base class is known pure
        try:
            source = inspect.getsource(klass)
        except (OSError, TypeError):
            pure = False
            break
        if any(marker in source for marker in IMPURE_MARKERS):
            pure = False
            break
    _purity_cache[contract_class] = pure
    return pure


def extract_access(
    tx: Transaction,
    state: WorldState,
    coinbase: Optional[Address] = None,
) -> Optional[AccessSet]:
    """The :class:`AccessSet` of ``tx`` against the pre-block ``state``.

    Returns ``None`` (a hazard) when the transaction cannot even be
    classified -- currently only when its destination is a contract whose
    calldata does not decode, combined with a malformed envelope the
    executor itself would reject; every other shape gets a (possibly
    exclusive) access set.
    """
    if tx.is_create:
        return EXCLUSIVE_ACCESS

    sender_key = tx.sender.lower
    to_key = tx.to.lower
    if coinbase is not None:
        coinbase_key = Address(coinbase).lower
        if sender_key == coinbase_key or to_key == coinbase_key:
            return EXCLUSIVE_ACCESS

    destination = state.get_account(tx.to) if state.has_account(tx.to) else None
    if destination is not None and destination.is_contract:
        try:
            payload = tx.decoded_payload()
        except InvalidTransactionError:
            # The executor reverts the call cleanly (no partial writes), so
            # the footprint is just the two accounts the fee path touches.
            return AccessSet(writes=frozenset((sender_key, to_key)))
        method = payload.get("method")
        if not method:
            # Reverts with "call payload missing method name" before any
            # value moves; same footprint as a failed transfer.
            return AccessSet(writes=frozenset((sender_key, to_key)))
        if not contract_is_pure_storage(type(destination.contract)):
            return EXCLUSIVE_ACCESS
        entry = destination.contract.abi().get(method)
        if entry is not None and entry.get("view"):
            return AccessSet(writes=frozenset((sender_key,)),
                             reads=frozenset((to_key,)))
        return AccessSet(writes=frozenset((sender_key, to_key)))

    # Plain value transfer (or a transfer to a not-yet-contract address).
    return AccessSet(writes=frozenset((sender_key, to_key)))
