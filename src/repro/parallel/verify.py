"""Out-of-process Schnorr signature verification for the parallel executor.

Signature checks are pure CPU (scalar math on secp256k1) and touch no chain
state, so they are the one phase that genuinely benefits from *processes*
rather than threads.  The pool pipelines with state application: the
executor submits every cold (not-yet-memoized) signature as soon as a block
is planned, lets the scoped wave execution overlap with the verifies, and
joins the results just before the first shared-state side effect.  Any
failed verify aborts the parallel attempt before anything was committed, so
the serial path (which raises ``InvalidSignatureError`` at the offending
position) stays observably identical.

Verification results are stamped back onto the transaction's memo fields
(``_verified_signature`` / ``_verified_ok``) exactly as
:meth:`Transaction.verify_signature` would, so the eventual serial-order
apply hits the memo and never re-verifies.

The pool is created lazily (the first block that needs it) and prefers the
``fork`` start method -- cheap on Linux, no import re-execution -- falling
back to the default context elsewhere.  ``verify_workers=0`` disables the
pool entirely: verifies run inline on the coordinator thread, which is the
right choice under pytest and on single-CPU hosts where process churn costs
more than it saves.
"""

from __future__ import annotations

import multiprocessing
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.chain.account import Address
from repro.chain.keys import Signature, recover_address
from repro.chain.transaction import Transaction
from repro.errors import InvalidSignatureError

#: One verify job: (signature dict, transaction hash bytes, sender address).
VerifyJob = Tuple[Dict[str, Any], bytes, str]


def _batch_verify_jobs(
        jobs: Sequence[VerifyJob]) -> Tuple[List[bool], Dict[str, int]]:
    """Worker-side batch verify: one RLC-checked batch per chunk (picklable).

    Runs the chunk through the process-wide :class:`~repro.batchverify.
    batch.BatchVerifier`, whose per-sender comb tables stay warm across
    blocks because the pool's worker processes persist.  Returns the per-job
    verdicts -- byte-identical to mapping :func:`_verify_job` -- plus the
    verifier's counter delta so the coordinator can aggregate stats that
    live in other processes.
    """
    # Imported lazily: repro.batchverify imports this module for the pool,
    # so the module level must not import it back.
    from repro.batchverify.batch import default_verifier

    verifier = default_verifier()
    before = verifier.stats.to_dict()
    verdicts = verifier.verify_transactions(jobs)
    after = verifier.stats.to_dict()
    return verdicts, {key: after[key] - before[key] for key in after}


def _verify_job(job: VerifyJob) -> bool:
    """Worker-side verify: rebuild the signature and check it (picklable).

    Mirrors :meth:`Transaction.verify_signature` exactly -- recover the
    signer address from the Schnorr signature and compare to the claimed
    sender -- so the memoized verdict is indistinguishable from an inline
    verify.
    """
    sig_dict, tx_hash, sender = job
    signature = Signature.from_dict(sig_dict)
    try:
        recovered = recover_address(signature, tx_hash)
    except InvalidSignatureError:
        return False
    return Address(recovered) == Address(sender)


def _stamp(tx: Transaction, verdict: bool) -> None:
    """Record a verify verdict on the (frozen) transaction's memo fields."""
    object.__setattr__(tx, "_verified_signature", tx.signature)
    object.__setattr__(tx, "_verified_ok", verdict)


def _memoized_verdict(tx: Transaction) -> Optional[bool]:
    """The memoized verify verdict, or ``None`` when the memo is cold.

    An unsigned transaction is "warm" with verdict ``False``: there is no
    Schnorr work to farm out, and :meth:`Transaction.verify_signature`
    short-circuits to ``False`` before consulting its memo anyway.
    """
    signature = tx.signature
    if signature is None:
        return False
    if getattr(tx, "_verified_signature", None) is signature:
        return bool(getattr(tx, "_verified_ok", False))
    return None


class SignatureVerifyPool:
    """Lazily-started multiprocessing pool for batch signature verification."""

    def __init__(self, workers: int) -> None:
        self.workers = max(0, int(workers))
        self._pool: Optional[multiprocessing.pool.Pool] = None

    def _ensure_pool(self) -> "multiprocessing.pool.Pool":
        if self._pool is None:
            try:
                context = multiprocessing.get_context("fork")
            except ValueError:  # pragma: no cover - non-POSIX hosts
                context = multiprocessing.get_context()
            self._pool = context.Pool(processes=self.workers)
        return self._pool

    def prewarm_async(self, transactions: Sequence[Transaction]) -> "VerifyHandle":
        """Kick off verifies for every cold-memo transaction; returns a handle.

        Transactions whose memo is already warm (the mempool verifies at
        admission, so in steady state that is *all* of them) are skipped --
        the handle then joins instantly.
        """
        cold: List[Transaction] = [
            tx for tx in transactions if _memoized_verdict(tx) is None
        ]
        if not cold:
            return VerifyHandle(cold=[], result=None)
        jobs: List[VerifyJob] = [tx.verify_job() for tx in cold]
        if self.workers == 0:
            verdicts = [_verify_job(job) for job in jobs]
            for tx, verdict in zip(cold, verdicts):
                _stamp(tx, verdict)
            return VerifyHandle(cold=[], result=None, all_ok=all(verdicts))
        result = self._ensure_pool().map_async(_verify_job, jobs)
        return VerifyHandle(cold=cold, result=result)

    def batch_prewarm_async(
        self,
        transactions: Sequence[Transaction],
        chunk_size: int = 64,
    ) -> "BatchVerifyHandle":
        """Kick off *batch* verifies for every cold-memo transaction.

        Like :meth:`prewarm_async`, but each worker receives a whole chunk
        and settles it with one random-linear-combination check
        (``repro.batchverify``) instead of N scalar verifies.  Chunks are
        grouped by sender (first-seen order) so a sender's signatures land
        on the same worker and hit the same warm comb table; groups are
        packed up to ``chunk_size`` but never split.
        """
        cold: List[Transaction] = [
            tx for tx in transactions if _memoized_verdict(tx) is None
        ]
        if not cold:
            return BatchVerifyHandle(chunks=[], result=None)
        if self.workers == 0:
            jobs = [tx.verify_job() for tx in cold]
            verdicts, stats = _batch_verify_jobs(jobs)
            for tx, verdict in zip(cold, verdicts):
                _stamp(tx, verdict)
            return BatchVerifyHandle(
                chunks=[], result=None, all_ok=all(verdicts),
                stats_delta=stats,
            )
        grouped: Dict[str, List[Transaction]] = {}
        for tx in cold:
            grouped.setdefault(str(tx.sender), []).append(tx)
        chunks: List[List[Transaction]] = []
        current: List[Transaction] = []
        for group in grouped.values():
            if current and len(current) + len(group) > chunk_size:
                chunks.append(current)
                current = []
            current.extend(group)
        if current:
            chunks.append(current)
        job_chunks = [[tx.verify_job() for tx in chunk] for chunk in chunks]
        result = self._ensure_pool().map_async(_batch_verify_jobs, job_chunks)
        return BatchVerifyHandle(chunks=chunks, result=result)

    def close(self) -> None:
        """Tear the worker processes down (no-op when never started)."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None


class VerifyHandle:
    """Join point for one block's in-flight signature verifies."""

    def __init__(
        self,
        cold: List[Transaction],
        result: Optional["multiprocessing.pool.MapResult"],
        all_ok: bool = True,
    ) -> None:
        self._cold = cold
        self._result = result
        self._all_ok = all_ok
        self._joined = result is None
        #: Verifies actually farmed out to worker processes (stats export).
        self.jobs_submitted = len(cold)

    def join(self) -> bool:
        """Block until every verify lands; stamp memos; ``True`` if all valid."""
        if not self._joined:
            verdicts = self._result.get()
            for tx, verdict in zip(self._cold, verdicts):
                _stamp(tx, verdict)
            self._all_ok = all(verdicts)
            self._joined = True
        return self._all_ok


class BatchVerifyHandle:
    """Join point for one pipeline kick's in-flight *batch* verifies."""

    def __init__(
        self,
        chunks: List[List[Transaction]],
        result: Optional["multiprocessing.pool.MapResult"],
        all_ok: bool = True,
        stats_delta: Optional[Dict[str, int]] = None,
    ) -> None:
        self._chunks = chunks
        self._result = result
        self._all_ok = all_ok
        self._joined = result is None
        #: Aggregated worker-side verifier counter deltas (merged on join).
        self.stats_delta: Dict[str, int] = dict(stats_delta or {})
        #: Verifies actually farmed out to worker processes (stats export).
        self.jobs_submitted = sum(len(chunk) for chunk in chunks)

    def join(self) -> bool:
        """Block until every chunk settles; stamp memos; ``True`` if all valid."""
        if not self._joined:
            all_ok = True
            for chunk, (verdicts, delta) in zip(self._chunks,
                                                self._result.get()):
                for tx, verdict in zip(chunk, verdicts):
                    _stamp(tx, verdict)
                all_ok = all_ok and all(verdicts)
                for key, value in delta.items():
                    self.stats_delta[key] = self.stats_delta.get(key, 0) + value
            self._all_ok = all_ok
            self._joined = True
        return self._all_ok
