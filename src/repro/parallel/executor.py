"""Wave-parallel block execution with a deterministic serial-order commit.

The :class:`ParallelExecutor` is the coordinator behind
``Blockchain(parallel_execution=...)``.  For each block it:

1. **plans** -- extracts an :class:`~repro.parallel.access.AccessSet` per
   candidate, prechecks the block (nonce continuity, worst-case spend,
   intrinsic gas), and builds the conflict-graph wave schedule;
2. **verifies** -- farms every cold Schnorr signature out to the
   multiprocessing pool, pipelined so scoped wave execution overlaps the
   verifies; the results are joined before the first shared-state side
   effect;
3. **executes** -- runs each wave's transactions concurrently, every
   transaction against a *scoped* private state pre-loaded with copies of
   its footprint accounts (optimistic concurrency with a statically-proven
   conflict-free schedule, so validation never fails);
4. **commits** -- folds each wave's written accounts back into the shared
   chain state *in block position order* and credits the transaction fees
   to the coinbase, so the post-state is byte-identical to the serial loop.

Equivalence is defended in depth:

* the **precheck** re-proves, from transaction envelopes and pre-block
  balances alone, that the serial loop could not have raised mid-block
  (the one observable difference scoped execution cannot reproduce); any
  doubt falls back to the serial path before anything is committed;
* a **containment check** after every wave asserts each scoped state never
  grew beyond its preloaded footprint; a violation (a footprint the
  extractor got wrong) discards the wave's scoped work -- nothing of it has
  been committed -- and finishes the remaining positions serially on the
  shared state, which is sound because committed waves hold only
  transactions that every remaining position was scheduled after;
* **exclusive** transactions run alone on the shared state with the real
  block context, between fully-committed waves, exactly where the serial
  loop would run them.

Fallbacks are not failures: they are counted in :class:`ParallelStats` and
surface through the ``parallel_status`` RPC so an operator can see how
often a workload defeats the planner.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.chain.executor import BlockContext, TransactionExecutor
from repro.chain.receipts import TransactionReceipt
from repro.chain.state import WorldState
from repro.chain.transaction import Transaction
from repro.parallel.access import AccessSet, extract_access
from repro.parallel.scheduler import Schedule, build_schedule, trim_to_budget
from repro.parallel.verify import SignatureVerifyPool

#: Historical per-block transaction cap (`Mempool.select_for_block`'s
#: ``max_count`` default): one slot-budget unit == one serially-executed tx.
DEFAULT_SLOT_BUDGET = 500


@dataclass(frozen=True)
class ParallelConfig:
    """Tuning knobs for the parallel block executor."""

    #: Worker threads applying scoped transactions within a wave.
    workers: int = 4
    #: Processes for Schnorr verification (0 = verify inline, no pool).
    verify_workers: int = 0
    #: Serial-equivalent execution slots per block; a wave of ``s``
    #: transactions costs ``ceil(s / workers)`` slots, an exclusive one 1.
    slot_budget: int = DEFAULT_SLOT_BUDGET
    #: Candidates pulled from the mempool per block (``None`` scales the
    #: serial cap by the worker count).
    max_select: Optional[int] = None

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.verify_workers < 0:
            raise ValueError(
                f"verify_workers must be >= 0, got {self.verify_workers}")
        if self.slot_budget < 1:
            raise ValueError(
                f"slot_budget must be >= 1, got {self.slot_budget}")

    @property
    def effective_max_select(self) -> int:
        """Mempool candidates to pull per block."""
        if self.max_select is not None:
            return self.max_select
        return self.slot_budget * self.workers

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly dump for RPC status and loadgen reports."""
        return {
            "workers": self.workers,
            "verify_workers": self.verify_workers,
            "slot_budget": self.slot_budget,
            "max_select": self.effective_max_select,
        }


@dataclass
class ParallelStats:
    """Cumulative counters for the ``parallel_status`` RPC and obs export."""

    blocks_parallel: int = 0
    blocks_serial_fallback: int = 0
    mid_block_fallbacks: int = 0
    txs_parallel: int = 0
    txs_exclusive: int = 0
    txs_serial_fallback: int = 0
    waves_total: int = 0
    wave_width_counts: Dict[int, int] = field(default_factory=dict)
    trimmed_txs_total: int = 0
    verify_jobs_offloaded: int = 0
    wave_apply_seconds: float = 0.0
    conflict_ratio_last: float = 0.0
    _conflict_ratio_sum: float = 0.0

    def record_schedule(self, schedule: Schedule, trimmed: int) -> None:
        """Fold one planned block's wave layout into the counters."""
        self.blocks_parallel += 1
        self.waves_total += len(schedule.waves)
        for width, count in schedule.width_histogram().items():
            self.wave_width_counts[width] = (
                self.wave_width_counts.get(width, 0) + count)
        self.trimmed_txs_total += trimmed
        self.conflict_ratio_last = schedule.conflict_ratio
        self._conflict_ratio_sum += schedule.conflict_ratio

    @property
    def conflict_ratio_avg(self) -> float:
        """Mean conflict ratio over every parallel-executed block."""
        if not self.blocks_parallel:
            return 0.0
        return self._conflict_ratio_sum / self.blocks_parallel

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly dump (deterministic key order for the RPC layer)."""
        return {
            "blocks_parallel": self.blocks_parallel,
            "blocks_serial_fallback": self.blocks_serial_fallback,
            "mid_block_fallbacks": self.mid_block_fallbacks,
            "txs_parallel": self.txs_parallel,
            "txs_exclusive": self.txs_exclusive,
            "txs_serial_fallback": self.txs_serial_fallback,
            "waves_total": self.waves_total,
            "wave_width_counts": {
                str(width): count
                for width, count in sorted(self.wave_width_counts.items())
            },
            "trimmed_txs_total": self.trimmed_txs_total,
            "verify_jobs_offloaded": self.verify_jobs_offloaded,
            "wave_apply_seconds": round(self.wave_apply_seconds, 6),
            "conflict_ratio_last": round(self.conflict_ratio_last, 4),
            "conflict_ratio_avg": round(self.conflict_ratio_avg, 4),
        }


class ParallelExecutor:
    """Coordinates wave-parallel execution of one block's candidate list."""

    def __init__(
        self,
        executor: TransactionExecutor,
        config: Optional[ParallelConfig] = None,
        obs: Any = None,
    ) -> None:
        self.executor = executor
        self.config = config or ParallelConfig()
        self.obs = obs
        self.stats = ParallelStats()
        self.verify_pool = SignatureVerifyPool(self.config.verify_workers)
        self._thread_pool: Optional[ThreadPoolExecutor] = None

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        """Release worker threads and verify processes."""
        if self._thread_pool is not None:
            self._thread_pool.shutdown(wait=True)
            self._thread_pool = None
        self.verify_pool.close()

    def _threads(self) -> ThreadPoolExecutor:
        if self._thread_pool is None:
            self._thread_pool = ThreadPoolExecutor(
                max_workers=self.config.workers,
                thread_name_prefix="repro-parallel",
            )
        return self._thread_pool

    def _phase(self, name: str):
        if self.obs is not None:
            return self.obs.phase(name)
        return _NullPhase()

    # -- planning -----------------------------------------------------------

    def plan(
        self,
        candidates: Sequence[Transaction],
        state: WorldState,
        block_ctx: BlockContext,
    ) -> Optional[Tuple[List[Transaction], List[AccessSet], Schedule]]:
        """Extract, precheck, schedule and trim; ``None`` = serial fallback.

        The returned candidate list may be a trimmed prefix-by-wave of the
        input when the block overflows the slot budget; accesses and the
        schedule are rebuilt over the kept transactions so positions stay
        dense.
        """
        if self.executor.fee_recipient is not None:
            # A standing fee recipient would double-credit fees under the
            # scoped coinbase=None trick; no production config sets it, so
            # fall back rather than complicate the fold.
            return None
        accesses: List[AccessSet] = []
        for tx in candidates:
            access = extract_access(tx, state, block_ctx.coinbase)
            if access is None:
                return None
            accesses.append(access)
        if not self._precheck(candidates, state):
            return None
        schedule = build_schedule(accesses)
        kept = trim_to_budget(schedule, self.config.slot_budget,
                              self.config.workers)
        trimmed = len(candidates) - len(kept)
        if trimmed:
            candidates = [candidates[i] for i in kept]
            accesses = [accesses[i] for i in kept]
            schedule = build_schedule(accesses)
        self.stats.record_schedule(schedule, trimmed)
        return list(candidates), accesses, schedule

    def _precheck(
        self,
        candidates: Sequence[Transaction],
        state: WorldState,
    ) -> bool:
        """Prove the serial loop would not raise mid-block.

        Scoped execution cannot reproduce a mid-block exception at the right
        position, so the parallel path only runs when none can occur:
        per-sender nonce chains must be gapless from the current account
        nonce, intrinsic gas must fit each gas limit, and each sender's
        *worst-case* cumulative spend (``value + max_fee`` summed over its
        transactions, ignoring any in-block credits) must fit its pre-block
        balance.  Conservative by construction: credits only increase
        balances, so a passing block cannot raise ``InsufficientFundsError``
        either.  Signatures are checked later, at the verify join.
        """
        schedule = self.executor.schedule
        expected_nonce: Dict[str, int] = {}
        worst_spend: Dict[str, int] = {}
        for tx in candidates:
            if tx.intrinsic_gas(schedule) > tx.gas_limit:
                return False
            sender = tx.sender.lower
            nonce = expected_nonce.get(sender)
            if nonce is None:
                nonce = state.nonce_of(tx.sender)
            if tx.nonce != nonce:
                return False
            expected_nonce[sender] = nonce + 1
            worst_spend[sender] = (
                worst_spend.get(sender, 0) + tx.value + tx.max_fee())
        for sender, spend in worst_spend.items():
            if state.balance_of(sender) < spend:
                return False
        return True

    # -- execution ----------------------------------------------------------

    def execute_block(
        self,
        candidates: Sequence[Transaction],
        state: WorldState,
        block_ctx: BlockContext,
    ) -> Optional[Tuple[List[Transaction], List[TransactionReceipt]]]:
        """Run one block's candidates in waves; ``None`` = run serially.

        On success the returned transactions/receipts are in block position
        order with per-transaction fields set; the caller owns cumulative
        gas, receipt indices and mempool removal (shared with the serial
        loop).  ``None`` is returned *only* before any shared-state side
        effect, so the caller's serial retry starts from a pristine state.
        """
        with self._phase("parallel.schedule"):
            plan = self.plan(candidates, state, block_ctx)
        if plan is None:
            self.stats.blocks_serial_fallback += 1
            self.stats.txs_serial_fallback += len(candidates)
            return None
        kept, accesses, schedule = plan

        # Pipeline: Schnorr verifies run in worker processes while the
        # scoped wave execution proceeds; joined before the first commit.
        handle = self.verify_pool.prewarm_async(kept)
        self.stats.verify_jobs_offloaded += handle.jobs_submitted
        verified: Optional[bool] = None

        def signatures_ok() -> bool:
            nonlocal verified
            if verified is None:
                handle.join()
                verified = all(tx.verify_signature() for tx in kept)
            return verified

        ordered: List[Tuple[int, TransactionReceipt]] = []
        committed_any = False

        with self._phase("parallel.execute"):
            for wave_index, wave in enumerate(schedule.waves):
                if wave.exclusive:
                    # Barrier: every earlier wave is fully committed, so the
                    # real shared state and block context are correct here.
                    if not signatures_ok():
                        self.stats.blocks_serial_fallback += 1
                        self.stats.txs_serial_fallback += len(kept)
                        return None
                    position = wave.positions[0]
                    tx = kept[position]
                    block_ctx.gas_price = tx.gas_price
                    receipt = self.executor.apply(tx, state, block_ctx)
                    ordered.append((position, receipt))
                    self.stats.txs_exclusive += 1
                    committed_any = True
                    continue

                started = time.perf_counter()
                tasks = []
                for position in wave.positions:
                    tx = kept[position]
                    scoped = self._scoped_state(state, accesses[position])
                    ctx = BlockContext(
                        number=block_ctx.number,
                        timestamp=block_ctx.timestamp,
                        coinbase=None,  # fees folded by the commit step
                        gas_price=tx.gas_price,
                    )
                    tasks.append((position, tx, scoped, ctx))

                # Scoped applies can raise -- validate() runs per tx, and a
                # transaction the mempool never vetted (a forged signature
                # injected below the chain API) fails there.  A raise only
                # touched its private scoped state, so before anything has
                # been committed the whole block can still fall back to the
                # serial path, which reproduces the serial loop's exception
                # at the correct position.  After a commit the failure is a
                # genuine invariant breach (the signature join precedes the
                # first commit), so it propagates.
                wave_error: Optional[BaseException] = None
                if len(tasks) > 1 and self.config.workers > 1:
                    futures = [
                        self._threads().submit(
                            self.executor.apply, tx, scoped, ctx)
                        for _, tx, scoped, ctx in tasks
                    ]
                    receipts = []
                    for future in futures:
                        try:
                            receipts.append(future.result())
                        except Exception as exc:  # noqa: BLE001
                            receipts.append(None)
                            wave_error = wave_error or exc
                else:
                    receipts = []
                    for _, tx, scoped, ctx in tasks:
                        try:
                            receipts.append(
                                self.executor.apply(tx, scoped, ctx))
                        except Exception as exc:  # noqa: BLE001
                            receipts.append(None)
                            wave_error = wave_error or exc
                self.stats.wave_apply_seconds += time.perf_counter() - started

                if wave_error is not None:
                    if committed_any:
                        raise wave_error
                    self.stats.blocks_serial_fallback += 1
                    self.stats.txs_serial_fallback += len(kept)
                    return None

                if not signatures_ok():
                    self.stats.blocks_serial_fallback += 1
                    self.stats.txs_serial_fallback += len(kept)
                    return None

                contained = all(
                    self._contained(scoped, accesses[position])
                    for (position, _, scoped, _) in tasks
                )
                if not contained:
                    # The extractor's footprint was wrong for some call shape:
                    # drop the wave's scoped work (nothing committed) and run
                    # every remaining position serially on the shared state.
                    self.stats.mid_block_fallbacks += 1
                    remaining = sorted(
                        position
                        for later in schedule.waves[wave_index:]
                        for position in later.positions
                    )
                    for position in remaining:
                        tx = kept[position]
                        block_ctx.gas_price = tx.gas_price
                        receipt = self.executor.apply(tx, state, block_ctx)
                        ordered.append((position, receipt))
                        self.stats.txs_serial_fallback += 1
                    break

                with self._phase("parallel.commit"):
                    wave_results = {
                        position: (receipt, scoped)
                        for (position, _, scoped, _), receipt in zip(
                            tasks, receipts)
                    }
                    for position in wave.positions:
                        receipt, scoped = wave_results[position]
                        self._fold(state, scoped, accesses[position])
                        fee_wei = receipt.gas_used * receipt.gas_price
                        if block_ctx.coinbase is not None and fee_wei > 0:
                            state.credit(block_ctx.coinbase, fee_wei)
                        ordered.append((position, receipt))
                        self.stats.txs_parallel += 1
                        committed_any = True

        ordered.sort(key=lambda pair: pair[0])
        return (
            [kept[position] for position, _ in ordered],
            [receipt for _, receipt in ordered],
        )

    # -- helpers ------------------------------------------------------------

    @staticmethod
    def _scoped_state(state: WorldState, access: AccessSet) -> WorldState:
        """A private state holding copies of the footprint accounts."""
        scoped = WorldState()
        for key in sorted(access.footprint):
            if state.has_account(key):
                scoped.load_account(state.get_account(key).copy())
        return scoped

    @staticmethod
    def _contained(scoped: WorldState, access: AccessSet) -> bool:
        """Whether execution stayed inside the preloaded footprint."""
        footprint = access.footprint
        return all(
            account.address.lower in footprint for account in scoped.accounts()
        )

    @staticmethod
    def _fold(state: WorldState, scoped: WorldState, access: AccessSet) -> None:
        """Copy the scoped write-set back into the shared state."""
        for key in sorted(access.writes):
            if scoped.has_account(key):
                state.load_account(scoped.get_account(key))


class _NullPhase:
    """Context manager used when no obs facade is attached."""

    def __enter__(self) -> "_NullPhase":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        return None
