"""repro.parallel -- conflict-graph parallel transaction execution.

Wave-parallel block production behind ``Blockchain(parallel_execution=...)``:
a read/write-set extractor (:mod:`repro.parallel.access`), a deterministic
wave scheduler (:mod:`repro.parallel.scheduler`), an out-of-process
signature verify pool (:mod:`repro.parallel.verify`) and the coordinating
executor with its serial-order commit fold
(:mod:`repro.parallel.executor`).  Off by default; the serial path is
bit-for-bit untouched.  See ``docs/parallel.md`` for the design and its
equivalence guarantees.
"""

from repro.parallel.access import AccessSet, extract_access
from repro.parallel.executor import (
    ParallelConfig,
    ParallelExecutor,
    ParallelStats,
)
from repro.parallel.scheduler import (
    Schedule,
    Wave,
    build_schedule,
    trim_to_budget,
)
from repro.parallel.verify import SignatureVerifyPool

__all__ = [
    "AccessSet",
    "extract_access",
    "ParallelConfig",
    "ParallelExecutor",
    "ParallelStats",
    "Schedule",
    "Wave",
    "build_schedule",
    "trim_to_budget",
    "SignatureVerifyPool",
]
