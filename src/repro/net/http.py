"""Minimal HTTP/1.1 primitives for the asyncio gateway server.

Only what the JSON-RPC door needs: request parsing off an asyncio
``StreamReader`` with hard size caps and read timeouts, and response
formatting with keep-alive semantics.  No dependency beyond the standard
library -- the container image ships no aiohttp, and the surface here is
four routes, so a hand-rolled parser is smaller than a framework shim.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.errors import ProtocolViolationError

#: Response reason phrases for the status codes the server actually emits.
REASONS = {
    200: "OK",
    101: "Switching Protocols",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    426: "Upgrade Required",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


@dataclass
class HttpRequest:
    """One parsed request: method, target path, lower-cased headers, body."""

    method: str
    target: str
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    @property
    def path(self) -> str:
        """The target with any query string stripped."""
        return self.target.split("?", 1)[0]

    def wants_keep_alive(self) -> bool:
        """HTTP/1.1 default is keep-alive unless the client says close."""
        return self.headers.get("connection", "").lower() != "close"

    def is_websocket_upgrade(self) -> bool:
        """Whether this is an RFC 6455 upgrade request."""
        return ("websocket" in self.headers.get("upgrade", "").lower()
                and "upgrade" in self.headers.get("connection", "").lower())


async def read_request(reader: asyncio.StreamReader, *,
                       max_bytes: int,
                       header_timeout: float,
                       body_timeout: float) -> Optional[HttpRequest]:
    """Parse one request off the stream; ``None`` on clean EOF (client left).

    ``header_timeout`` bounds the wait for the request head (for keep-alive
    connections this doubles as the idle timeout); ``body_timeout`` bounds
    the body read once a request is in flight, which is what defuses a
    slow-loris body.  Raises :class:`ProtocolViolationError` on malformed or
    oversized traffic and :class:`asyncio.TimeoutError` on a stalled peer.
    """
    try:
        head = await asyncio.wait_for(
            reader.readuntil(b"\r\n\r\n"), timeout=header_timeout)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean EOF between requests
        raise ProtocolViolationError("truncated HTTP request head") from None
    except asyncio.LimitOverrunError:
        raise ProtocolViolationError(
            f"request head exceeds the {max_bytes}-byte cap") from None
    if len(head) > max_bytes:
        raise ProtocolViolationError(
            f"request head exceeds the {max_bytes}-byte cap")
    try:
        text = head.decode("latin-1")
        request_line, *header_lines = text.split("\r\n")
        method, target, _version = request_line.split(" ", 2)
    except ValueError:
        raise ProtocolViolationError("malformed HTTP request line") from None
    headers: Dict[str, str] = {}
    for line in header_lines:
        if not line:
            continue
        name, _, value = line.partition(":")
        if not _:
            raise ProtocolViolationError(f"malformed HTTP header {line!r}")
        headers[name.strip().lower()] = value.strip()
    body = b""
    length_text = headers.get("content-length")
    if length_text is not None:
        try:
            length = int(length_text)
        except ValueError:
            raise ProtocolViolationError(
                f"bad content-length {length_text!r}") from None
        if length < 0 or length > max_bytes:
            raise ProtocolViolationError(
                f"request body of {length} bytes exceeds the {max_bytes}-byte cap")
        if length:
            try:
                body = await asyncio.wait_for(
                    reader.readexactly(length), timeout=body_timeout)
            except asyncio.IncompleteReadError:
                raise ProtocolViolationError(
                    "connection closed mid-body") from None
    return HttpRequest(method=method.upper(), target=target,
                       headers=headers, body=body)


def format_response(status: int, body: bytes = b"",
                    content_type: str = "application/json",
                    keep_alive: bool = True,
                    extra_headers: Tuple[Tuple[str, str], ...] = ()) -> bytes:
    """One full HTTP/1.1 response, ready to write."""
    reason = REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for name, value in extra_headers:
        lines.append(f"{name}: {value}")
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
    return head + body
