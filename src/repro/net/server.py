"""The asyncio HTTP/WebSocket door in front of the JSON-RPC gateway.

:class:`RpcHttpServer` serves four routes off one listening socket:

* ``POST /`` (or ``/rpc``) -- single or batch JSON-RPC, the gateway's
  ``handle_raw`` verbatim;
* ``GET /ws`` -- WebSocket upgrade; JSON-RPC over frames plus
  ``eth_subscribe`` / ``eth_unsubscribe`` push (newHeads,
  newPendingTransactions, logs);
* ``GET /metrics`` -- the unified registry in Prometheus text format;
* ``GET /healthz`` -- readiness (status + chain height).

Operational hardening is explicit config, not hope: a global connection
limit (503 past it), request-head/body/batch size caps, read timeouts on
in-flight requests, bounded per-socket send queues whose overflow
disconnects the slow consumer and drops its subscriptions, and a graceful
drain on shutdown (stop accepting, close WebSockets with a going-away
frame, bounded wait for in-flight requests, flush storage).

Everything chain-touching runs on the single event-loop thread, so the
simulated stack needs no locking of its own; :class:`ServerThread` hosts
that loop for tests and the self-hosted HTTP load driver.
"""

from __future__ import annotations

import asyncio
import json
import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Set

from repro.errors import NetworkError, ProtocolViolationError
from repro.net.http import HttpRequest, format_response, read_request
from repro.net.subscriptions import SubscriptionManager
from repro.net.websocket import (
    OP_CLOSE,
    OP_PING,
    OP_PONG,
    OP_TEXT,
    accept_key,
    encode_frame,
    read_frame,
)
from repro.rpc.protocol import (
    INVALID_PARAMS,
    INVALID_REQUEST,
    JsonRpcError,
    error_response,
    success_response,
)


@dataclass(frozen=True)
class NetConfig:
    """Declarative description of one HTTP/WebSocket server."""

    host: str = "127.0.0.1"
    port: int = 8545
    """TCP port to bind; ``0`` binds an ephemeral port (tests)."""

    max_connections: int = 64
    """Global concurrent-socket cap; excess connects get a 503 and close."""

    max_request_bytes: int = 1_048_576
    """Cap on an HTTP head, an HTTP body and a WebSocket payload alike."""

    max_batch: int = 100
    """Envelopes per batch POST; larger batches get an invalid-request error."""

    read_timeout_seconds: float = 10.0
    """Budget for reading one in-flight request (the slow-loris bound)."""

    keepalive_timeout_seconds: float = 300.0
    """Idle budget between requests on a kept-alive HTTP connection."""

    send_queue_frames: int = 256
    """Bounded per-WebSocket send queue; overflow disconnects the consumer."""

    block_interval_seconds: float = 0.5
    """Producer cadence: mine pending transactions every interval
    (wall-clock).  ``0`` disables the producer -- clients mine explicitly
    via ``evm_mine``."""

    drain_timeout_seconds: float = 5.0
    """Graceful-shutdown budget for in-flight requests before force-close."""

    def __post_init__(self) -> None:
        if self.max_connections <= 0:
            raise NetworkError(
                f"max_connections must be positive, got {self.max_connections}")
        if self.max_request_bytes < 1024:
            raise NetworkError(
                f"max_request_bytes must be at least 1024, got {self.max_request_bytes}")
        if self.max_batch <= 0:
            raise NetworkError(f"max_batch must be positive, got {self.max_batch}")
        if self.read_timeout_seconds <= 0:
            raise NetworkError(
                f"read_timeout_seconds must be positive, got {self.read_timeout_seconds}")
        if self.send_queue_frames <= 0:
            raise NetworkError(
                f"send_queue_frames must be positive, got {self.send_queue_frames}")
        if self.block_interval_seconds < 0:
            raise NetworkError(
                f"block_interval_seconds must be non-negative, "
                f"got {self.block_interval_seconds}")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "host": self.host,
            "port": self.port,
            "max_connections": self.max_connections,
            "max_request_bytes": self.max_request_bytes,
            "max_batch": self.max_batch,
            "read_timeout_seconds": self.read_timeout_seconds,
            "keepalive_timeout_seconds": self.keepalive_timeout_seconds,
            "send_queue_frames": self.send_queue_frames,
            "block_interval_seconds": self.block_interval_seconds,
            "drain_timeout_seconds": self.drain_timeout_seconds,
        }


@dataclass
class ServerStats:
    """Plain counters the ``repro_net_*`` metric adapter samples."""

    connections_total: int = 0
    open_connections: int = 0
    ws_connections_total: int = 0
    open_ws_connections: int = 0
    http_requests: Dict[str, int] = field(default_factory=dict)
    ws_messages_total: int = 0
    notifications_total: int = 0
    rejections: Dict[str, int] = field(default_factory=dict)
    slow_consumer_disconnects_total: int = 0
    dropped_subscriptions_total: int = 0

    def count_request(self, route: str) -> None:
        self.http_requests[route] = self.http_requests.get(route, 0) + 1

    def count_rejection(self, reason: str) -> None:
        self.rejections[reason] = self.rejections.get(reason, 0) + 1

    def to_dict(self) -> Dict[str, Any]:
        return {
            "connections_total": self.connections_total,
            "open_connections": self.open_connections,
            "ws_connections_total": self.ws_connections_total,
            "open_ws_connections": self.open_ws_connections,
            "http_requests": dict(sorted(self.http_requests.items())),
            "ws_messages_total": self.ws_messages_total,
            "notifications_total": self.notifications_total,
            "rejections": dict(sorted(self.rejections.items())),
            "slow_consumer_disconnects_total": self.slow_consumer_disconnects_total,
            "dropped_subscriptions_total": self.dropped_subscriptions_total,
        }


class _WsSession:
    """One upgraded WebSocket connection: subscriptions + bounded send queue."""

    def __init__(self, server: "RpcHttpServer", writer: asyncio.StreamWriter) -> None:
        self.server = server
        self.writer = writer
        self.subs = SubscriptionManager(server.node)
        self.queue: asyncio.Queue = asyncio.Queue(
            maxsize=server.config.send_queue_frames)
        self.writer_task: Optional[asyncio.Task] = None
        self.closed = False

    def enqueue_text(self, text: str) -> bool:
        """Queue one outbound text frame; False kicks the slow consumer."""
        if self.closed:
            return False
        try:
            self.queue.put_nowait(encode_frame(OP_TEXT, text.encode("utf-8")))
        except asyncio.QueueFull:
            self.kick("slow_consumer")
            return False
        return True

    def enqueue_raw(self, frame: bytes) -> bool:
        if self.closed:
            return False
        try:
            self.queue.put_nowait(frame)
        except asyncio.QueueFull:
            self.kick("slow_consumer")
            return False
        return True

    def kick(self, reason: str) -> None:
        """Disconnect a misbehaving/slow consumer and drop its subscriptions."""
        if self.closed:
            return
        self.closed = True
        stats = self.server.stats
        stats.slow_consumer_disconnects_total += 1
        stats.dropped_subscriptions_total += self.subs.clear()
        stats.count_rejection(reason)
        # Abort rather than drain: the consumer is not reading, so a queued
        # close frame would never flush.
        self.writer.transport.abort()

    def close_gracefully(self) -> None:
        """Send a going-away close frame (drain path)."""
        if self.closed:
            return
        self.closed = True
        self.subs.clear()
        try:
            self.queue.put_nowait(encode_frame(OP_CLOSE, b"\x03\xe9"))  # 1001
        except asyncio.QueueFull:
            self.writer.transport.abort()

    async def run_writer(self) -> None:
        """Drain the send queue onto the socket until the close frame goes."""
        try:
            while True:
                frame = await self.queue.get()
                self.writer.write(frame)
                await self.writer.drain()
                if frame[:1] and (frame[0] & 0x0F) == OP_CLOSE:
                    break
        except (ConnectionError, asyncio.CancelledError):
            pass


class RpcHttpServer:
    """Serves one JSON-RPC gateway over HTTP and WebSocket."""

    def __init__(
        self,
        gateway: Any,
        config: Optional[NetConfig] = None,
        *,
        node: Optional[Any] = None,
        cluster: Optional[Any] = None,
        obs: Optional[Any] = None,
        registry: Optional[Any] = None,
        logger: Optional[Callable[[str], None]] = None,
    ) -> None:
        self.gateway = gateway
        self.config = config or NetConfig()
        self.node = node if node is not None else (
            gateway.eth.node if gateway.eth is not None else None)
        if self.node is None:
            raise NetworkError("RpcHttpServer needs a gateway serving a chain node")
        self.cluster = cluster
        self.obs = obs
        self.stats = ServerStats()
        self._log = logger or (lambda message: None)
        self._server: Optional[asyncio.base_events.Server] = None
        self._conn_tasks: Set[asyncio.Task] = set()
        self._ws_sessions: Set[_WsSession] = set()
        self._producer_task: Optional[asyncio.Task] = None
        self._draining = False
        self.port = self.config.port

        # /metrics always works, observability enabled or not: without a
        # facade the server owns a plain registry fed by the gateway's
        # RequestMetrics; with one, it renders the full unified registry.
        if registry is not None:
            self.registry = registry
        elif obs is not None:
            self.registry = obs.registry
        else:
            from repro.obs.adapters import register_rpc_metrics
            from repro.obs.registry import MetricsRegistry

            self.registry = MetricsRegistry()
            if gateway.metrics is not None:
                register_rpc_metrics(self.registry, gateway.metrics)
        from repro.obs.adapters import register_net_server

        register_net_server(self.registry, self)

    # -- introspection -------------------------------------------------------

    def subscription_kinds(self) -> Dict[str, int]:
        """Live subscriptions per kind, across every WebSocket session."""
        counts: Dict[str, int] = {}
        for session in self._ws_sessions:
            for kind, count in session.subs.kinds().items():
                counts[kind] = counts.get(kind, 0) + count
        return counts

    def send_queue_depth(self) -> int:
        """The deepest per-socket send queue right now (backpressure gauge)."""
        return max((session.queue.qsize() for session in self._ws_sessions),
                   default=0)

    def status(self) -> Dict[str, Any]:
        """The ``net_serverStatus`` document."""
        return {
            "chain_height": self.node.block_number,
            "config": self.config.to_dict(),
            "draining": self._draining,
            "stats": self.stats.to_dict(),
            "subscriptions": dict(sorted(self.subscription_kinds().items())),
        }

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        """Bind the listening socket and start the block producer."""
        self._server = await asyncio.start_server(
            self._on_connection, self.config.host, self.config.port,
            limit=self.config.max_request_bytes + 4096)
        self.port = self._server.sockets[0].getsockname()[1]
        if self.config.block_interval_seconds > 0:
            self._producer_task = asyncio.ensure_future(self._producer_loop())
        self._log(f"listening on http://{self.config.host}:{self.port} "
                  f"(POST /, WebSocket /ws, GET /metrics, GET /healthz)")

    async def shutdown(self) -> None:
        """Graceful drain: stop accepting, finish in-flight, flush, close."""
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._producer_task is not None:
            self._producer_task.cancel()
            try:
                await self._producer_task
            except asyncio.CancelledError:
                pass
        for session in list(self._ws_sessions):
            session.close_gracefully()
        if self._conn_tasks:
            done, pending = await asyncio.wait(
                set(self._conn_tasks), timeout=self.config.drain_timeout_seconds)
            for task in pending:
                task.cancel()
            if pending:
                self._log(f"force-closed {len(pending)} connection(s) "
                          f"after the {self.config.drain_timeout_seconds}s drain budget")
        storage = getattr(self.gateway, "storage", None)
        if storage is not None and hasattr(storage, "flush"):
            storage.flush()
        self._log("graceful shutdown complete")

    async def run(self, stop: asyncio.Event) -> None:
        """Start, serve until ``stop`` is set, then drain."""
        await self.start()
        await stop.wait()
        await self.shutdown()

    # -- block production ----------------------------------------------------

    def _produce_pending(self) -> int:
        """Mine one production round if the mempool has work; blocks made."""
        chain = self.node.chain
        if len(chain.mempool) == 0:
            return 0
        if self.cluster is not None:
            return len(self.cluster.tick())
        chain.produce_block(advance_clock=True)
        return 1

    async def _producer_loop(self) -> None:
        while True:
            await asyncio.sleep(self.config.block_interval_seconds)
            try:
                if self._produce_pending():
                    self.pump_subscriptions()
            except Exception as exc:  # noqa: BLE001 - production must not kill serving
                self._log(f"producer error: {exc}")

    def pump_subscriptions(self) -> None:
        """Push every new chain event to its subscribed WebSocket sessions."""
        for session in list(self._ws_sessions):
            if session.closed or not len(session.subs):
                continue
            for sub_id, payload in session.subs.pump():
                message = json.dumps({
                    "jsonrpc": "2.0",
                    "method": "eth_subscription",
                    "params": {"subscription": sub_id, "result": payload},
                }, default=str)
                if not session.enqueue_text(message):
                    break
                self.stats.notifications_total += 1

    # -- connection handling -------------------------------------------------

    def _on_connection(self, reader: asyncio.StreamReader,
                       writer: asyncio.StreamWriter) -> None:
        task = asyncio.ensure_future(self._handle_connection(reader, writer))
        self._conn_tasks.add(task)
        task.add_done_callback(self._conn_tasks.discard)

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        self.stats.connections_total += 1
        if (self.stats.open_connections >= self.config.max_connections
                or self._draining):
            reason = "draining" if self._draining else "connection_limit"
            self.stats.count_rejection(reason)
            body = json.dumps({"error": f"server {reason.replace('_', ' ')}"}).encode()
            writer.write(format_response(503, body, keep_alive=False))
            await self._close_writer(writer)
            return
        self.stats.open_connections += 1
        try:
            await self._serve_connection(reader, writer)
        except (ConnectionError, asyncio.TimeoutError, asyncio.CancelledError):
            pass
        except ProtocolViolationError:
            pass
        finally:
            self.stats.open_connections -= 1
            await self._close_writer(writer)

    async def _serve_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        first = True
        while not self._draining:
            header_timeout = (self.config.read_timeout_seconds if first
                              else self.config.keepalive_timeout_seconds)
            try:
                request = await read_request(
                    reader,
                    max_bytes=self.config.max_request_bytes,
                    header_timeout=header_timeout,
                    body_timeout=self.config.read_timeout_seconds)
            except ProtocolViolationError as exc:
                self.stats.count_rejection("protocol")
                if "cap" in str(exc):
                    self.stats.count_rejection("too_large")
                    writer.write(format_response(
                        413, json.dumps({"error": str(exc)}).encode(),
                        keep_alive=False))
                else:
                    writer.write(format_response(
                        400, json.dumps({"error": str(exc)}).encode(),
                        keep_alive=False))
                await writer.drain()
                return
            except asyncio.TimeoutError:
                if not first:
                    return  # idle keep-alive expiry: just close
                self.stats.count_rejection("read_timeout")
                writer.write(format_response(408, b'{"error": "read timeout"}',
                                             keep_alive=False))
                await writer.drain()
                return
            if request is None:
                return  # clean EOF
            first = False
            if request.path == "/ws" and request.method == "GET":
                await self._serve_websocket(request, reader, writer)
                return
            keep_alive = request.wants_keep_alive()
            writer.write(self._respond_http(request, keep_alive))
            await writer.drain()
            if not keep_alive:
                return

    def _respond_http(self, request: HttpRequest, keep_alive: bool) -> bytes:
        path, method = request.path, request.method
        if method == "POST" and path in ("/", "/rpc"):
            self.stats.count_request("rpc")
            body = self._handle_rpc_body(request.body)
            self.pump_subscriptions()
            return format_response(200, body, keep_alive=keep_alive)
        if method == "GET" and path == "/metrics":
            self.stats.count_request("metrics")
            text = self.registry.render_prometheus().encode("utf-8")
            return format_response(
                200, text, content_type="text/plain; version=0.0.4",
                keep_alive=keep_alive)
        if method == "GET" and path == "/healthz":
            self.stats.count_request("healthz")
            body = json.dumps({
                "status": "draining" if self._draining else "ok",
                "height": self.node.block_number,
            }).encode("utf-8")
            return format_response(200, body, keep_alive=keep_alive)
        if path in ("/", "/rpc", "/metrics", "/healthz", "/ws"):
            self.stats.count_rejection("method_not_allowed")
            return format_response(405, b'{"error": "method not allowed"}',
                                   keep_alive=keep_alive)
        self.stats.count_rejection("not_found")
        return format_response(404, b'{"error": "not found"}',
                               keep_alive=keep_alive)

    def _handle_rpc_body(self, body: bytes) -> bytes:
        """Dispatch one POST body through the gateway (batch cap enforced)."""
        text = body.decode("utf-8", errors="replace")
        oversized = self._batch_too_large(text)
        if oversized is not None:
            return oversized
        reply = self.gateway.handle_raw(text)
        # A notification-only payload has no reply; HTTP still needs a body.
        return reply.encode("utf-8") if reply else b""

    def _batch_too_large(self, text: str) -> Optional[bytes]:
        """An error envelope when the payload is a too-large batch."""
        stripped = text.lstrip()
        if not stripped.startswith("["):
            return None
        try:
            payload = json.loads(text)
        except ValueError:
            return None  # the gateway renders the parse error itself
        if isinstance(payload, list) and len(payload) > self.config.max_batch:
            self.stats.count_rejection("batch_too_large")
            return json.dumps(error_response(
                None, INVALID_REQUEST,
                f"batch of {len(payload)} exceeds the "
                f"{self.config.max_batch}-request cap")).encode("utf-8")
        return None

    # -- websocket -----------------------------------------------------------

    async def _serve_websocket(self, request: HttpRequest,
                               reader: asyncio.StreamReader,
                               writer: asyncio.StreamWriter) -> None:
        key = request.headers.get("sec-websocket-key")
        if not request.is_websocket_upgrade() or not key:
            self.stats.count_rejection("bad_upgrade")
            writer.write(format_response(
                426, b'{"error": "this endpoint speaks WebSocket"}',
                keep_alive=False, extra_headers=(("Upgrade", "websocket"),)))
            await writer.drain()
            return
        writer.write(
            b"HTTP/1.1 101 Switching Protocols\r\n"
            b"Upgrade: websocket\r\n"
            b"Connection: Upgrade\r\n"
            b"Sec-WebSocket-Accept: " + accept_key(key).encode("ascii")
            + b"\r\n\r\n")
        await writer.drain()
        self.stats.ws_connections_total += 1
        self.stats.open_ws_connections += 1
        # Keep the transport's own buffer small so a slow consumer shows up
        # at the *bounded* send queue (where it is counted and kicked)
        # instead of hiding inside a multi-megabyte kernel buffer.
        try:
            writer.transport.set_write_buffer_limits(high=16_384)
        except (AttributeError, NotImplementedError):
            pass
        session = _WsSession(self, writer)
        session.writer_task = asyncio.ensure_future(session.run_writer())
        self._ws_sessions.add(session)
        try:
            await self._ws_reader_loop(session, reader)
        finally:
            self.stats.open_ws_connections -= 1
            self._ws_sessions.discard(session)
            if not session.closed:
                session.closed = True
                session.subs.clear()
            session.writer_task.cancel()
            try:
                await session.writer_task
            except asyncio.CancelledError:
                pass

    async def _ws_reader_loop(self, session: _WsSession,
                              reader: asyncio.StreamReader) -> None:
        while not session.closed:
            try:
                opcode, payload = await read_frame(
                    reader, max_bytes=self.config.max_request_bytes)
            except (asyncio.IncompleteReadError, ConnectionError):
                return
            if opcode == OP_CLOSE:
                session.enqueue_raw(encode_frame(OP_CLOSE, payload[:2]))
                return
            if opcode == OP_PING:
                session.enqueue_raw(encode_frame(OP_PONG, payload))
                continue
            if opcode == OP_PONG:
                continue
            if opcode != OP_TEXT:
                continue
            self.stats.ws_messages_total += 1
            reply = self._dispatch_ws(session, payload.decode("utf-8"))
            if reply:
                session.enqueue_text(reply)
            self.pump_subscriptions()

    def _dispatch_ws(self, session: _WsSession, text: str) -> str:
        """One WebSocket message: subscription calls local, rest via gateway."""
        try:
            payload = json.loads(text)
        except ValueError:
            return self.gateway.handle_raw(text)  # renders the parse error
        if isinstance(payload, dict) and payload.get("method") in (
                "eth_subscribe", "eth_unsubscribe"):
            return json.dumps(self._handle_subscription_call(session, payload),
                              default=str)
        reply = self.gateway.handle_raw(text)
        return reply

    def _handle_subscription_call(self, session: _WsSession,
                                  payload: Dict[str, Any]) -> Dict[str, Any]:
        request_id = payload.get("id")
        params = payload.get("params") or []
        try:
            if not isinstance(params, list) or not params:
                raise JsonRpcError(
                    INVALID_PARAMS,
                    f"{payload.get('method')} takes positional params")
            if payload.get("method") == "eth_subscribe":
                criteria = None
                if params[0] == "logs" and len(params) > 1:
                    from repro.rpc.namespaces import _log_filter_from_params

                    criteria = _log_filter_from_params(params[1])
                result: Any = session.subs.subscribe(params[0], criteria)
            else:
                result = session.subs.unsubscribe(str(params[0]))
        except JsonRpcError as exc:
            return error_response(request_id, exc.code, exc.message, exc.data)
        return success_response(request_id, result)

    # -- plumbing ------------------------------------------------------------

    @staticmethod
    async def _close_writer(writer: asyncio.StreamWriter) -> None:
        try:
            writer.close()
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


class ServerThread:
    """Host an :class:`RpcHttpServer` on a dedicated event-loop thread.

    Tests and the self-hosted HTTP load driver talk to the server over real
    sockets from other threads/processes; every chain access stays on this
    one loop thread, so the simulated stack needs no locks.
    """

    def __init__(self, server: RpcHttpServer) -> None:
        self.server = server
        self._ready = threading.Event()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop: Optional[asyncio.Event] = None
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="repro-net-server")
        self._error: Optional[BaseException] = None

    def start(self) -> int:
        """Start serving; returns the bound port."""
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise NetworkError("server thread failed to start in 30s")
        if self._error is not None:
            raise NetworkError(f"server failed to start: {self._error}")
        return self.server.port

    def stop(self, timeout: float = 30.0) -> None:
        """Request a graceful drain and join the thread."""
        if self._loop is not None and self._stop is not None:
            try:
                self._loop.call_soon_threadsafe(self._stop.set)
            except RuntimeError:
                pass  # loop already closed
        self._thread.join(timeout=timeout)

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # noqa: BLE001 - surfaced via start()
            self._error = exc
            self._ready.set()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        try:
            await self.server.start()
        finally:
            self._ready.set()
        await self._stop.wait()
        await self.server.shutdown()

    def __enter__(self) -> "ServerThread":
        self.start()
        return self

    def __exit__(self, *exc: Any) -> None:
        self.stop()


# -- the serve stack ---------------------------------------------------------


class DevNamespace:
    """Serve-only helpers a *remote* client needs (no in-process faucet).

    Mounted by :func:`build_serve_stack`, never by the embedded gateways --
    a real deployment would put these behind operator auth, and the
    reference surface in ``docs/rpc.md`` deliberately excludes them (they
    are documented in ``docs/networking.md`` instead).
    """

    def __init__(self, node: Any) -> None:
        from repro.chain.faucet import Faucet

        self.node = node
        self.faucet = Faucet(node)
        self.server: Optional[RpcHttpServer] = None

    def fund_account(self, address: str, amount_wei: Optional[int] = None) -> str:
        """Faucet-credit ``address`` (default 1 ether); returns its balance."""
        from repro.rpc.protocol import to_quantity

        self.faucet.drip(address, amount_wei)
        return to_quantity(self.node.get_balance(address))

    def server_status(self) -> Dict[str, Any]:
        """Server introspection: config, connection stats, subscriptions."""
        if self.server is None:
            raise NetworkError("no server attached to this namespace")
        return self.server.status()

    def methods(self) -> Dict[str, Any]:
        return {
            "dev_fundAccount": self.fund_account,
            "net_serverStatus": self.server_status,
        }


def build_serve_stack(
    config: Optional[NetConfig] = None,
    *,
    cluster: Optional[int] = None,
    parallel: Optional[int] = None,
    batch_verify: Optional[int] = None,
    store: Optional[str] = None,
    obs: bool = False,
    seed: int = 7,
    logger: Optional[Callable[[str], None]] = None,
) -> RpcHttpServer:
    """A fully wired server: chain (or cluster) + IPFS + gateway + dev RPC.

    This is what ``repro serve`` boots and what the self-hosted HTTP load
    driver embeds -- one builder, so the CLI and the benchmarks measure the
    same stack.
    """
    from repro.chain.chain import ChainConfig
    from repro.chain.node import EthereumNode
    from repro.contracts.registry import default_registry
    from repro.ipfs.node import IpfsNode
    from repro.ipfs.swarm import Swarm
    from repro.rpc.gateway import JsonRpcGateway
    from repro.utils.clock import SimulatedClock
    from repro.utils.rng import derive_seed

    if cluster is not None and store is not None:
        raise NetworkError("--store is a single-node knob; a cluster's "
                           "replicas own their engines")
    if cluster is not None and batch_verify is not None:
        raise NetworkError("--batch-verify is a single-node knob; replicas "
                           "re-verify blocks on the scalar path")
    clock = SimulatedClock()
    engine = None
    if store is not None:
        from repro.storage.engine import StorageConfig, StorageEngine

        engine = StorageEngine(StorageConfig(backend="log", directory=store))
    cluster_obj = None
    if cluster is not None:
        from repro.cluster import ChainCluster, ClusterConfig, ClusterNode

        cluster_obj = ChainCluster(
            ClusterConfig(replicas=cluster, seed=derive_seed(seed, "serve"),
                          parallel_execution=parallel),
            clock=clock, registry=default_registry())
        node: Any = ClusterNode(cluster_obj)
    else:
        node = EthereumNode(config=ChainConfig(), backend=default_registry(),
                            clock=clock, storage=engine,
                            parallel_execution=parallel,
                            batch_verify=batch_verify)
    swarm = Swarm(clock=clock)
    ipfs = IpfsNode("serve-ipfs", swarm=swarm)
    gateway = JsonRpcGateway(node=node, swarm=swarm, ipfs=ipfs)
    if engine is not None:
        gateway.attach_storage(engine)
    obs_facade = None
    if obs:
        from repro.obs import Observability

        obs_facade = Observability(clock=clock)
        if cluster_obj is not None:
            obs_facade.instrument_cluster(cluster_obj)
        else:
            obs_facade.instrument_node(node)
        gateway.attach_obs(obs_facade)
    dev = DevNamespace(node)
    gateway.register_namespace(dev.methods())
    server = RpcHttpServer(gateway, config, node=node, cluster=cluster_obj,
                           obs=obs_facade, logger=logger)
    dev.server = server
    return server
