"""Push subscriptions (``eth_subscribe``) over one node, per connection.

A :class:`SubscriptionManager` is the push twin of the polling
:class:`~repro.rpc.filters.FilterManager`: one manager per WebSocket
connection, one cursor per subscription, advanced by the *same* poll cores
(``poll_new_blocks`` / ``poll_pending_transactions`` / ``poll_new_logs``)
the polling filters use.  Whatever ``eth_getFilterChanges`` would have
returned over a block window -- including after a fork-choice reorg -- a
subscription pushes byte-identically, because the two surfaces share the
cursor logic rather than reimplementing it.

Payload shapes:

* ``newHeads`` -- the full block object with transactions as hashes
  (exactly ``eth_getBlockByNumber(n, false)``), one notification per block;
* ``newPendingTransactions`` -- one transaction hash per notification;
* ``logs`` -- one log object per notification, filtered by the same
  criteria dict ``eth_newFilter`` takes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.chain.events import LogFilter
from repro.chain.node import EthereumNode
from repro.rpc.filters import (
    poll_new_blocks,
    poll_new_logs,
    poll_pending_transactions,
)
from repro.rpc.protocol import INVALID_PARAMS, JsonRpcError

#: The subscription kinds the server accepts, in the order docs list them.
SUBSCRIPTION_KINDS = ("newHeads", "newPendingTransactions", "logs")


def head_payload(node: EthereumNode, number: int) -> Dict[str, Any]:
    """A block rendered exactly like ``eth_getBlockByNumber(number, false)``."""
    block = node.get_block(number)
    payload = block.to_dict()
    payload["transactions"] = [tx.hash_hex for tx in block.transactions]
    return payload


@dataclass
class _Subscription:
    """One live subscription: kind, poll cursor, (for logs) criteria."""

    kind: str
    cursor: int
    criteria: Optional[LogFilter] = None


class SubscriptionManager:
    """Installs, pumps and cancels push subscriptions over one node."""

    def __init__(self, node: EthereumNode) -> None:
        self.node = node
        self._subs: Dict[str, _Subscription] = {}
        self._next_id = 1
        #: Notifications produced over this manager's lifetime.
        self.events_total = 0

    def __len__(self) -> int:
        return len(self._subs)

    def kinds(self) -> Dict[str, int]:
        """Live subscription count per kind (for the server gauges)."""
        counts: Dict[str, int] = {}
        for sub in self._subs.values():
            counts[sub.kind] = counts.get(sub.kind, 0) + 1
        return counts

    def subscribe(self, kind: str, criteria: Optional[LogFilter] = None) -> str:
        """Install a subscription from the current cursor; returns its id."""
        if kind == "newHeads":
            entry = _Subscription(kind=kind, cursor=self.node.block_number)
        elif kind == "newPendingTransactions":
            journal = self.node.chain.mempool.added_journal
            entry = _Subscription(kind=kind, cursor=len(journal))
        elif kind == "logs":
            entry = _Subscription(kind=kind, cursor=self.node.chain.log_count,
                                  criteria=criteria)
        else:
            raise JsonRpcError(
                INVALID_PARAMS,
                f"unknown subscription kind {kind!r}; "
                f"expected one of {list(SUBSCRIPTION_KINDS)}")
        sub_id = hex(self._next_id)
        self._next_id += 1
        self._subs[sub_id] = entry
        return sub_id

    def unsubscribe(self, sub_id: str) -> bool:
        """Cancel a subscription; returns whether it existed."""
        return self._subs.pop(sub_id, None) is not None

    def clear(self) -> int:
        """Drop every subscription (slow-consumer disconnect); returns count."""
        dropped = len(self._subs)
        self._subs.clear()
        return dropped

    def pump(self) -> List[Tuple[str, Any]]:
        """Every new event since the last pump, as ``(sub_id, payload)`` pairs.

        One pair per event (geth pushes one notification per head / hash /
        log, never an array), in subscription-install order then event
        order -- deterministic for a deterministic chain.
        """
        out: List[Tuple[str, Any]] = []
        for sub_id, entry in self._subs.items():
            if entry.kind == "newHeads":
                hashes, tip = poll_new_blocks(self.node, entry.cursor)
                for offset in range(len(hashes)):
                    number = tip - len(hashes) + 1 + offset
                    out.append((sub_id, head_payload(self.node, number)))
                entry.cursor = tip
            elif entry.kind == "newPendingTransactions":
                hashes, entry.cursor = poll_pending_transactions(
                    self.node, entry.cursor)
                out.extend((sub_id, tx_hash) for tx_hash in hashes)
            else:
                logs, entry.cursor = poll_new_logs(
                    self.node, entry.cursor, entry.criteria)
                out.extend((sub_id, log) for log in logs)
        self.events_total += len(out)
        return out
