"""RFC 6455 WebSocket framing: server-side codec plus a blocking client.

The server side (handshake accept key, frame encode/decode over asyncio
streams) backs the gateway's ``/ws`` endpoint; the blocking
:class:`WebSocketClient` is the reference consumer -- the subscription
tests and the CI end-to-end smoke drive a live server with it over a plain
``socket``.  Only single-frame (FIN=1) text/binary messages are supported;
fragmentation is rejected with a protocol error, which every JSON-RPC
client this repo ships satisfies.
"""

from __future__ import annotations

import asyncio
import base64
import hashlib
import json
import os
import socket
import struct
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import NetworkError, ProtocolViolationError

#: The magic GUID every WebSocket handshake concatenates to the client key.
ACCEPT_GUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

OP_TEXT = 0x1
OP_BINARY = 0x2
OP_CLOSE = 0x8
OP_PING = 0x9
OP_PONG = 0xA


def accept_key(client_key: str) -> str:
    """The ``Sec-WebSocket-Accept`` value for a client's handshake key."""
    digest = hashlib.sha1((client_key + ACCEPT_GUID).encode("ascii")).digest()
    return base64.b64encode(digest).decode("ascii")


def encode_frame(opcode: int, payload: bytes, mask: bool = False) -> bytes:
    """One FIN=1 frame; clients MUST mask, servers MUST NOT (RFC 6455)."""
    header = bytearray([0x80 | opcode])
    mask_bit = 0x80 if mask else 0x00
    length = len(payload)
    if length < 126:
        header.append(mask_bit | length)
    elif length < 1 << 16:
        header.append(mask_bit | 126)
        header += struct.pack("!H", length)
    else:
        header.append(mask_bit | 127)
        header += struct.pack("!Q", length)
    if mask:
        key = os.urandom(4)
        header += key
        payload = bytes(b ^ key[i % 4] for i, b in enumerate(payload))
    return bytes(header) + payload


def _unmask(payload: bytes, key: bytes) -> bytes:
    return bytes(b ^ key[i % 4] for i, b in enumerate(payload))


async def read_frame(reader: asyncio.StreamReader, *,
                     max_bytes: int,
                     require_mask: bool = True) -> Tuple[int, bytes]:
    """Read one frame off an asyncio stream; returns ``(opcode, payload)``.

    Raises :class:`ProtocolViolationError` on fragmentation, an unmasked
    client frame, or a payload past ``max_bytes``; raises
    :class:`asyncio.IncompleteReadError` when the peer just vanishes.
    """
    first, second = await reader.readexactly(2)
    if not first & 0x80:
        raise ProtocolViolationError("fragmented WebSocket frames are not supported")
    opcode = first & 0x0F
    masked = bool(second & 0x80)
    if require_mask and not masked:
        raise ProtocolViolationError("client frames must be masked (RFC 6455)")
    length = second & 0x7F
    if length == 126:
        (length,) = struct.unpack("!H", await reader.readexactly(2))
    elif length == 127:
        (length,) = struct.unpack("!Q", await reader.readexactly(8))
    if length > max_bytes:
        raise ProtocolViolationError(
            f"WebSocket payload of {length} bytes exceeds the {max_bytes}-byte cap")
    key = await reader.readexactly(4) if masked else b""
    payload = await reader.readexactly(length) if length else b""
    if masked:
        payload = _unmask(payload, key)
    return opcode, payload


# -- the blocking client ------------------------------------------------------


class WebSocketClient:
    """A blocking WebSocket JSON-RPC client over a plain socket.

    Responses and subscription notifications interleave on the wire;
    :meth:`request` buffers any notifications it reads while waiting for
    its response id, and :meth:`next_notification` drains that buffer
    before blocking on the socket again -- so callers can mine via one
    request and then collect the push events it caused, in order.
    """

    def __init__(self, host: str, port: int, path: str = "/ws",
                 timeout: float = 10.0) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._buffer = b""
        self._next_id = 1
        self._notifications: List[Dict[str, Any]] = []
        key = base64.b64encode(os.urandom(16)).decode("ascii")
        handshake = (
            f"GET {path} HTTP/1.1\r\n"
            f"Host: {host}:{port}\r\n"
            "Upgrade: websocket\r\n"
            "Connection: Upgrade\r\n"
            f"Sec-WebSocket-Key: {key}\r\n"
            "Sec-WebSocket-Version: 13\r\n\r\n"
        )
        self._sock.sendall(handshake.encode("ascii"))
        head = self._read_until(b"\r\n\r\n")
        status_line = head.split(b"\r\n", 1)[0].decode("latin-1")
        if " 101 " not in f"{status_line} ":
            raise NetworkError(f"WebSocket handshake refused: {status_line!r}")
        expected = accept_key(key)
        if f"sec-websocket-accept: {expected.lower()}" not in head.decode("latin-1").lower():
            raise NetworkError("WebSocket handshake returned a bad accept key")

    # -- socket plumbing -----------------------------------------------------

    def _read_until(self, marker: bytes) -> bytes:
        while marker not in self._buffer:
            chunk = self._sock.recv(4096)
            if not chunk:
                raise NetworkError("connection closed during WebSocket handshake")
            self._buffer += chunk
        head, self._buffer = self._buffer.split(marker, 1)
        return head + marker

    def _read_exact(self, count: int) -> bytes:
        while len(self._buffer) < count:
            chunk = self._sock.recv(4096)
            if not chunk:
                raise NetworkError("WebSocket connection closed by the server")
            self._buffer += chunk
        data, self._buffer = self._buffer[:count], self._buffer[count:]
        return data

    def _read_frame(self) -> Tuple[int, bytes]:
        first, second = self._read_exact(2)
        opcode = first & 0x0F
        masked = bool(second & 0x80)
        length = second & 0x7F
        if length == 126:
            (length,) = struct.unpack("!H", self._read_exact(2))
        elif length == 127:
            (length,) = struct.unpack("!Q", self._read_exact(8))
        key = self._read_exact(4) if masked else b""
        payload = self._read_exact(length) if length else b""
        if masked:
            payload = _unmask(payload, key)
        return opcode, payload

    def _read_message(self) -> Dict[str, Any]:
        """The next data message, transparently answering pings."""
        while True:
            opcode, payload = self._read_frame()
            if opcode == OP_PING:
                self._sock.sendall(encode_frame(OP_PONG, payload, mask=True))
                continue
            if opcode == OP_CLOSE:
                raise NetworkError("server closed the WebSocket connection")
            if opcode in (OP_TEXT, OP_BINARY):
                return json.loads(payload.decode("utf-8"))

    # -- JSON-RPC ------------------------------------------------------------

    def send(self, payload: Dict[str, Any]) -> None:
        """Send one raw JSON message (client frames are masked)."""
        data = json.dumps(payload).encode("utf-8")
        self._sock.sendall(encode_frame(OP_TEXT, data, mask=True))

    def request(self, method: str, params: Optional[list] = None) -> Any:
        """One JSON-RPC call; returns the result, raises on an error envelope."""
        request_id = self._next_id
        self._next_id += 1
        self.send({"jsonrpc": "2.0", "id": request_id,
                   "method": method, "params": params or []})
        while True:
            message = self._read_message()
            if message.get("id") == request_id:
                if "error" in message:
                    error = message["error"]
                    raise NetworkError(
                        f"{method} failed: {error.get('code')} {error.get('message')}")
                return message.get("result")
            if message.get("method") == "eth_subscription":
                self._notifications.append(message["params"])

    def next_notification(self, timeout: float = 10.0) -> Dict[str, Any]:
        """The next ``eth_subscription`` push: ``{"subscription", "result"}``."""
        if self._notifications:
            return self._notifications.pop(0)
        self._sock.settimeout(timeout)
        while True:
            message = self._read_message()
            if message.get("method") == "eth_subscription":
                return message["params"]

    def drain_notifications(self) -> List[Dict[str, Any]]:
        """Every buffered notification read so far (without blocking)."""
        drained, self._notifications = self._notifications, []
        return drained

    def close(self) -> None:
        """Send a close frame and drop the socket."""
        try:
            self._sock.sendall(encode_frame(OP_CLOSE, b"", mask=True))
        except OSError:
            pass
        self._sock.close()

    def __enter__(self) -> "WebSocketClient":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()
