"""Multi-process HTTP load driver: the stack measured over real sockets.

The in-process load generator (:mod:`repro.loadgen`) measures the gateway
with zero transport cost; this driver completes the picture.  Worker
*processes* (fork start method, falling back to in-process execution where
fork is unavailable) fire pre-signed transfers and read calls at a live
:class:`~repro.net.server.RpcHttpServer` over keep-alive
``http.client`` connections, so the reported numbers include HTTP
serialization, socket hops and the server's asyncio loop -- the end-to-end
wire throughput ``BENCH_PR9.json`` records.

Determinism notes: every worker owns a *disjoint* set of senders, so nonce
sequences never race; all transfers use one uniform gas price, so within a
sender the mempool mines them in nonce order and the sender's *last*
receipt implies the whole set mined.  Signing happens in the parent before
the clock starts -- it is client-side work, exactly as the in-process
driver treats it.
"""

from __future__ import annotations

import http.client
import json
import multiprocessing
import time
import urllib.parse
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.chain.account import Address
from repro.chain.keys import KeyPair
from repro.chain.transaction import Transaction
from repro.errors import NetworkError
from repro.loadgen.report import HttpLoadReport
from repro.loadgen.stats import LatencyStats
from repro.utils.units import ether_to_wei

#: Gas price every generated transfer uses -- uniform on purpose, so mempool
#: priority ordering degenerates to per-sender nonce order and the drain
#: only has to watch each sender's last transaction.
UNIFORM_GAS_PRICE = 10**9


@dataclass(frozen=True)
class HttpLoadConfig:
    """One HTTP load run."""

    url: Optional[str] = None
    """Server to drive; ``None`` self-hosts a fresh serve stack on an
    ephemeral port (and then also reports the in-process ingest number for
    comparison)."""

    num_txs: int = 64
    """Pre-signed transfers to submit (``eth_sendRawTransaction``)."""

    num_reads: int = 128
    """Read calls interleaved with the submissions (``eth_blockNumber`` /
    ``eth_getBalance`` alternating)."""

    workers: int = 2
    """Worker processes; each owns a disjoint slice of the senders."""

    senders: int = 8
    """Funded sender accounts the transfers are spread across."""

    seed: int = 7
    """Labels the generated keypairs (``http-load-<seed>-<i>``)."""

    timeout_seconds: float = 30.0
    """Per-request socket timeout inside the workers."""

    drain_timeout_seconds: float = 60.0
    """Budget for every submitted transfer to be mined after the run."""

    compare_inprocess: bool = True
    """When self-hosting, also run ``measure_tx_ingest`` with the same
    transfer/sender counts for the wire-vs-in-process comparison."""

    def __post_init__(self) -> None:
        if self.num_txs < 0 or self.num_reads < 0:
            raise NetworkError("num_txs and num_reads must be non-negative")
        if self.num_txs + self.num_reads == 0:
            raise NetworkError("nothing to do: num_txs + num_reads is zero")
        if self.workers <= 0 or self.senders <= 0:
            raise NetworkError("workers and senders must be positive")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "url": self.url,
            "num_txs": self.num_txs,
            "num_reads": self.num_reads,
            "workers": self.workers,
            "senders": self.senders,
            "seed": self.seed,
        }


# -- the worker ---------------------------------------------------------------
#
# Top-level and fed plain tuples so it pickles under any start method.  Each
# worker opens ONE keep-alive connection and fires its op list serially --
# concurrency comes from the number of workers, which keeps per-request
# latency honest (no in-process queueing ahead of the socket).


def _run_ops(args: Tuple[str, int, str, List[Tuple[str, list]], float]) -> Dict[str, Any]:
    host, port, path, ops, timeout = args
    conn = http.client.HTTPConnection(host, port, timeout=timeout)
    latencies: Dict[str, List[float]] = {}
    errors = 0
    try:
        for method, params in ops:
            body = json.dumps({"jsonrpc": "2.0", "id": 1,
                               "method": method, "params": params})
            started = time.perf_counter()
            conn.request("POST", path, body=body,
                         headers={"Content-Type": "application/json"})
            response = conn.getresponse()
            data = response.read()
            elapsed = time.perf_counter() - started
            latencies.setdefault(method, []).append(elapsed)
            if response.status != 200:
                errors += 1
                continue
            try:
                payload = json.loads(data)
            except ValueError:
                errors += 1
                continue
            if isinstance(payload, dict) and "error" in payload:
                errors += 1
    finally:
        conn.close()
    return {"latencies": latencies, "errors": errors}


# -- parent-side HTTP plumbing ------------------------------------------------


class _HttpRpc:
    """Minimal blocking JSON-RPC-over-HTTP client for the parent process."""

    def __init__(self, host: str, port: int, path: str = "/",
                 timeout: float = 30.0) -> None:
        self.host, self.port, self.path = host, port, path
        self.timeout = timeout
        self._next_id = 1

    def _post(self, payload: Any) -> Any:
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)
        try:
            conn.request("POST", self.path, body=json.dumps(payload),
                         headers={"Content-Type": "application/json"})
            response = conn.getresponse()
            data = response.read()
            if response.status != 200:
                raise NetworkError(
                    f"HTTP {response.status} from {self.host}:{self.port}")
            return json.loads(data)
        finally:
            conn.close()

    def call(self, method: str, params: Optional[list] = None) -> Any:
        request_id = self._next_id
        self._next_id += 1
        reply = self._post({"jsonrpc": "2.0", "id": request_id,
                            "method": method, "params": params or []})
        if "error" in reply:
            error = reply["error"]
            raise NetworkError(
                f"{method} failed: {error.get('code')} {error.get('message')}")
        return reply["result"]

    def batch(self, calls: List[Tuple[str, list]]) -> List[Any]:
        """One batch POST; returns result-or-None per call, in call order."""
        payload = [{"jsonrpc": "2.0", "id": index, "method": method,
                    "params": params}
                   for index, (method, params) in enumerate(calls)]
        replies = self._post(payload)
        by_id = {reply.get("id"): reply for reply in replies}
        return [by_id.get(index, {}).get("result")
                for index in range(len(calls))]

    def get_text(self, path: str) -> str:
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)
        try:
            conn.request("GET", path)
            response = conn.getresponse()
            data = response.read()
            if response.status != 200:
                raise NetworkError(f"GET {path} returned {response.status}")
            return data.decode("utf-8")
        finally:
            conn.close()


def _scrape_rpc_requests_total(metrics_text: str) -> Optional[int]:
    """Sum of the ``repro_rpc_requests_total`` series in a /metrics page."""
    total = 0.0
    seen = False
    for line in metrics_text.splitlines():
        if line.startswith("repro_rpc_requests_total"):
            try:
                total += float(line.rsplit(" ", 1)[1])
                seen = True
            except (ValueError, IndexError):
                continue
    return int(total) if seen else None


# -- the run ------------------------------------------------------------------


def _presign_over_http(rpc: _HttpRpc, config: HttpLoadConfig
                       ) -> Tuple[List[List[str]], List[str]]:
    """Fund senders and pre-sign their transfers, all through the wire.

    Returns per-sender raw-tx hex lists plus each sender's last tx hash
    (the drain watches those).  Starting nonces come from the server, so
    the run composes against a chain with prior state.
    """
    keypairs = [KeyPair.from_label(f"http-load-{config.seed}-{index}")
                for index in range(config.senders)]
    for keypair in keypairs:
        rpc.call("dev_fundAccount", [keypair.address, ether_to_wei(5)])
    sink = Address(KeyPair.from_label(f"http-load-{config.seed}-sink").address)
    per_sender = [config.num_txs // config.senders] * config.senders
    for index in range(config.num_txs % config.senders):
        per_sender[index] += 1
    raw_by_sender: List[List[str]] = []
    last_hashes: List[str] = []
    for keypair, count in zip(keypairs, per_sender):
        start_nonce = int(rpc.call(
            "eth_getTransactionCount", [keypair.address, "pending"]), 16)
        raws: List[str] = []
        last_hash = ""
        for offset in range(count):
            tx = Transaction(sender=Address(keypair.address), to=sink,
                             value=1, nonce=start_nonce + offset,
                             gas_limit=21_000, gas_price=UNIFORM_GAS_PRICE)
            tx.sign(keypair)
            raws.append(tx.serialize_raw())
            last_hash = tx.hash_hex
        raw_by_sender.append(raws)
        if last_hash:
            last_hashes.append(last_hash)
    return raw_by_sender, last_hashes


def _build_worker_ops(config: HttpLoadConfig,
                      raw_by_sender: List[List[str]],
                      sender_addresses: List[str]) -> List[List[Tuple[str, list]]]:
    """Partition work into per-worker op lists (disjoint senders each)."""
    workers = max(1, min(config.workers, config.senders))
    ops_per_worker: List[List[Tuple[str, list]]] = [[] for _ in range(workers)]
    for index, raws in enumerate(raw_by_sender):
        bucket = ops_per_worker[index % workers]
        bucket.extend(("eth_sendRawTransaction", [raw]) for raw in raws)
    reads_each = config.num_reads // workers
    extra = config.num_reads % workers
    for index, bucket in enumerate(ops_per_worker):
        count = reads_each + (1 if index < extra else 0)
        address = sender_addresses[index % len(sender_addresses)]
        for read_index in range(count):
            if read_index % 2 == 0:
                bucket.append(("eth_blockNumber", []))
            else:
                bucket.append(("eth_getBalance", [address, "latest"]))
    # Interleave: submissions first then reads would serialize mining after
    # reading; shuffle deterministically by round-robin interleave instead.
    for index, bucket in enumerate(ops_per_worker):
        writes = [op for op in bucket if op[0] == "eth_sendRawTransaction"]
        reads = [op for op in bucket if op[0] != "eth_sendRawTransaction"]
        merged: List[Tuple[str, list]] = []
        while writes or reads:
            if writes:
                merged.append(writes.pop(0))
            if reads:
                merged.append(reads.pop(0))
        ops_per_worker[index] = merged
    return [bucket for bucket in ops_per_worker if bucket]


def _execute_workers(config: HttpLoadConfig, host: str, port: int, path: str,
                     ops_per_worker: List[List[Tuple[str, list]]]
                     ) -> List[Dict[str, Any]]:
    """Fork a pool when the platform allows it; run inline otherwise."""
    args = [(host, port, path, ops, config.timeout_seconds)
            for ops in ops_per_worker]
    if len(args) > 1:
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:
            context = None
        if context is not None:
            with context.Pool(processes=len(args)) as pool:
                return pool.map(_run_ops, args)
    return [_run_ops(arg) for arg in args]


def _drain(rpc: _HttpRpc, last_hashes: List[str],
           timeout_seconds: float) -> int:
    """Wait for each sender's last transfer to mine; returns mined count.

    Mining is the server producer's job; the drain only *watches*, so the
    measured drain time reflects the server's production cadence.  If the
    producer is disabled (manual-mining servers), the drain nudges it with
    ``evm_mine`` once per poll round.
    """
    if not last_hashes:  # reads-only run: nothing to wait for
        return 0
    deadline = time.perf_counter() + timeout_seconds
    pending = list(last_hashes)
    while pending and time.perf_counter() < deadline:
        results = rpc.batch([("eth_getTransactionReceipt", [tx_hash])
                             for tx_hash in pending])
        pending = [tx_hash for tx_hash, result in zip(pending, results)
                   if not result]
        if not pending:
            break
        status = rpc.call("net_serverStatus", [])
        if status["config"]["block_interval_seconds"] == 0:
            rpc.call("evm_mine", [1])
        else:
            time.sleep(0.05)
    return len(last_hashes) - len(pending)


def run_http_load(config: Optional[HttpLoadConfig] = None) -> HttpLoadReport:
    """Run one multi-process HTTP load measurement; returns its report."""
    config = config or HttpLoadConfig()
    server_thread = None
    hosted_server = None
    url = config.url
    if url is None:
        from repro.net.server import NetConfig, ServerThread, build_serve_stack

        hosted_server = build_serve_stack(
            NetConfig(port=0, block_interval_seconds=0.05), seed=config.seed)
        server_thread = ServerThread(hosted_server)
        port = server_thread.start()
        url = f"http://127.0.0.1:{port}/"
    parsed = urllib.parse.urlsplit(url)
    if parsed.hostname is None or parsed.port is None:
        raise NetworkError(f"load URL needs an explicit host and port: {url!r}")
    host, port, path = parsed.hostname, parsed.port, parsed.path or "/"
    rpc = _HttpRpc(host, port, path, timeout=config.timeout_seconds)
    try:
        start_height = int(rpc.call("eth_blockNumber", []), 16)
        raw_by_sender, last_hashes = _presign_over_http(rpc, config)
        sender_addresses = [
            KeyPair.from_label(f"http-load-{config.seed}-{index}").address
            for index in range(config.senders)]
        ops_per_worker = _build_worker_ops(config, raw_by_sender,
                                           sender_addresses)
        started = time.perf_counter()
        results = _execute_workers(config, host, port, path, ops_per_worker)
        wall_seconds = time.perf_counter() - started

        drain_started = time.perf_counter()
        _drain(rpc, last_hashes, config.drain_timeout_seconds)
        drain_seconds = time.perf_counter() - drain_started
        end_height = int(rpc.call("eth_blockNumber", []), 16)

        # A sender's last receipt implies its whole nonce sequence mined
        # (uniform gas price, nonce-ordered admission).
        tx_mined = 0
        if last_hashes:
            receipts = rpc.batch([("eth_getTransactionReceipt", [tx_hash])
                                  for tx_hash in last_hashes])
            for raws, receipt in zip([r for r in raw_by_sender if r], receipts):
                if receipt:
                    tx_mined += len(raws)

        ops: Dict[str, dict] = {}
        errors_total = 0
        requests_total = 0
        merged: Dict[str, LatencyStats] = {}
        for result in results:
            errors_total += result["errors"]
            for method, samples in result["latencies"].items():
                stats = merged.setdefault(method, LatencyStats(unit="s"))
                for sample in samples:
                    stats.record(sample)
                requests_total += len(samples)
        for method, stats in merged.items():
            ops[method] = stats.to_dict()

        try:
            metrics_total = _scrape_rpc_requests_total(
                rpc.get_text("/metrics"))
        except NetworkError:
            metrics_total = None

        inprocess = None
        if hosted_server is not None and config.compare_inprocess and config.num_txs:
            from repro.loadgen.driver import measure_tx_ingest

            inprocess = measure_tx_ingest(num_txs=config.num_txs,
                                          num_senders=config.senders,
                                          seed=config.seed)
        return HttpLoadReport(
            config=config.to_dict(),
            wall_seconds=wall_seconds,
            drain_seconds=drain_seconds,
            requests_total=requests_total,
            errors_total=errors_total,
            ops=ops,
            workers=len(ops_per_worker),
            tx_submitted=config.num_txs,
            tx_mined=tx_mined,
            blocks_produced=end_height - start_height,
            server_rpc_requests_total=metrics_total,
            inprocess_ingest=inprocess,
        )
    finally:
        if server_thread is not None:
            server_thread.stop()
