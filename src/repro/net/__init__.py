"""``repro.net`` -- the wire transport in front of the JSON-RPC gateway.

Everything below is standard library only (asyncio + sockets): an HTTP/1.1
server with WebSocket upgrade (:mod:`repro.net.server`), push
subscriptions sharing the polling filters' cursor logic
(:mod:`repro.net.subscriptions`), the RFC 6455 codec plus a blocking test
client (:mod:`repro.net.websocket`), and a multi-process HTTP load driver
(:mod:`repro.net.loadgen`) that measures the stack over real sockets.
"""

from repro.net.loadgen import HttpLoadConfig, run_http_load
from repro.net.server import (
    DevNamespace,
    NetConfig,
    RpcHttpServer,
    ServerThread,
    build_serve_stack,
)
from repro.net.subscriptions import SUBSCRIPTION_KINDS, SubscriptionManager
from repro.net.websocket import WebSocketClient

__all__ = [
    "DevNamespace",
    "HttpLoadConfig",
    "NetConfig",
    "RpcHttpServer",
    "SUBSCRIPTION_KINDS",
    "ServerThread",
    "SubscriptionManager",
    "WebSocketClient",
    "build_serve_stack",
    "run_http_load",
]
